"""Unified run telemetry: span tracer, metrics registry, run reports.

Three pieces, one namespace (see the paper's quantitative methodology —
every Graphite claim is a counter or a time, so every run should emit
comparable, machine-readable telemetry):

* :mod:`repro.obs.trace` — hierarchical span tracer with a JSONL
  exporter; a traced training run yields the tree
  ``epoch -> layer -> kernel.<name> -> worker``;
* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms that kernels, the chunk executor, the sim models, and the
  DMA timeline publish into;
* :mod:`repro.obs.report` — joins spans + metrics + environment
  metadata into one run-report JSON document.

Layered on top, the training-run observability pieces:

* :mod:`repro.obs.events` — streaming epoch-event JSONL log (loss,
  accuracies, per-layer grad/weight norms, sparsity, compression
  savings) with a schema validator;
* :mod:`repro.obs.health` — numerics guards (NaN/Inf, loss divergence,
  convergence stall) that fail fast with layer/epoch diagnostics and
  publish ``health.*`` metrics;
* :mod:`repro.obs.sampler` — background resource sampler feeding
  ``proc.*`` gauges/histograms (RSS, CPU%, threads), with a
  ``NULL_SAMPLER`` mirroring the other null singletons;
* :mod:`repro.obs.dashboard` — renders events + run report + bench
  history into one self-contained offline HTML page.

Telemetry is **disabled by default and zero-cost when disabled**: the
module singletons are ``NULL_TRACER`` / ``NULL_REGISTRY`` whose methods
are no-ops, and instrumentation sits at region granularity (a kernel
invocation, a worker's chunk batch), never inside per-vertex loops.

Typical use (what ``repro profile`` and ``--trace`` do)::

    from repro import obs

    tracer, metrics = obs.enable()
    ...  # run the workload
    tracer.export_jsonl("trace.jsonl")
    obs.write_json("run.json", obs.build_run_report(tracer, metrics))
    obs.disable()
"""

from __future__ import annotations

from typing import Optional, Tuple

from .attrib import (
    AttributionReport,
    DEFAULT_TRAFFIC_TOLERANCE,
    SpanAttribution,
    TrafficReconciliation,
    attribute_run,
    sim_traffic_from_metrics,
)
from .dashboard import build_dashboard, write_dashboard
from .events import (
    EVENTS_SCHEMA_VERSION,
    EpochEvent,
    EventLog,
    EventTail,
    read_events,
    validate_epoch_event,
    validate_events,
    validate_events_file,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    export_perfetto,
    write_chrome_trace,
)
from .health import (
    FATAL_KINDS,
    HealthError,
    HealthIssue,
    HealthMonitor,
)
from .history import (
    ComparisonReport,
    DEFAULT_BASELINE_RUNS,
    DEFAULT_THRESHOLD,
    HISTORY_SCHEMA_VERSION,
    HistoryEntry,
    MetricComparison,
    append_history,
    baseline_medians,
    compare_entries,
    entry_from_bench_results,
    entry_from_run_report,
    load_history,
)
from .live import (
    NULL_SERVER,
    LiveRunMonitor,
    MetricsServer,
    NullMetricsServer,
    delta_snapshot,
    prometheus_name,
    render_prometheus,
    scrape_snapshot,
    sparkline,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    publish_counters,
)
from .profiler import (
    DEFAULT_SAMPLING_HZ,
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    NullSamplingProfiler,
    ProfileData,
    ProfileDiff,
    SamplingProfiler,
    fold_stack,
    frame_label,
    load_profile_document,
    phase_of_stack,
    profile_diff,
    render_profile,
    span_phase_seconds,
    write_collapsed,
)
from .rules import (
    Alert,
    DEFAULT_SERVE_RULES,
    Rule,
    RuleEngine,
    RuleParseError,
    default_serve_rules,
    load_rules,
    parse_rule,
    parse_rules,
)
from .report import (
    REPORT_SCHEMA_VERSION,
    build_run_report,
    environment_info,
    write_json,
)
from .sampler import (
    NULL_SAMPLER,
    NullResourceSampler,
    ResourceSampler,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    read_trace,
    render_span_tree,
    span_tree,
)

_tracer = NULL_TRACER
_metrics = NULL_REGISTRY
_profiler = NULL_PROFILER


def get_tracer():
    """The active tracer (a no-op :class:`NullTracer` unless enabled)."""
    return _tracer


def get_metrics():
    """The active registry (a no-op :class:`NullRegistry` unless enabled)."""
    return _metrics


def get_profiler():
    """The active sampling profiler (:data:`NULL_PROFILER` unless set)."""
    return _profiler


def set_tracer(tracer) -> None:
    global _tracer
    _tracer = tracer


def set_metrics(registry) -> None:
    global _metrics
    _metrics = registry


def set_profiler(profiler) -> None:
    global _profiler
    _profiler = profiler


def enable(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[Tracer, MetricsRegistry]:
    """Install (and return) a live tracer + registry as the globals."""
    tracer = tracer or Tracer()
    metrics = metrics or MetricsRegistry()
    set_tracer(tracer)
    set_metrics(metrics)
    return tracer, metrics


def disable() -> None:
    """Restore the zero-cost null tracer, registry, and profiler."""
    set_tracer(NULL_TRACER)
    set_metrics(NULL_REGISTRY)
    set_profiler(NULL_PROFILER)


__all__ = [
    "AttributionReport",
    "DEFAULT_TRAFFIC_TOLERANCE",
    "SpanAttribution",
    "TrafficReconciliation",
    "attribute_run",
    "sim_traffic_from_metrics",
    "chrome_trace",
    "chrome_trace_events",
    "export_perfetto",
    "write_chrome_trace",
    "ComparisonReport",
    "DEFAULT_BASELINE_RUNS",
    "DEFAULT_THRESHOLD",
    "HISTORY_SCHEMA_VERSION",
    "HistoryEntry",
    "MetricComparison",
    "append_history",
    "baseline_medians",
    "compare_entries",
    "entry_from_bench_results",
    "entry_from_run_report",
    "load_history",
    "Alert",
    "Counter",
    "EVENTS_SCHEMA_VERSION",
    "EpochEvent",
    "EventLog",
    "EventTail",
    "FATAL_KINDS",
    "Gauge",
    "HealthError",
    "HealthIssue",
    "HealthMonitor",
    "Histogram",
    "LiveRunMonitor",
    "MetricsRegistry",
    "MetricsServer",
    "NullMetricsServer",
    "NullRegistry",
    "NullResourceSampler",
    "NullSamplingProfiler",
    "NullTracer",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_SAMPLER",
    "NULL_SERVER",
    "NULL_TRACER",
    "DEFAULT_SAMPLING_HZ",
    "DEFAULT_SERVE_RULES",
    "default_serve_rules",
    "PROFILE_SCHEMA_VERSION",
    "ProfileData",
    "ProfileDiff",
    "SamplingProfiler",
    "ResourceSampler",
    "Rule",
    "RuleEngine",
    "RuleParseError",
    "REPORT_SCHEMA_VERSION",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "build_dashboard",
    "build_run_report",
    "delta_snapshot",
    "disable",
    "enable",
    "environment_info",
    "fold_stack",
    "frame_label",
    "get_metrics",
    "get_profiler",
    "get_tracer",
    "load_profile_document",
    "load_rules",
    "phase_of_stack",
    "profile_diff",
    "render_profile",
    "span_phase_seconds",
    "write_collapsed",
    "parse_rule",
    "parse_rules",
    "prometheus_name",
    "publish_counters",
    "read_events",
    "read_trace",
    "render_prometheus",
    "render_span_tree",
    "scrape_snapshot",
    "sparkline",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "span_tree",
    "validate_epoch_event",
    "validate_events",
    "validate_events_file",
    "write_dashboard",
    "write_json",
]
