"""Ablation: the compression-capable DMA engine the paper rejected (§5).

Quantifies "the use case does not justify the hardware cost": at the
evaluation's 50% sparsity the speedup does not clear the ~3x engine-area
cost; at the >=90% sparsity of deep dropout layers it would.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.dma.extensions import compressed_dma_estimate


def _sweep(ctx):
    exp = Experiment(
        "ablation-dma-comp", "Compression-capable DMA engine (rejected design)"
    )
    for sparsity in (0.0, 0.3, 0.5, 0.7, 0.9, 0.95):
        estimate = compressed_dma_estimate(sparsity)
        exp.add(f"sparsity {sparsity:.0%} speedup", estimate.speedup_over_plain_dma)
        exp.add(
            f"sparsity {sparsity:.0%} worthwhile",
            float(estimate.worthwhile),
            unit="bool",
        )
    exp.note(f"engine area grows {compressed_dma_estimate(0.5).area_ratio:.1f}x")
    return exp


def test_dma_compression_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    assert values["sparsity 50% worthwhile"] == 0.0  # the paper's call
    assert values["sparsity 95% worthwhile"] == 1.0  # ...and its limit
