"""The MKL baseline: SpMM aggregation + GEMM update (Section 6).

The linear aggregators of Table 2 factor as ``a = Â h`` with Â the
ψ-scaled self-loop-augmented adjacency, so MKL's sparse-dense matrix
multiply computes the whole aggregation in one call.  The paper finds
this slightly *slower* than DistGNN (Figure 11: 0.88-0.99x) — SpMM
libraries pay an extra CSR traversal pass and lack the gather-specific
prefetch tuning.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.aggregate import normalized_adjacency
from ..obs import get_metrics, get_tracer, publish_counters
from .base import AggregationKernel, KernelStats, UpdateParams, validate_inputs


class SpMMKernel(AggregationKernel):
    """MKL-style aggregation: one sparse-dense matrix product."""

    name = "mkl"

    def aggregate(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, KernelStats]:
        """Aggregate all vertices with one SpMM.

        ``order`` is accepted for interface uniformity with the other
        aggregation kernels (variant sweeps pass it to every kernel).
        A processing order cannot change a sparse product's result or
        work, so a *valid* permutation is honored trivially — but it is
        now fully validated: the kwarg used to accept any same-length
        array silently, letting a malformed order pass through sweeps
        unnoticed until a kernel that does walk it disagreed.
        """
        validate_inputs(graph, h)
        if order is not None:
            order = np.asarray(order)
            n = graph.num_vertices
            if len(order) != n:
                raise ValueError("order must cover every vertex exactly once")
            if n and (
                order.min() < 0
                or order.max() >= n
                or len(np.unique(order)) != n
            ):
                raise ValueError(
                    "order must be a permutation of all vertex ids"
                )
        with get_tracer().span(
            "kernel.mkl",
            aggregator=aggregator,
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            features=int(h.shape[1]),
            backend="serial",
            workers=1,
            engine="spmm",
        ) as span:
            a_hat = normalized_adjacency(graph, aggregator)
            out = (a_hat @ h).astype(np.float32)
            stats = KernelStats(
                gathers=graph.num_edges + graph.num_vertices,
                flops=2.0 * (graph.num_edges + graph.num_vertices) * h.shape[1],
                tasks=1,
            )
            span.add_counters(stats.as_dict())
        publish_counters(get_metrics(), "kernel.mkl", stats.as_dict(False))
        return out, stats


def spmm_layer(
    graph: CSRGraph,
    h: np.ndarray,
    params: UpdateParams,
    aggregator: str = "gcn",
) -> Tuple[np.ndarray, np.ndarray, KernelStats]:
    """Unfused MKL layer: SpMM aggregation then one large GEMM update."""
    kernel = SpMMKernel()
    a, stats = kernel.aggregate(graph, h, aggregator)
    h_out = params.apply(a)
    stats.flops += 2.0 * a.shape[0] * params.weight.shape[0] * params.weight.shape[1]
    return h_out, a, stats
