"""Machine model of the paper's evaluation platform (Section 6).

The software evaluation ran on a 28-core Intel Cascade Lake server:
AVX-512, 32KB L1D / 1MB L2 per core, 1.375MB L3 slice per core
(non-inclusive), 2.7 GHz fixed, 140.8 GB/s DRAM bandwidth, SMT off,
28 threads.

Because our dataset twins are thousands of times smaller than the paper's
graphs, the cache capacity used for locality analysis is scaled by the
footprint ratio (see :meth:`MachineConfig.scaled_cache_bytes`): what
matters for reuse behaviour is *cache size relative to working set*, which
the scaling preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DmaConfig:
    """Per-core DMA engine resources (Section 6, hardware setup)."""

    output_buffer_bytes: int = 2 * KB
    input_buffer_bytes: int = 2 * KB
    factor_buffer_bytes: int = 128
    index_buffer_bytes: int = 128
    tracking_table_entries: int = 32
    descriptor_queue_entries: int = 32
    vector_lanes: int = 4  # 4-lane vector unit (Section 5)

    @property
    def output_buffer_elements(self) -> int:
        """fp32 capacity of the output buffer — max E per descriptor."""
        return self.output_buffer_bytes // 4

    @property
    def storage_bytes(self) -> int:
        """Total SRAM in the engine (paper: 4.5KB)."""
        return (
            self.output_buffer_bytes
            + self.input_buffer_bytes
            + self.factor_buffer_bytes
            + self.index_buffer_bytes
        )


@dataclass(frozen=True)
class MachineConfig:
    """The modeled CPU platform."""

    cores: int = 28
    frequency_hz: float = 2.7e9
    # AVX-512 with 2 FMA ports: 2 * 16 fp32 lanes * 2 (mul+add) per cycle.
    flops_per_cycle_per_core: float = 64.0
    dram_bandwidth: float = 140.8e9  # bytes/s
    dram_latency_ns: float = 90.0
    l1d_bytes: int = 32 * KB
    l2_bytes: int = 1 * MB
    l3_slice_bytes: int = int(1.375 * MB)
    line_bytes: int = 64
    l1_fill_buffers: int = 12  # MSHRs per core
    # Sustained fraction of peak each activity reaches.  These are the only
    # calibration constants in the model; everything else is counted.
    gemm_efficiency: float = 0.80  # MKL large GEMM
    small_gemm_efficiency: float = 0.70  # libxsmm fused blocks
    stream_bw_efficiency: float = 0.88  # tuned Graphite gather (JIT+prefetch)
    baseline_bw_efficiency: float = 0.80  # DistGNN gather loop
    mkl_bw_efficiency: float = 0.74  # MKL SpMM (extra pass, no prefetch tuning)
    # Decompression executes mask-expand with a load->use dependency;
    # sustained elements per cycle per core.
    decompress_elements_per_cycle: float = 2.8
    dma: DmaConfig = DmaConfig()

    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Machine-wide peak fp32 FLOP/s."""
        return self.cores * self.frequency_hz * self.flops_per_cycle_per_core

    @property
    def l2_total_bytes(self) -> int:
        return self.cores * self.l2_bytes

    @property
    def l3_total_bytes(self) -> int:
        return self.cores * self.l3_slice_bytes

    @property
    def feature_cache_bytes(self) -> int:
        """Capacity available to hold gathered feature vectors.

        L2s plus the shared L3; L1 is noise at this scale.  Aggregation's
        read-mostly working set effectively owns this space.
        """
        return self.l2_total_bytes + self.l3_total_bytes

    def scaled_cache_bytes(self, workload_bytes: float, paper_bytes: float) -> float:
        """Cache capacity scaled to a twin workload.

        Keeps ``cache / working-set`` equal to the paper's ratio so reuse
        distances computed on the twin produce hit rates representative of
        the full-size run.
        """
        if paper_bytes <= 0:
            raise ValueError("paper_bytes must be positive")
        ratio = workload_bytes / paper_bytes
        return self.feature_cache_bytes * ratio

    def gemm_time(self, flops: float, small: bool = False) -> float:
        """Seconds for a compute-bound GEMM of the given FLOP count."""
        eff = self.small_gemm_efficiency if small else self.gemm_efficiency
        return flops / (self.peak_flops * eff)

    def stream_time(self, bytes_moved: float, efficiency: float = None) -> float:
        """Seconds to move bytes at (a fraction of) DRAM bandwidth."""
        eff = self.stream_bw_efficiency if efficiency is None else efficiency
        return bytes_moved / (self.dram_bandwidth * eff)

    def with_cores(self, cores: int) -> "MachineConfig":
        return replace(self, cores=cores)


def cascade_lake_28() -> MachineConfig:
    """The paper's software-evaluation server."""
    return MachineConfig()


def cascade_lake_12() -> MachineConfig:
    """The 12-core host CPU of the Figure 2 GPU experiment."""
    return MachineConfig(cores=12)
