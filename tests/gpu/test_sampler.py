"""Unit tests for the neighborhood sampler (Eq. 3 / Section 3)."""

import numpy as np
import pytest

from repro.gpu import (
    EpochSamplingStats,
    iterate_minibatches,
    sample_blocks,
    sample_neighbors,
)
from repro.graphs import load_dataset, star_graph


@pytest.fixture(scope="module")
def graph():
    return load_dataset("products", scale=0.05, seed=0)


class TestSampleNeighbors:
    def test_fanout_caps_neighborhood(self, graph, rng):
        degs = graph.degrees()
        big = int(np.argmax(degs))
        dst, src = sample_neighbors(graph, np.array([big]), fanout=5, rng=rng)
        # 5 sampled + the self edge.
        assert len(dst) == 6

    def test_small_neighborhoods_taken_whole(self, rng):
        graph = star_graph(3)
        dst, src = sample_neighbors(graph, np.array([1]), fanout=10, rng=rng)
        assert set(src.tolist()) == {0, 1}  # hub + self

    def test_self_edge_always_included(self, graph, rng):
        dst, src = sample_neighbors(graph, np.array([7]), fanout=3, rng=rng)
        assert 7 in src[dst == 7]

    def test_sampled_without_replacement(self, graph, rng):
        degs = graph.degrees()
        big = int(np.argmax(degs))
        _, src = sample_neighbors(graph, np.array([big]), fanout=8, rng=rng)
        assert len(set(src.tolist())) == len(src)

    def test_samples_are_real_neighbors(self, graph, rng):
        dst, src = sample_neighbors(graph, np.array([3]), fanout=4, rng=rng)
        neighbors = set(graph.neighbors(3).tolist()) | {3}
        assert set(src.tolist()) <= neighbors

    def test_invalid_fanout(self, graph, rng):
        with pytest.raises(ValueError):
            sample_neighbors(graph, np.array([0]), 0, rng)

    def test_empty_seed_set(self, graph, rng):
        dst, src = sample_neighbors(graph, np.array([], dtype=np.int64), 4, rng)
        assert len(dst) == 0


class TestSampleBlocks:
    def test_block_count_matches_fanouts(self, graph, rng):
        batch = sample_blocks(graph, np.array([0, 1, 2]), (5, 5, 5), rng)
        assert len(batch.blocks) == 3

    def test_frontier_grows_inward(self, graph, rng):
        batch = sample_blocks(graph, np.arange(8), (10, 10), rng)
        inner, outer = batch.blocks
        # The input-side frontier covers at least the output seeds.
        assert len(inner.src_vertices) >= len(outer.dst_vertices)

    def test_frontiers_deduplicated(self, graph, rng):
        batch = sample_blocks(graph, np.arange(16), (10, 10), rng)
        for block in batch.blocks:
            assert len(np.unique(block.src_vertices)) == len(block.src_vertices)

    def test_input_vertices_property(self, graph, rng):
        batch = sample_blocks(graph, np.arange(4), (5, 5), rng)
        np.testing.assert_array_equal(
            batch.input_vertices, batch.blocks[0].src_vertices
        )

    def test_total_edges(self, graph, rng):
        batch = sample_blocks(graph, np.arange(4), (5,), rng)
        assert batch.total_sampled_edges == batch.blocks[0].num_edges


class TestEpochIteration:
    def test_epoch_covers_all_vertices(self, graph):
        seen = []
        for batch in iterate_minibatches(graph, 64, (5, 5), seed=0):
            seen.extend(batch.seed_vertices.tolist())
        assert sorted(seen) == list(range(graph.num_vertices))

    def test_batch_size_respected(self, graph):
        batches = list(iterate_minibatches(graph, 50, (5,), seed=0))
        assert all(len(b.seed_vertices) <= 50 for b in batches)

    def test_invalid_batch_size(self, graph):
        with pytest.raises(ValueError):
            list(iterate_minibatches(graph, 0, (5,)))

    def test_epoch_stats(self, graph):
        stats = EpochSamplingStats.collect(graph, 64, (5, 5), seed=0)
        assert stats.num_batches == (graph.num_vertices + 63) // 64
        assert stats.sampled_edges > 0
        assert stats.input_vertices > 0

    def test_larger_batches_sample_fewer_edges_total(self, graph):
        """Frontier dedup: bigger batches share sampled neighbors — the
        Figure 2 effect."""
        small = EpochSamplingStats.collect(graph, 16, (10, 10), seed=0)
        large = EpochSamplingStats.collect(graph, 128, (10, 10), seed=0)
        assert large.sampled_edges < small.sampled_edges
