"""Address-trace generation for the trace-driven simulation.

Lays the workload's arrays out in a flat byte address space and produces,
per vertex, the cache-line addresses its aggregation touches: index
lines, gathered feature lines, factor lines, and output lines.  The
same layout feeds both the core-executed and the DMA-executed runs so
their access counts are directly comparable (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..graphs.csr import CSRGraph

LINE = 64


@dataclass(frozen=True)
class MemoryLayout:
    """Byte-address map of one GNN layer's working set.

    Feature rows are padded to whole cache lines (the descriptor's ``S``
    field — Figure 9a shows the per-row padding).
    """

    num_vertices: int
    num_edges: int
    feature_len: int
    h_base: int = 0
    value_bytes: int = 4

    @property
    def row_bytes(self) -> int:
        """Padded feature-row size (the descriptor's S field)."""
        raw = self.feature_len * self.value_bytes
        return ((raw + LINE - 1) // LINE) * LINE

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // LINE

    @property
    def idx_base(self) -> int:
        return self.h_base + self.num_vertices * self.row_bytes

    @property
    def factor_base(self) -> int:
        return self.idx_base + self.num_edges * 4

    @property
    def a_base(self) -> int:
        return self.factor_base + self.num_edges * 4

    @property
    def end(self) -> int:
        return self.a_base + self.num_vertices * self.row_bytes

    # ------------------------------------------------------------------
    def feature_lines(self, vertex: int) -> List[int]:
        """Line addresses of one feature row."""
        base = self.h_base + vertex * self.row_bytes
        return [base + i * LINE for i in range(self.lines_per_row)]

    def output_lines(self, vertex: int) -> List[int]:
        base = self.a_base + vertex * self.row_bytes
        return [base + i * LINE for i in range(self.lines_per_row)]

    def index_lines(self, edge_start: int, edge_end: int) -> List[int]:
        """Line addresses covering indices[edge_start:edge_end] (4B each)."""
        if edge_end <= edge_start:
            return []
        first = (self.idx_base + edge_start * 4) // LINE
        last = (self.idx_base + (edge_end - 1) * 4) // LINE
        return [line * LINE for line in range(first, last + 1)]

    def factor_lines(self, edge_start: int, edge_end: int) -> List[int]:
        if edge_end <= edge_start:
            return []
        first = (self.factor_base + edge_start * 4) // LINE
        last = (self.factor_base + (edge_end - 1) * 4) // LINE
        return [line * LINE for line in range(first, last + 1)]


@dataclass(frozen=True)
class VertexTrace:
    """All line addresses one vertex's aggregation touches."""

    vertex: int
    index_lines: Tuple[int, ...]
    factor_lines: Tuple[int, ...]
    gather_lines: Tuple[int, ...]
    output_lines: Tuple[int, ...]

    @property
    def input_line_count(self) -> int:
        return len(self.index_lines) + len(self.factor_lines) + len(self.gather_lines)


def vertex_trace(graph: CSRGraph, layout: MemoryLayout, vertex: int) -> VertexTrace:
    """Build the aggregation trace of one vertex (Figure 9's data)."""
    start, end = int(graph.indptr[vertex]), int(graph.indptr[vertex + 1])
    gather: List[int] = []
    for u in graph.indices[start:end]:
        gather.extend(layout.feature_lines(int(u)))
    gather.extend(layout.feature_lines(vertex))  # the self contribution
    return VertexTrace(
        vertex=vertex,
        index_lines=tuple(layout.index_lines(start, end)),
        factor_lines=tuple(layout.factor_lines(start, end)),
        gather_lines=tuple(gather),
        output_lines=tuple(layout.output_lines(vertex)),
    )


def iter_traces(
    graph: CSRGraph, layout: MemoryLayout, order: np.ndarray
) -> Iterator[VertexTrace]:
    """Traces for every vertex in processing order."""
    for v in order:
        yield vertex_trace(graph, layout, int(v))


def layout_for(graph: CSRGraph, feature_len: int) -> MemoryLayout:
    return MemoryLayout(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        feature_len=feature_len,
    )
