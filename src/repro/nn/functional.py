"""Elementwise and loss functions with explicit backward passes.

The update phase of both GCN and GraphSAGE is ``ReLU(W a + b)``
(Table 2); training adds dropout, softmax and cross-entropy.  Everything
is fp32 numpy with hand-written gradients so the whole training loop stays
dependency-free and inspectable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """max(x, 0) — the source of hidden-feature sparsity (Section 2.2)."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """d relu(x)/dx * grad_out, using the pre-activation ``x``.

    A masked multiply, not ``np.where(..., 0.0)``: the float literal
    would silently promote an fp32 gradient to fp64, and the multiply is
    the form the fused backward folds straight into its GEMM pair.
    """
    return grad_out * (x > 0)


def dropout(
    x: np.ndarray, rate: float, rng: np.random.Generator, training: bool = True
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Inverted dropout.

    Returns (output, mask); mask is None in eval mode.  In training a
    fraction ``rate`` of elements is zeroed and survivors are scaled by
    ``1/(1-rate)``; the zeros are what feature compression later exploits.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x, None
    keep = rng.random(x.shape) >= rate
    scale = 1.0 / (1.0 - rate)
    return (x * keep * scale).astype(x.dtype), keep


def dropout_grad(grad_out: np.ndarray, mask: Optional[np.ndarray], rate: float) -> np.ndarray:
    """Backward of inverted dropout."""
    if mask is None or rate == 0.0:
        return grad_out
    return (grad_out * mask / (1.0 - rate)).astype(grad_out.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Args:
        logits: (N, C) raw scores.
        labels: (N,) int class ids.
        mask: optional boolean (N,) restricting the loss to training
            vertices (standard semi-supervised node classification).

    Returns:
        (loss, grad) where grad has the logits' shape.
    """
    n, c = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    probs = softmax(logits.astype(np.float64))
    rows = np.arange(n)
    picked = probs[rows, labels]
    grad = probs
    grad[rows, labels] -= 1.0
    if mask is None:
        # Unmasked loss (every full-batch epoch): the masked path below
        # computes the same values through an all-true mask — skip its
        # mask/~mask temporaries on the training hot path.
        count = n
    else:
        count = int(mask.sum())
        if count == 0:
            raise ValueError("loss mask selects no vertices")
        picked = picked[mask]
        grad[~mask] = 0.0
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad /= count
    return loss, grad.astype(np.result_type(logits.dtype, np.float32))


def accuracy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Classification accuracy over (optionally masked) vertices."""
    pred = logits.argmax(axis=1)
    correct = pred == labels
    if mask is not None:
        correct = correct[mask]
    if correct.size == 0:
        return 0.0
    return float(correct.mean())


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier initialization for the update weight matrices."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)
