"""Top-down pipeline-slot breakdown — Figure 3 and Table 4 of the paper.

The paper characterizes executions with Intel VTune's top-down method:
pipeline slots split into *retiring* (useful work), *frontend bound*,
*core bound*, and *memory bound*, plus cycle fractions limited by L2, L3,
DRAM bandwidth, and DRAM latency, and the fraction of cycles the L1 fill
buffers are full.

This module derives those metrics from the cost model's phase timings:

* retiring tracks achieved FLOP throughput relative to the sustained-peak
  envelope;
* memory-bound tracks the share of time the model says execution waits
  on the memory system;
* DRAM-bandwidth-bound cycles are the share of time phases run at the
  bandwidth limit; the latency share covers memory stalls that are not
  bandwidth-limited;
* the fill buffers are pegged full whenever the execution is bandwidth
  bound (Section 3 observes exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cost_model import CostModel, VARIANTS, WorkloadTimes

#: Retiring envelope: the achieved-FLOP rate that corresponds to all
#: pipeline slots retiring useful micro-ops.  Calibrated against the
#: published Figure 3 baseline breakdown (the top-down "retiring" metric
#: counts issue slots, of which vector FLOPs fill only a part).
SUSTAINED_PEAK_FRACTION = 1.10

#: Frontend-bound share — essentially constant for these loops (Fig. 3).
FRONTEND_BOUND = 0.033


@dataclass(frozen=True)
class TopdownReport:
    """One row of Table 4."""

    variant: str
    retiring: float
    frontend_bound: float
    core_bound: float
    memory_bound: float
    l2_bound: float
    l3_bound: float
    dram_bandwidth_bound: float
    dram_latency_bound: float
    fill_buffer_full: float

    def as_row(self) -> str:
        return (
            f"{self.variant:<12} ret={self.retiring:5.1%} "
            f"mem={self.memory_bound:5.1%} L2={self.l2_bound:4.1%} "
            f"L3={self.l3_bound:4.1%} BW={self.dram_bandwidth_bound:5.1%} "
            f"lat={self.dram_latency_bound:5.1%} "
            f"fb={self.fill_buffer_full:5.1%}"
        )


def topdown_from_times(
    model: CostModel,
    times: WorkloadTimes,
    hit_rate: Optional[float] = None,
) -> TopdownReport:
    """Derive the top-down breakdown from a workload's phase times."""
    machine = model.machine
    total = times.total
    if total <= 0:
        raise ValueError("workload time must be positive")
    variant = VARIANTS[times.variant]
    if hit_rate is None:
        hit_rate = model.hit_rate(variant.order)

    # Retiring: achieved FLOP rate vs the sustained envelope.
    achieved = times.flops / total
    retiring = min(0.95, achieved / (machine.peak_flops * SUSTAINED_PEAK_FRACTION))

    # Share of time each phase is limited by bandwidth vs compute.
    all_phases = list(times.layer_times) + list(times.backward_times)
    bw_bound_time = 0.0
    mem_stall_time = 0.0
    for phase in all_phases:
        if phase.memory_time >= phase.compute_time:
            bw_bound_time += min(phase.total, phase.memory_time)
        mem_stall_time += min(phase.total, phase.memory_time)
    dram_bw = min(0.95, bw_bound_time / total)

    # Stalled-on-memory slots: ~70% of memory-limited time shows up as
    # memory-bound slots; the rest surfaces as core-bound (dependency
    # chains, divider, port pressure) — the Figure 3 split.
    stall_share = min(1.0, mem_stall_time / total)
    memory_bound = max(
        0.0, min(1.0 - retiring - FRONTEND_BOUND, stall_share * 0.70)
    )
    core_bound = max(0.0, 1.0 - retiring - FRONTEND_BOUND - memory_bound)

    # Cache-level stall shares: the hit rate splits the non-DRAM part of
    # the memory stalls between L2 and L3.
    non_dram = max(0.0, memory_bound - dram_bw * memory_bound)
    l2_bound = non_dram * 0.35 * hit_rate + 0.005
    l3_bound = non_dram * 0.65 * hit_rate + 0.01
    dram_latency = max(
        0.02, memory_bound * (1.0 - dram_bw) * 0.45 + 0.03 * (1 - hit_rate)
    )

    # Fill buffers: pegged while bandwidth bound; relieved as the run
    # becomes compute bound (Table 4: c-locality drops to 31-94%).
    if dram_bw > 0.55:
        fill_full = 1.0
    else:
        fill_full = min(1.0, dram_bw / 0.55)

    return TopdownReport(
        variant=times.variant,
        retiring=retiring,
        frontend_bound=FRONTEND_BOUND,
        core_bound=core_bound,
        memory_bound=memory_bound,
        l2_bound=min(0.2, l2_bound),
        l3_bound=min(0.2, l3_bound),
        dram_bandwidth_bound=dram_bw,
        dram_latency_bound=min(0.25, dram_latency),
        fill_buffer_full=fill_full,
    )


def characterize(
    model: CostModel,
    variant_name: str,
    f_input: int,
    f_hidden: int,
    training: bool = True,
    sparsity: float = 0.5,
) -> TopdownReport:
    """Table-4 row: characterize one variant on one graph."""
    runner = model.training_epoch_time if training else model.inference_time
    times = runner(variant_name, f_input, f_hidden, sparsity=sparsity)
    return topdown_from_times(model, times)
