"""Multi-worker execution of the paper's output-parallel chunk loop.

Section 4.1 parallelizes aggregation over chunks of ``T`` vertices with
dynamic scheduling and no synchronization.  This package executes that
plan on real workers:

* :mod:`repro.parallel.plan` — chunk decomposition + the deterministic
  dynamic (least-loaded) chunk-to-worker assignment.
* :mod:`repro.parallel.workload` — picklable per-chunk kernel bodies.
* :mod:`repro.parallel.executor` — ``serial`` / ``thread`` / ``process``
  backends with deterministic per-worker stats merging.

Every backend produces bitwise-identical outputs; the differential suite
in ``tests/integration/test_backend_equivalence.py`` enforces it.
"""

from .executor import BACKENDS, ChunkExecutor, ExecutionReport, WorkerReport
from .sharded import (
    SHARD_BACKENDS,
    ShardedConfig,
    ShardedTrainer,
    ShardRuntime,
)
from .shm import ArrayBundle, BundleSpec
from .plan import (
    Chunk,
    ChunkPlan,
    assign_chunks,
    assignment_imbalance,
    build_chunk_plan,
)
from .workload import (
    BasicAggregationWorkload,
    ChunkWorkload,
    FusedLayerWorkload,
)

__all__ = [
    "BACKENDS",
    "SHARD_BACKENDS",
    "ShardedConfig",
    "ShardedTrainer",
    "ShardRuntime",
    "ArrayBundle",
    "BundleSpec",
    "ChunkExecutor",
    "ExecutionReport",
    "WorkerReport",
    "Chunk",
    "ChunkPlan",
    "assign_chunks",
    "assignment_imbalance",
    "build_chunk_plan",
    "BasicAggregationWorkload",
    "ChunkWorkload",
    "FusedLayerWorkload",
]
