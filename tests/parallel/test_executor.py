"""Unit tests for the multi-worker chunk executor."""

import dataclasses

import numpy as np
import pytest

from repro.graphs import power_law_graph, synthetic_features
from repro.parallel import (
    BasicAggregationWorkload,
    ChunkExecutor,
    build_chunk_plan,
)


@pytest.fixture(scope="module")
def skewed_graph():
    return power_law_graph(240, avg_degree=8.0, seed=11)


@pytest.fixture(scope="module")
def workload_inputs(skewed_graph):
    h = synthetic_features(skewed_graph, 12, seed=3, sparsity=0.3)
    order = np.arange(skewed_graph.num_vertices, dtype=np.int64)
    return h, order


def _run(skewed_graph, workload_inputs, backend, workers, task_size=32):
    h, order = workload_inputs
    workload = BasicAggregationWorkload(
        skewed_graph, h, "gcn", order, prefetch_distance=4
    )
    plan = build_chunk_plan(skewed_graph, task_size, order)
    executor = ChunkExecutor(backend, workers)
    return executor.run(workload, plan)


class TestConstruction:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ChunkExecutor("gpu", 2)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ChunkExecutor("thread", 0)

    def test_serial_is_single_worker(self):
        with pytest.raises(ValueError):
            ChunkExecutor("serial", 2)


@pytest.mark.parametrize(
    "backend,workers",
    [("serial", 1), ("thread", 1), ("thread", 3), ("process", 3)],
)
class TestRun:
    def test_outputs_match_serial(self, skewed_graph, workload_inputs, backend, workers):
        baseline, _, _ = _run(skewed_graph, workload_inputs, "serial", 1)
        outputs, _, _ = _run(skewed_graph, workload_inputs, backend, workers)
        assert np.array_equal(outputs["out"], baseline["out"])

    def test_worker_reports_cover_all_chunks(
        self, skewed_graph, workload_inputs, backend, workers
    ):
        _, stats, report = _run(skewed_graph, workload_inputs, backend, workers)
        assert report.backend == backend
        assert report.workers == workers
        assert len(report.worker_reports) == workers
        assert sum(report.chunks_per_worker) == stats.tasks
        assert sum(r.num_vertices for r in report.worker_reports) == (
            skewed_graph.num_vertices
        )

    def test_stats_record_per_worker_chunks(
        self, skewed_graph, workload_inputs, backend, workers
    ):
        _, stats, report = _run(skewed_graph, workload_inputs, backend, workers)
        assert stats.extra["workers"] == workers
        assert stats.extra["wall_time_s"] >= 0.0
        for worker_id, chunks in enumerate(report.chunks_per_worker):
            assert stats.extra[f"worker{worker_id}_chunks"] == chunks

    def test_merged_counters_are_schedule_invariant(
        self, skewed_graph, workload_inputs, backend, workers
    ):
        _, serial_stats, _ = _run(skewed_graph, workload_inputs, "serial", 1)
        _, stats, _ = _run(skewed_graph, workload_inputs, backend, workers)
        assert stats.gathers == serial_stats.gathers
        assert stats.prefetches == serial_stats.prefetches
        assert stats.tasks == serial_stats.tasks


class TestLoadBalance:
    def test_workers_share_the_gather_work(self, skewed_graph, workload_inputs):
        _, _, report = _run(skewed_graph, workload_inputs, "thread", 4, task_size=8)
        assert report.imbalance < 1.7  # dynamic scheduling bounds the skew
        assert all(chunks > 0 for chunks in report.chunks_per_worker)

    def test_more_workers_than_chunks(self, skewed_graph, workload_inputs):
        n = skewed_graph.num_vertices
        _, stats, report = _run(
            skewed_graph, workload_inputs, "process", 4, task_size=n
        )
        assert stats.tasks == 1
        assert sorted(report.chunks_per_worker, reverse=True) == [1, 0, 0, 0]

    def test_worker_failure_propagates(self, skewed_graph, workload_inputs):
        h, order = workload_inputs
        bad = synthetic_features(skewed_graph, 9, seed=0)  # wrong feature width
        workload = BasicAggregationWorkload(skewed_graph, h, "gcn", order)
        workload.prepare()
        workload.h = bad  # closure is specialized for 12 features
        plan = build_chunk_plan(skewed_graph, 32, order)
        with pytest.raises(ValueError):
            ChunkExecutor("thread", 2).run(workload, plan)


class TestEmptyAssignment:
    def test_process_backend_skips_pool_when_nothing_to_do(
        self, skewed_graph, workload_inputs, monkeypatch
    ):
        """An all-empty assignment must short-circuit to idle reports —
        no ProcessPoolExecutor construction, no workload pickling."""
        import repro.parallel.executor as executor_mod

        class _Forbidden:
            def __init__(self, *args, **kwargs):
                raise AssertionError("pool constructed for empty assignment")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _Forbidden)
        h, order = workload_inputs
        workload = BasicAggregationWorkload(
            skewed_graph, h, "gcn", order, prefetch_distance=4
        )
        plan = build_chunk_plan(skewed_graph, 32, order)
        plan = dataclasses.replace(plan, chunks=())  # every worker idle
        outputs, stats, report = ChunkExecutor("process", 3).run(workload, plan)
        assert stats.tasks == 0
        assert len(report.worker_reports) == 3
        for worker_report in report.worker_reports:
            assert worker_report.num_chunks == 0
            assert worker_report.num_vertices == 0
            assert worker_report.elapsed_s == 0.0
        assert report.chunks_per_worker == [0, 0, 0]

    def test_idle_reports_match_thread_backend(
        self, skewed_graph, workload_inputs
    ):
        h, order = workload_inputs
        results = {}
        for backend in ("thread", "process"):
            workload = BasicAggregationWorkload(
                skewed_graph, h, "gcn", order, prefetch_distance=4
            )
            plan = build_chunk_plan(skewed_graph, 32, order)
            plan = dataclasses.replace(plan, chunks=())
            _, stats, report = ChunkExecutor(backend, 2).run(workload, plan)
            results[backend] = (stats.tasks, report.chunks_per_worker)
        assert results["process"] == results["thread"]


class TestLiveGauges:
    def test_queue_drains_to_zero(self, skewed_graph, workload_inputs):
        from repro import obs

        _, metrics = obs.enable()
        try:
            _run(skewed_graph, workload_inputs, "thread", 2)
            snap = metrics.snapshot()
        finally:
            obs.disable()
        # Workers decrement executor.queue_depth per consumed chunk; after
        # the run both live gauges must read zero (idle).
        assert snap["executor.queue_depth"]["value"] == 0.0
        assert snap["executor.inflight"]["value"] == 0.0
        assert snap["executor.queue_depth"]["updated_monotonic"] is not None

    def test_gauges_reset_even_when_a_worker_fails(
        self, skewed_graph, workload_inputs
    ):
        from repro import obs

        h, order = workload_inputs
        bad = synthetic_features(skewed_graph, 9, seed=0)
        workload = BasicAggregationWorkload(skewed_graph, h, "gcn", order)
        workload.prepare()
        workload.h = bad
        plan = build_chunk_plan(skewed_graph, 32, order)
        _, metrics = obs.enable()
        try:
            with pytest.raises(ValueError):
                ChunkExecutor("thread", 2).run(workload, plan)
            snap = metrics.snapshot()
        finally:
            obs.disable()
        assert snap["executor.queue_depth"]["value"] == 0.0
        assert snap["executor.inflight"]["value"] == 0.0

    def test_disabled_registry_records_nothing(
        self, skewed_graph, workload_inputs
    ):
        from repro.obs import get_metrics

        _run(skewed_graph, workload_inputs, "thread", 2)
        assert get_metrics().snapshot() == {}
