"""Compressed sparse row (CSR) graph representation.

The paper stores the adjacency matrix in CSR (Section 2.2): for ``|V|``
vertices and ``|E|`` edges the footprint is ``O(|V| + |E|)`` instead of
``O(|V|^2)``.  Aggregation for vertex ``v`` reads the slice
``indices[indptr[v]:indptr[v + 1]]`` — exactly the data highlighted in
Figure 9b of the paper.

Edges are stored in the *in-neighbor* direction: ``neighbors(v)`` returns
the vertices whose features ``v`` gathers during aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class GraphError(ValueError):
    """Raised when a graph is structurally invalid."""


class GraphToken:
    """Weakref-able identity token; lives exactly as long as its graph.

    Caches that specialize per graph (e.g. the JIT kernel cache) key on
    this token's id instead of ``id(graph)``: the graph holds the only
    strong reference, so the token dies with the graph and a weakref
    callback can evict stale entries *before* the id can be recycled by
    a look-alike graph allocated at the same address.
    """

    __slots__ = ("__weakref__",)


@dataclass
class CSRGraph:
    """An immutable directed graph in CSR form.

    Attributes:
        indptr: int64 array of length ``num_vertices + 1``; row pointers.
        indices: int64 array of length ``num_edges``; column indices, i.e.
            the in-neighbors each vertex aggregates from.
        name: optional human-readable dataset name.
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = "graph"
    _degrees: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _token: Optional[GraphToken] = field(default=None, repr=False, compare=False)
    _csc: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )
    _transpose: Optional["CSRGraph"] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Sequence[Tuple[int, int]],
        name: str = "graph",
        deduplicate: bool = True,
    ) -> "CSRGraph":
        """Build a graph from ``(dst, src)`` pairs.

        Each pair ``(dst, src)`` means ``dst`` aggregates from ``src``.
        """
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        if isinstance(edges, np.ndarray):
            # Fast path for array input (e.g. the streaming edge-list
            # loader): no per-edge Python tuple materialization.
            arr = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
        else:
            arr = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
            raise GraphError("edge endpoint out of range")
        if deduplicate and arr.size:
            arr = np.unique(arr, axis=0)
        order = np.lexsort((arr[:, 1], arr[:, 0])) if arr.size else np.empty(0, np.int64)
        arr = arr[order]
        counts = np.bincount(arr[:, 0], minlength=num_vertices) if arr.size else np.zeros(
            num_vertices, dtype=np.int64
        )
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=arr[:, 1].copy(), name=name)

    @classmethod
    def from_scipy(cls, matrix, name: str = "graph") -> "CSRGraph":
        """Build from any scipy sparse matrix (rows = destinations)."""
        csr = matrix.tocsr()
        if csr.shape[0] != csr.shape[1]:
            raise GraphError(f"adjacency must be square, got {csr.shape}")
        return cls(
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int64),
            name=name,
        )

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def degrees(self) -> np.ndarray:
        """In-degree of every vertex (number of gathered neighbors)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    def cache_token(self) -> GraphToken:
        """Per-object identity token for graph-keyed caches.

        Unlike ``id(self)``, the token cannot alias another graph: it is
        created lazily, referenced only by this graph, and supports
        weakrefs so caches can evict entries when the graph dies.
        """
        if self._token is None:
            self._token = GraphToken()
        return self._token

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` — the vertices ``v`` gathers from."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def iter_vertices(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def with_self_loops(self) -> "CSRGraph":
        """Return a copy where every vertex also gathers from itself.

        The aggregation of Eq. 1 runs over ``N(v) ∪ {v}``; materializing the
        self edge lets kernels treat all inputs uniformly.
        """
        n = self.num_vertices
        degs = self.degrees()
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs + 1, out=new_indptr[1:])
        new_indices = np.empty(self.num_edges + n, dtype=np.int64)
        for v in range(n):
            start = new_indptr[v]
            row = self.neighbors(v)
            new_indices[start : start + len(row)] = row
            new_indices[start + len(row)] = v
        return CSRGraph(new_indptr, new_indices, name=self.name + "+self")

    def has_self_loops(self) -> bool:
        for v in range(self.num_vertices):
            if v in self.neighbors(v):
                return True
        return False

    def csc_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Transpose-CSR (CSC) view of the adjacency, cached on the graph.

        Returns ``(t_indptr, t_indices, t_perm)``: the CSR arrays of the
        transposed graph plus the permutation mapping each transposed
        edge position to its original edge position.  Any per-edge array
        aligned with ``indices`` (e.g. the ψ edge factors) becomes the
        transposed graph's per-edge array via ``array[t_perm]`` — the
        layout the backward kernels (``grad_h = Âᵀ grad_a``) gather from.

        The arrays are computed once and cached; they are derived state,
        stripped on pickle and rebuilt lazily where needed.
        """
        if self._csc is None:
            n = self.num_vertices
            # Stable sort groups edges by source while preserving the
            # (dst-major) order within each group, so each transposed row
            # lists its neighbors in ascending order — the same layout
            # ``from_edges`` would build.
            perm = np.argsort(self.indices, kind="stable")
            dst = np.repeat(np.arange(n, dtype=np.int64), self.degrees())
            t_indices = dst[perm]
            counts = (
                np.bincount(self.indices, minlength=n)
                if self.num_edges
                else np.zeros(n, dtype=np.int64)
            )
            t_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=t_indptr[1:])
            self._csc = (t_indptr, t_indices, perm)
        return self._csc

    def transpose(self) -> "CSRGraph":
        """The transposed graph (out-edges become in-edges), cached.

        The backward pass propagates gradients along reversed edges, so
        training touches both directions every epoch; the transpose is
        built once per graph.  ``g.transpose().transpose() is g``.
        """
        if self._transpose is None:
            t_indptr, t_indices, _ = self.csc_arrays()
            transposed = CSRGraph(t_indptr, t_indices, name=self.name + "^T")
            transposed._transpose = self  # round-trip identity
            self._transpose = transposed
        return self._transpose

    def reverse(self) -> "CSRGraph":
        """Alias of :meth:`transpose` (kept for the original API)."""
        return self.transpose()

    def to_scipy(self):
        """Adjacency as a scipy CSR matrix of float32 ones."""
        import scipy.sparse as sp

        data = np.ones(self.num_edges, dtype=np.float32)
        n = self.num_vertices
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Ship only the defining arrays: derived caches (CSC view,
        transpose back-reference, identity token) are per-process state —
        the transpose back-pointer would even drag a second graph along.
        """
        state = dict(self.__dict__)
        for key in ("_csc", "_transpose", "_token"):
            state[key] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        for key in ("_csc", "_transpose", "_token"):
            self.__dict__.setdefault(key, None)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise GraphError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be nondecreasing")
        if self.indptr[-1] != len(self.indices):
            raise GraphError(
                f"indptr[-1]={self.indptr[-1]} does not match "
                f"len(indices)={len(self.indices)}"
            )
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise GraphError("indices contain out-of-range vertex ids")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
