"""Unit tests for the Table-4 characterization renderer."""

import pytest

from repro.graphs import input_feature_size, load_dataset
from repro.perf.report import TABLE4_VARIANTS, characterization_table


@pytest.fixture(scope="module")
def table():
    graphs = {"products": load_dataset("products", scale=0.15, seed=0)}
    return characterization_table(graphs, {"products": 64}, f_hidden=128)


class TestCharacterizationTable:
    def test_all_variants_present(self, table):
        assert set(table.rows["products"]) == set(TABLE4_VARIANTS)

    def test_render_layout(self, table):
        text = table.render()
        assert "Retiring" in text
        assert "c-locality" in text
        assert "FillBufFull" in text

    def test_render_column_layout(self, table):
        lines = table.render().splitlines()
        header, rule = lines[0], lines[1]
        # One header, one rule, then one row per (graph, variant).
        assert len(lines) == 2 + len(TABLE4_VARIANTS)
        assert rule == "-" * len(header)
        # Column titles appear left-to-right in the paper's order.
        titles = ["Graph", "Implementation", "Retiring", "MemBound",
                  "L2", "L3", "DRAM-BW", "DRAM-Lat", "FillBufFull"]
        positions = [header.index(t) for t in titles]
        assert positions == sorted(positions)
        # Data rows line up with the header: same width, right-aligned
        # percentage cells in every metric column.
        for row in lines[2:]:
            assert len(row) == len(header)
            assert row.startswith("products")
            cells = row[26:]  # past the Graph/Implementation columns
            assert len(cells) == 12 * 7
            for i in range(7):
                cell = cells[i * 12:(i + 1) * 12]
                assert cell.endswith("%")
                assert cell[0] == " "  # fixed one-space column gutter

    def test_report_accessor(self, table):
        report = table.report("products", "distgnn")
        assert 0.0 <= report.retiring <= 1.0

    def test_improvement_metric(self, table):
        gain = table.improvement("products", "retiring")
        assert gain > 1.0  # c-locality retires more than distgnn

    def test_baseline_is_memory_bound(self, table):
        """The Figure 3 premise Table 4 elaborates: DistGNN stalls on memory."""
        report = table.report("products", "distgnn")
        assert report.memory_bound > 0.5
        assert report.memory_bound > report.retiring

    def test_optimized_variants_shrink_memory_bound(self, table):
        base = table.report("products", "distgnn").memory_bound
        best = table.report("products", "c-locality").memory_bound
        assert best < base

    def test_slot_shares_are_fractions(self, table):
        for variant in TABLE4_VARIANTS:
            report = table.report("products", variant)
            for attr in (
                "retiring", "memory_bound", "l2_bound", "l3_bound",
                "dram_bandwidth_bound", "dram_latency_bound",
                "fill_buffer_full",
            ):
                assert 0.0 <= getattr(report, attr) <= 1.0, (variant, attr)

    def test_unknown_keys_raise(self, table):
        with pytest.raises(KeyError):
            table.report("nonexistent-graph", "distgnn")
        with pytest.raises(KeyError):
            table.report("products", "nonexistent-variant")

    def test_variant_subset_respected(self):
        graphs = {"products": load_dataset("products", scale=0.15, seed=0)}
        table = characterization_table(
            graphs, {"products": 64}, variants=("distgnn", "combined")
        )
        assert set(table.rows["products"]) == {"distgnn", "combined"}
