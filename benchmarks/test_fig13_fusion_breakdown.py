"""Figure 13: execution-time split of basic vs fused on hidden layers."""

from conftest import run_experiment

from repro.bench.figures import fig13_fusion_breakdown


def test_fig13_fusion_breakdown(benchmark, ctx):
    exp = run_experiment(benchmark, fig13_fusion_breakdown, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # Aggregation dominates everywhere; wikipedia has the largest update
    # share and hence the most fusion headroom (the paper's explanation).
    for name in ("products", "wikipedia", "papers", "twitter"):
        assert values[f"{name} basic aggregation share"] > 0.5
        assert values[f"{name} fused inference (norm.)"] <= 1.0
        assert (
            values[f"{name} fused fwd-training (norm.)"]
            >= values[f"{name} fused inference (norm.)"]
        )
    assert exp.max_paper_deviation() < 0.35
