"""Unit tests for activation/loss functions with gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    accuracy,
    cross_entropy,
    dropout,
    dropout_grad,
    relu,
    relu_grad,
    softmax,
    xavier_uniform,
)


def numerical_grad(func, x, eps=1e-4):
    """Central-difference gradient of a scalar function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        high = func(x)
        flat[i] = orig - eps
        low = func(x)
        flat[i] = orig
        out[i] = (high - low) / (2 * eps)
    return grad


class TestRelu:
    def test_values(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.0])

    def test_grad_masks_negatives(self):
        x = np.array([-1.0, 0.5])
        g = relu_grad(x, np.array([3.0, 3.0]))
        np.testing.assert_array_equal(g, [0.0, 3.0])

    def test_grad_at_zero_is_zero(self):
        g = relu_grad(np.array([0.0]), np.array([1.0]))
        assert g[0] == 0.0


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        out, mask = dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out, x)
        assert mask is None

    def test_training_zeroes_and_scales(self, rng):
        x = np.ones((1000, 10), dtype=np.float32)
        out, mask = dropout(x, 0.5, rng, training=True)
        zero_fraction = np.mean(out == 0)
        assert 0.45 <= zero_fraction <= 0.55
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0)

    def test_expectation_preserved(self, rng):
        x = np.ones((200, 200), dtype=np.float32)
        out, _ = dropout(x, 0.3, rng, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_grad_applies_same_mask(self, rng):
        x = np.ones((10, 10), dtype=np.float32)
        out, mask = dropout(x, 0.5, rng, training=True)
        grad = dropout_grad(np.ones_like(x), mask, 0.5)
        np.testing.assert_array_equal(grad != 0, out != 0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            dropout(np.ones(3), 1.0, rng)


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.standard_normal((7, 5))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_softmax_shift_invariant(self, rng):
        logits = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            softmax(logits), softmax(logits + 100.0), rtol=1e-5
        )

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        labels = np.array([0, 1])
        loss, _ = cross_entropy(logits, labels)
        assert loss < 1e-4

    def test_gradient_matches_numerical(self, rng):
        logits = rng.standard_normal((5, 3)).astype(np.float64)
        labels = np.array([0, 1, 2, 1, 0])
        _, grad = cross_entropy(logits.copy(), labels)

        def loss_fn(x):
            loss, _ = cross_entropy(x.copy(), labels)
            return loss

        num = numerical_grad(loss_fn, logits.copy())
        np.testing.assert_allclose(grad, num, atol=1e-4)

    def test_mask_restricts_loss(self):
        logits = np.array([[5.0, -5.0], [-5.0, 5.0]], dtype=np.float32)
        labels = np.array([1, 1])  # first is wrong, second right
        mask = np.array([False, True])
        loss, grad = cross_entropy(logits, labels, mask=mask)
        assert loss < 1e-3  # only the correct vertex counts
        np.testing.assert_array_equal(grad[0], 0.0)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(np.ones((2, 2)), np.array([0, 1]), mask=np.zeros(2, bool))

    def test_label_shape_checked(self):
        with pytest.raises(ValueError):
            cross_entropy(np.ones((2, 2)), np.array([0, 1, 0]))


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_masked(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        labels = np.array([0, 1])
        assert accuracy(logits, labels, mask=np.array([True, False])) == 1.0

    def test_empty_mask(self):
        assert accuracy(np.ones((2, 2)), np.array([0, 1]), np.zeros(2, bool)) == 0.0


class TestInit:
    def test_xavier_bounds(self, rng):
        w = xavier_uniform(64, 32, rng)
        bound = np.sqrt(6.0 / 96)
        assert w.shape == (64, 32)
        assert np.abs(w).max() <= bound

    def test_xavier_dtype(self, rng):
        assert xavier_uniform(4, 4, rng).dtype == np.float32
