"""Hierarchical span tracer with a JSONL exporter.

A *span* is one timed region of a run — an epoch, a layer, one kernel
invocation, one worker's chunk batch — with a name, key/value
attributes, and numeric *counters* (the :class:`~repro.kernels.base.
KernelStats` quantities the kernel attached).  Spans nest: entering a
span while another is active makes it a child, so a traced training run
produces the tree ``epoch -> layer -> kernel.<name> -> worker``.

Tracing is **off by default and zero-cost when off**: the module-level
tracer is a :class:`NullTracer` whose ``span()`` returns one shared
no-op span object, so instrumented code pays a single attribute lookup
and method call per *region* (never per vertex — hot loops are not
instrumented).  Enable it by installing a real :class:`Tracer` with
:func:`set_tracer` (the CLI's ``--trace`` flag and ``repro profile`` do
this).

Export format (one JSON object per line):

* line 1 — a header record: ``{"kind": "trace_header", "schema": 1,
  "epoch_unix": ..., "spans": N}``;
* every following line — a span record: ``{"kind": "span", "span_id",
  "parent_id", "name", "start_s", "duration_s", "attrs", "counters"}``
  where ``start_s`` is seconds since the tracer was created and
  ``parent_id`` is ``null`` for roots.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Version of the span record layout written by :meth:`Tracer.export_jsonl`.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One timed, attributed region of the run."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add_counters(self, counters: Dict[str, float]) -> None:
        """Accumulate numeric counters onto this span (sums on repeat)."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "counters": self.counters,
        }


class _ActiveSpan:
    """Context manager binding a :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    # Convenience passthroughs so ``with tracer.span(...) as sp`` exposes
    # the same surface as the null span.
    def set_attr(self, key: str, value: Any) -> None:
        self.span.set_attr(key, value)

    def add_counters(self, counters: Dict[str, float]) -> None:
        self.span.add_counters(counters)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration_s = self._tracer.clock() - self.span.start_s
        self._tracer._pop(self.span)


class NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_counters(self, counters: Dict[str, float]) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer API with every operation a no-op (the disabled default)."""

    enabled = False

    def span(
        self, name: str, parent: Optional["Span"] = None, **attrs: Any
    ) -> NullSpan:
        return _NULL_SPAN

    def record(
        self,
        name: str,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
        counters: Optional[Dict[str, float]] = None,
        start_s: Optional[float] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        pass

    def stack_names(self, thread_id: int) -> List[str]:
        return []

    def adopt(
        self,
        records: List[Dict[str, Any]],
        offset_s: float = 0.0,
        parent: Optional["Span"] = None,
    ) -> int:
        return 0


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of spans; thread-safe, append-only.

    Each thread keeps its own active-span stack, so worker threads that
    open spans nest them under their own ancestry; spans synthesized for
    workers after the fact (:meth:`record`) attach to the recording
    thread's current span.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch_unix = time.time()
        self._epoch_perf = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()
        # Thread id -> that thread's live stack *object* (the same list
        # the thread-local holds), so the sampling profiler can read any
        # thread's open spans from its own thread.
        self._by_thread: Dict[int, List[Span]] = {}
        self.finished: List[Span] = []

    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return time.perf_counter() - self._epoch_perf

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._by_thread[threading.get_ident()] = stack
        return stack

    def stack_names(self, thread_id: int) -> List[str]:
        """Span names open on another thread, outermost first.

        Cross-thread read for the sampling profiler.  The snapshot is
        taken from a shallow copy, so a concurrent push/pop on the owner
        thread can at worst make the answer one span stale — fine for a
        statistical sample.
        """
        with self._lock:
            stack = self._by_thread.get(thread_id)
            if not stack:
                return []
            return [span.name for span in list(stack)]

    def _new_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def span(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> _ActiveSpan:
        """Open a child span of the caller's current span.

        ``parent`` overrides the implicit stack parent — the serving
        path uses it to hang a worker-thread span (``serve.batch``)
        under the request span opened on the HTTP handler thread.
        """
        if parent is None:
            parent = self.current()
        span = Span(
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_s=self.clock(),
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, span)

    def record(
        self,
        name: str,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
        counters: Optional[Dict[str, float]] = None,
        start_s: Optional[float] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """Add an already-measured span (e.g. a worker's chunk batch).

        The span becomes a child of the calling thread's current span
        unless an explicit ``parent`` is given (cross-thread spans);
        ``start_s`` defaults to ``now - duration_s``.
        """
        if parent is None:
            parent = self.current()
        if start_s is None:
            start_s = self.clock() - duration_s
        span = Span(
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            attrs=dict(attrs or {}),
            counters={k: float(v) for k, v in (counters or {}).items()},
        )
        with self._lock:
            self.finished.append(span)
        return span

    def adopt(
        self,
        records: List[Dict[str, Any]],
        offset_s: float = 0.0,
        parent: Optional[Span] = None,
    ) -> int:
        """Graft span records exported by *another* tracer into this one.

        This is how real worker-process spans come home: each record is
        re-issued a span id from this tracer, shifted by ``offset_s``
        (the worker tracer's epoch relative to ours), and the forest's
        roots are re-parented under ``parent`` (default: the calling
        thread's current span, normally the open kernel span).  Internal
        parent/child links within ``records`` are preserved.  Returns
        the number of spans adopted.
        """
        if parent is None:
            parent = self.current()
        id_map: Dict[int, int] = {}
        adopted: List[Span] = []
        for rec in sorted(records, key=lambda r: r.get("span_id", 0)):
            span = Span(
                span_id=self._new_id(),
                parent_id=None,
                name=rec.get("name", "span"),
                start_s=float(rec.get("start_s", 0.0)) + offset_s,
                duration_s=float(rec.get("duration_s", 0.0)),
                attrs=dict(rec.get("attrs") or {}),
                counters={
                    k: float(v) for k, v in (rec.get("counters") or {}).items()
                },
            )
            old_id = rec.get("span_id")
            if old_id is not None:
                id_map[old_id] = span.span_id
            old_parent = rec.get("parent_id")
            if old_parent is not None and old_parent in id_map:
                span.parent_id = id_map[old_parent]
            elif parent is not None:
                span.parent_id = parent.span_id
            adopted.append(span)
        with self._lock:
            self.finished.extend(adopted)
        return len(adopted)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.finished.append(span)

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by exact name or prefix.

        A trailing ``*`` in ``name`` matches by prefix, e.g.
        ``spans("kernel.*")``.
        """
        with self._lock:
            out = list(self.finished)
        if name is None:
            return out
        if name.endswith("*"):
            prefix = name[:-1]
            return [s for s in out if s.name.startswith(prefix)]
        return [s for s in out if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def aggregate_counters(self, name: Optional[str] = None) -> Dict[str, float]:
        """Sum counters over finished spans (optionally name-filtered)."""
        totals: Dict[str, float] = {}
        for span in self.spans(name):
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write the trace; returns the number of span records written."""
        spans = sorted(self.spans(), key=lambda s: s.span_id)
        header = {
            "kind": "trace_header",
            "schema": TRACE_SCHEMA_VERSION,
            "epoch_unix": self.epoch_unix,
            "spans": len(spans),
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            for span in spans:
                handle.write(json.dumps(span.to_record()) + "\n")
        return len(spans)


def read_trace(path: str) -> "tuple[Dict[str, Any], List[Dict[str, Any]]]":
    """Load a JSONL trace; returns (header, span records)."""
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("kind") != "trace_header":
        raise ValueError(f"{path}: not a trace file (missing header record)")
    return lines[0], [rec for rec in lines[1:] if rec.get("kind") == "span"]


def span_tree(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat span records into a tree (adds a ``children`` list)."""
    by_id: Dict[int, Dict[str, Any]] = {}
    for rec in records:
        node = dict(rec)
        node["children"] = []
        by_id[node["span_id"]] = node
    roots: List[Dict[str, Any]] = []
    for node in by_id.values():
        parent = (
            by_id.get(node["parent_id"]) if node["parent_id"] is not None else None
        )
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in by_id.values():
        node["children"].sort(key=lambda c: c["span_id"])
    roots.sort(key=lambda n: n["span_id"])
    return roots


def render_span_tree(records: List[Dict[str, Any]], max_counters: int = 4) -> str:
    """Human-readable indented rendering of a span forest."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        label = f"{'  ' * depth}{node['name']}"
        line = f"{label:<40} {node['duration_s'] * 1e3:9.2f} ms"
        counters = node.get("counters") or {}
        nonzero = [(k, v) for k, v in counters.items() if v]
        if nonzero:
            shown = sorted(nonzero, key=lambda kv: (-abs(kv[1]), kv[0]))
            line += "  " + " ".join(
                f"{k}={v:g}" for k, v in shown[:max_counters]
            )
        lines.append(line)
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(records):
        walk(root, 0)
    return "\n".join(lines)
