"""Process-wide metrics registry: counters, gauges, histograms.

Every instrumented subsystem publishes into one namespace so a run's
numbers are joinable afterwards:

* ``kernel.<name>.*`` — the :class:`~repro.kernels.base.KernelStats`
  counters of each kernel invocation (``kernel.basic.gathers``, ...);
* ``executor.*`` — chunk-executor wall time and per-worker chunk/vertex
  counts (``executor.worker0.chunks``);
* ``sim.*`` — cache / DRAM / prefetcher model counters
  (``sim.l2.misses``, ``sim.dram.bytes_served``);
* ``dma.*`` — DMA request-timeline outcomes
  (``dma.timeline.finish_cycles``).

Like the tracer, the registry is **disabled by default**: the module
singleton is a :class:`NullRegistry` whose operations are no-ops and
whose ``enabled`` flag lets publishers skip building metric dicts
entirely.  ``set_metrics(MetricsRegistry())`` turns collection on.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Mapping, Optional, Union

#: Raw observations a histogram keeps for exact percentiles; beyond this
#: the estimate falls back to the log-scaled bucket counts.
HISTOGRAM_SAMPLE_CAP = 512

#: Exported percentile summaries (see :meth:`Histogram.to_dict`).
HISTOGRAM_PERCENTILES = (50.0, 95.0, 99.0)


class Counter:
    """Monotonically increasing sum.

    ``inc`` is guarded by a lock: worker threads publish into shared
    counters, and a bare float ``+=`` is a read-modify-write that drops
    increments under contention.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (sums — both are monotone totals)."""
        with self._lock:
            self.value += other.value

    def to_dict(self) -> Dict[str, float]:
        return {"type": "counter", "value": self.value}

    def __getstate__(self):
        return {"value": self.value}

    def __setstate__(self, state) -> None:
        self.value = state["value"]
        self._lock = threading.Lock()


class Gauge:
    """Last-write-wins scalar with a monotonic last-update timestamp.

    The timestamp (``time.monotonic()`` at the last ``set``/``add``)
    rides along in :meth:`to_dict` as ``updated_monotonic`` so live
    views can flag stale values — e.g. a ``proc.rss_bytes`` gauge whose
    sampler thread died keeps its last value but stops advancing.
    """

    __slots__ = ("value", "updated_monotonic", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.updated_monotonic: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updated_monotonic = time.monotonic()

    def add(self, delta: float) -> None:
        """Atomic in-place adjustment (live queue-depth style gauges)."""
        with self._lock:
            self.value += float(delta)
            self.updated_monotonic = time.monotonic()

    def age_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the last update (None when never written)."""
        if self.updated_monotonic is None:
            return None
        return (time.monotonic() if now is None else now) - self.updated_monotonic

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: the later-updated value wins.

        A never-written gauge always loses; on equal timestamps the
        incoming value wins (the merge source is the fresher report).
        """
        if other.updated_monotonic is None:
            return
        with self._lock:
            if (
                self.updated_monotonic is None
                or other.updated_monotonic >= self.updated_monotonic
            ):
                self.value = other.value
                self.updated_monotonic = other.updated_monotonic

    def __getstate__(self):
        return {"value": self.value, "updated_monotonic": self.updated_monotonic}

    def __setstate__(self, state) -> None:
        self.value = state["value"]
        self.updated_monotonic = state["updated_monotonic"]
        self._lock = threading.Lock()

    def to_dict(self) -> Dict[str, float]:
        return {
            "type": "gauge",
            "value": self.value,
            "updated_monotonic": self.updated_monotonic,
        }


class Histogram:
    """Streaming summary with percentile estimation.

    Keeps count / total / min / max plus the raw observations up to
    :data:`HISTOGRAM_SAMPLE_CAP`; past the cap, log2-scaled bucket counts
    take over and :meth:`percentile` interpolates inside the bucket.  The
    exported document therefore always carries p50/p95/p99 — exact for
    the typical few-hundred-observation run, bounded-error afterwards.

    ``observe`` / ``percentile`` / ``to_dict`` are guarded by one lock:
    worker threads observe concurrently while a live scrape exports, and
    an unguarded export could otherwise iterate ``_buckets`` mid-resize
    or see ``count`` disagree with the sample list.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_buckets", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []
        self._buckets: Dict[int, int] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= 0.0:
            return -1074  # below any positive float's exponent
        return math.frexp(value)[1]  # exponent e with value in [2^(e-1), 2^e)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
                self._samples.append(value)
            bucket = self._bucket_of(value)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing the block's monotonic duration.

        ``with hist.time(): ...`` is equivalent to measuring the block
        with ``time.perf_counter()`` and calling :meth:`observe` with
        the difference — the duration is recorded even when the block
        raises, so error latencies still land in the distribution.
        """
        return _HistogramTimer(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            return self._percentile(q)

    def _percentile(self, q: float) -> float:
        """Unlocked percentile body (callers hold ``_lock``)."""
        if self.count == 0:
            return 0.0
        # The extremes are tracked exactly; the bucket estimate would
        # otherwise answer with a bucket bound (wrong for values <= 0,
        # which share one sentinel underflow bucket).
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        if len(self._samples) == self.count:
            # Exact: linear interpolation over the sorted raw samples.
            ordered = sorted(self._samples)
            rank = (q / 100.0) * (len(ordered) - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, len(ordered) - 1)
            frac = rank - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        # Estimate: walk the log buckets to the one holding the rank,
        # interpolate linearly within its [2^(e-1), 2^e) range.
        target = (q / 100.0) * self.count
        seen = 0
        for bucket in sorted(self._buckets):
            in_bucket = self._buckets[bucket]
            if seen + in_bucket >= target:
                low = 0.0 if bucket <= -1074 else math.ldexp(1.0, bucket - 1)
                high = math.ldexp(1.0, bucket)
                frac = (target - seen) / in_bucket
                value = low + (high - low) * frac
                return min(max(value, self.min), self.max)
            seen += in_bucket
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in: counts, extremes, samples, buckets.

        The raw-sample list concatenates up to the cap, so two small
        histograms merge exactly; past the cap the log-bucket counts
        (which always sum losslessly) carry the percentile estimate.
        """
        with self._lock:
            self.count += other.count
            self.total += other.total
            if other.count:
                self.min = min(self.min, other.min)
                self.max = max(self.max, other.max)
            room = HISTOGRAM_SAMPLE_CAP - len(self._samples)
            if room > 0:
                self._samples.extend(other._samples[:room])
            for bucket, in_bucket in other._buckets.items():
                self._buckets[bucket] = self._buckets.get(bucket, 0) + in_bucket

    def to_dict(self) -> Dict[str, float]:
        with self._lock:
            out = {
                "type": "histogram",
                "count": self.count,
                "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.total / self.count if self.count else 0.0,
            }
            for q in HISTOGRAM_PERCENTILES:
                out[f"p{q:g}"] = self._percentile(q)
            return out

    def __getstate__(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": self._samples,
            "buckets": self._buckets,
        }

    def __setstate__(self, state) -> None:
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]
        self._samples = state["samples"]
        self._buckets = state["buckets"]
        self._lock = threading.Lock()


class _HistogramTimer:
    """Times a ``with`` block and observes the duration in seconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    Names are dot-separated, lowercase, ``<subsystem>.<detail>`` (see
    the module docstring).  Re-registering a name with a different
    metric type raises — a namespace collision is a bug, not data.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls: type) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls()
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    # Convenience one-shots ------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ---------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry", prefix: str = "") -> int:
        """Fold another registry's metrics into this one.

        Counters sum, gauges keep the later-updated value, histograms
        merge counts/extremes/buckets.  ``prefix`` namespaces every
        incoming metric (``worker0.`` turns ``work.gathers`` into
        ``worker0.work.gathers``) — how per-worker registries land in
        the parent without colliding.  Type collisions raise, same as
        registration.  Returns the number of metrics merged.
        """
        with other._lock:
            incoming = dict(other._metrics)
        for name in sorted(incoming):
            metric = incoming[name]
            mine = self._get_or_create(prefix + name, type(metric))
            mine.merge(metric)
        return len(incoming)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Immutable dict view of every metric, sorted by name."""
        with self._lock:
            return {
                name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)
            }

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:  # same discipline as snapshot(): never read bare
            return len(self._metrics)

    def __getstate__(self):
        # Registries travel from worker processes back to the parent;
        # the lock is recreated on unpickle (metrics carry their own).
        with self._lock:
            return {"metrics": dict(self._metrics)}

    def __setstate__(self, state) -> None:
        self._metrics = state["metrics"]
        self._lock = threading.Lock()


class NullRegistry(MetricsRegistry):
    """Disabled registry: publishers check ``enabled`` and skip work."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = Counter()
        self._null_gauge = Gauge()
        self._null_histogram = Histogram()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_REGISTRY = NullRegistry()


def publish_counters(
    registry: MetricsRegistry, prefix: str, counters: Mapping[str, float]
) -> None:
    """Add a dict of counter deltas under ``prefix.`` (no-op if disabled)."""
    if not registry.enabled:
        return
    for key, value in counters.items():
        if value >= 0:
            registry.inc(f"{prefix}.{key}", value)
        else:  # negative deltas (shouldn't happen) become gauges, not errors
            registry.set_gauge(f"{prefix}.{key}", value)
