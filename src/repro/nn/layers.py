"""GNN layers: aggregation phase + update phase, forward and backward.

A layer computes ``h_k = ReLU(W_k a_k + b_k)`` where ``a_k`` is the
aggregation of ``h_{k-1}`` (Eqs. 1-2, Table 2).  The backward pass
"computes the gradients of h_{k-1}, a_k, W_k, and b_k; it has one more
GEMM than the forward propagation" (Section 7.1.1) — visible below as the
two GEMMs in :meth:`GNNLayer.backward` versus one in ``forward``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import AggregationKernel, KernelStats
from . import functional as F
from .aggregate import aggregate, aggregate_backward, canonical_aggregator


@dataclass
class LayerCache:
    """Intermediates stashed by forward for use in backward.

    ``a`` is the full aggregation feature matrix — the reason training
    cannot use the fused inference buffer trick of Figure 5c.
    """

    h_in: np.ndarray
    a: np.ndarray
    pre_activation: np.ndarray
    dropout_mask: Optional[np.ndarray] = None
    agg_stats: Optional[KernelStats] = None  # set when a kernel ran aggregation


@dataclass
class LayerGrads:
    """Parameter and input gradients produced by one backward call."""

    weight: np.ndarray
    bias: np.ndarray
    h_in: np.ndarray
    agg_stats: Optional[KernelStats] = None  # set when a kernel ran backward


class GNNLayer:
    """One GCN or GraphSAGE layer.

    Args:
        in_features: length of the input feature vectors.
        out_features: length of the output feature vectors.
        aggregator: ``"gcn"`` or ``"mean"`` (Table 2).
        activation: apply ReLU after the FC update (both paper models do;
            the final classification layer typically does not).
        dropout: input-feature dropout rate applied in training.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        aggregator: str = "gcn",
        activation: bool = True,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        aggregator = canonical_aggregator(aggregator)
        if aggregator not in ("gcn", "mean"):
            raise ValueError(
                f"aggregator must be one of ('gcn', 'mean'), got {aggregator!r}"
            )
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.aggregator = aggregator
        self.activation = activation
        self.dropout = dropout
        rng = np.random.default_rng(seed)
        self.weight = F.xavier_uniform(in_features, out_features, rng)
        self.bias = np.zeros(out_features, dtype=np.float32)
        self._rng = rng

    # ------------------------------------------------------------------
    def forward(
        self,
        graph: CSRGraph,
        h_in: np.ndarray,
        training: bool = False,
        kernel: Optional[AggregationKernel] = None,
    ) -> "tuple[np.ndarray, LayerCache]":
        """Aggregation then update; returns (h_out, cache).

        ``kernel`` swaps the SpMM oracle for one of the optimized
        execution strategies (e.g. a multi-worker ``BasicKernel``); the
        update GEMM and the cache layout are unchanged.
        """
        if h_in.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {h_in.shape[1]}"
            )
        h_dropped, mask = F.dropout(h_in, self.dropout, self._rng, training=training)
        agg_stats = None
        if kernel is not None:
            a, agg_stats = kernel.aggregate(graph, h_dropped, self.aggregator)
        else:
            a = aggregate(graph, h_dropped, self.aggregator)
        pre = a @ self.weight + self.bias
        h_out = F.relu(pre) if self.activation else pre
        cache = LayerCache(
            h_in=h_dropped, a=a, pre_activation=pre, dropout_mask=mask,
            agg_stats=agg_stats,
        )
        # astype preserves the working dtype (fp32 normally, fp64 when a
        # gradcheck drives the pipeline at double precision); copy=False
        # keeps the fp32 path allocation-free.
        return h_out.astype(pre.dtype, copy=False), cache

    def backward(
        self,
        graph: CSRGraph,
        grad_out: np.ndarray,
        cache: LayerCache,
        kernel: Optional[AggregationKernel] = None,
    ) -> LayerGrads:
        """Chain rule through update then aggregation.

        The ReLU backward is *fused* into the update backward: instead of
        materializing ``relu_grad`` and then running two GEMMs, the
        activation mask is applied once as a masked multiply and the
        masked gradient feeds both GEMMs directly — one masked BLAS pair
        per layer, no fp64 promotion, no extra temporary.

        ``kernel`` routes the aggregation backward (``Âᵀ grad_a``)
        through an optimized execution strategy when it provides
        ``aggregate_backward`` (e.g. the batched cached-CSC engine of
        :class:`~repro.kernels.BasicKernel`); otherwise the transpose-
        SpMM fallback runs.
        """
        if self.activation:
            # Fold relu' into the GEMM pair: mask once, reuse for both.
            grad_pre = grad_out * (cache.pre_activation > 0)
        else:
            grad_pre = grad_out
        grad_w = cache.a.T @ grad_pre
        grad_b = grad_pre.sum(axis=0)
        grad_a = grad_pre @ self.weight.T  # the extra GEMM of Section 7.1.1
        agg_stats = None
        if kernel is not None and hasattr(kernel, "aggregate_backward"):
            grad_h, agg_stats = kernel.aggregate_backward(
                graph, np.ascontiguousarray(grad_a), self.aggregator
            )
        else:
            grad_h = aggregate_backward(graph, grad_a, self.aggregator)
        grad_h = F.dropout_grad(grad_h, cache.dropout_mask, self.dropout)
        return LayerGrads(
            weight=grad_w.astype(self.weight.dtype, copy=False),
            bias=grad_b.astype(self.bias.dtype, copy=False),
            h_in=grad_h.astype(cache.h_in.dtype, copy=False),
            agg_stats=agg_stats,
        )

    # ------------------------------------------------------------------
    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def apply_grads(self, grads: LayerGrads, lr: float) -> None:
        """Plain SGD step (optimizers in :mod:`repro.nn.optim` wrap this)."""
        self.weight -= lr * grads.weight
        self.bias -= lr * grads.bias

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GNNLayer({self.in_features}->{self.out_features}, "
            f"agg={self.aggregator}, relu={self.activation}, "
            f"dropout={self.dropout})"
        )


def gcn_layer(in_features: int, out_features: int, **kwargs) -> GNNLayer:
    """Convenience constructor for a GCN layer (Table 2, row 1)."""
    return GNNLayer(in_features, out_features, aggregator="gcn", **kwargs)


def sage_layer(in_features: int, out_features: int, **kwargs) -> GNNLayer:
    """Convenience constructor for a GraphSAGE-mean layer (Table 2, row 2)."""
    return GNNLayer(in_features, out_features, aggregator="mean", **kwargs)
