"""Unit tests for the JIT kernel-specialization cache (Section 4.1)."""

import gc

import numpy as np
import pytest

from repro.graphs import synthetic_features, uniform_graph
from repro.kernels import BasicKernel, JitKernelCache, KernelSpec
from repro.nn import aggregate


class TestCache:
    def test_compile_once_per_spec(self, small_products):
        cache = JitKernelCache()
        spec = KernelSpec(feature_len=16, aggregator="gcn")
        cache.specialize(small_products, spec)
        cache.specialize(small_products, spec)
        assert cache.compilations == 1
        assert len(cache) == 1

    def test_new_spec_compiles_again(self, small_products):
        cache = JitKernelCache()
        cache.specialize(small_products, KernelSpec(16, "gcn"))
        cache.specialize(small_products, KernelSpec(32, "gcn"))
        cache.specialize(small_products, KernelSpec(16, "mean"))
        assert cache.compilations == 3

    def test_per_graph_specialization(self, small_products, small_uniform):
        cache = JitKernelCache()
        cache.specialize(small_products, KernelSpec(16, "gcn"))
        cache.specialize(small_uniform, KernelSpec(16, "gcn"))
        assert cache.compilations == 2

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            KernelSpec(feature_len=0, aggregator="gcn")

    def test_specialized_kernel_checks_width(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize(small_products, KernelSpec(16, "gcn"))
        wrong = np.ones((small_products.num_vertices, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            kernel(wrong, 0)

    def test_specialized_kernel_correct(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize(small_products, KernelSpec(12, "mean"))
        h = synthetic_features(small_products, 12, seed=0)
        reference = aggregate(small_products, h, "mean")
        for v in (0, 5, small_products.num_vertices - 1):
            np.testing.assert_allclose(kernel(h, v), reference[v], atol=1e-5)


class TestAmortization:
    def test_repeated_layers_amortize(self, small_products):
        """The training-loop pattern: the second epoch compiles nothing."""
        cache = JitKernelCache()
        kernel = BasicKernel(jit_cache=cache)
        h = synthetic_features(small_products, 16, seed=1)
        _, first = kernel.aggregate(small_products, h, "gcn")
        _, second = kernel.aggregate(small_products, h, "gcn")
        assert first.jit_compilations == 1
        assert second.jit_compilations == 0


class TestBatchedSpecialization:
    def test_matches_reference_on_all_vertices(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize_batched(small_products, KernelSpec(12, "mean"))
        h = synthetic_features(small_products, 12, seed=0)
        reference = aggregate(small_products, h, "mean")
        verts = np.arange(small_products.num_vertices, dtype=np.int64)
        np.testing.assert_allclose(kernel(h, verts), reference, atol=2e-5)

    def test_matches_loop_closure_per_chunk(self, small_products):
        cache = JitKernelCache()
        spec = KernelSpec(8, "gcn")
        loop = cache.specialize(small_products, spec)
        batched = cache.specialize_batched(small_products, spec)
        h = synthetic_features(small_products, 8, seed=2)
        verts = np.arange(17, 49, dtype=np.int64)
        looped = np.stack([loop(h, int(v)) for v in verts])
        np.testing.assert_allclose(batched(h, verts), looped, atol=2e-5)

    def test_contiguous_and_scattered_paths_agree(self, small_products):
        """The contiguous CSR-slice fast path and the reduceat gather
        path must compute the same rows."""
        cache = JitKernelCache()
        kernel = cache.specialize_batched(small_products, KernelSpec(8, "gcn"))
        h = synthetic_features(small_products, 8, seed=3)
        verts = np.arange(10, 42, dtype=np.int64)
        contiguous = kernel(h, verts)
        shuffled = np.random.default_rng(0).permutation(verts)
        scattered = kernel(h, shuffled)
        np.testing.assert_allclose(
            scattered[np.argsort(shuffled)], contiguous, atol=2e-5
        )

    def test_empty_vertex_array(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize_batched(small_products, KernelSpec(4, "sum"))
        h = synthetic_features(small_products, 4, seed=0)
        out = kernel(h, np.empty(0, dtype=np.int64))
        assert out.shape == (0, 4)

    def test_checks_width(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize_batched(small_products, KernelSpec(16, "gcn"))
        wrong = np.ones((small_products.num_vertices, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            kernel(wrong, np.array([0]))

    def test_cached_separately_from_loop(self, small_products):
        cache = JitKernelCache()
        spec = KernelSpec(16, "gcn")
        cache.specialize(small_products, spec)
        cache.specialize_batched(small_products, spec)
        cache.specialize(small_products, spec)
        cache.specialize_batched(small_products, spec)
        assert cache.compilations == 2
        assert len(cache) == 2


class TestBackwardSpecialization:
    """The transpose-direction closures behind the batched backward."""

    def test_cached_separately_per_direction(self, small_products):
        """Forward and backward share a spec but never a cache entry —
        they close over different (transposed) factor layouts."""
        cache = JitKernelCache()
        spec = KernelSpec(8, "gcn")
        cache.specialize(small_products, spec)
        cache.specialize_batched(small_products, spec)
        cache.specialize_backward(small_products, spec)
        cache.specialize_batched_backward(small_products, spec)
        assert cache.compilations == 4
        assert len(cache) == 4
        # Second round hits the cache for every direction.
        cache.specialize_backward(small_products, spec)
        cache.specialize_batched_backward(small_products, spec)
        assert cache.compilations == 4

    def test_batched_backward_matches_loop_backward(self, small_products):
        cache = JitKernelCache()
        spec = KernelSpec(8, "gcn")
        loop = cache.specialize_backward(small_products, spec)
        batched = cache.specialize_batched_backward(small_products, spec)
        grad_a = synthetic_features(small_products, 8, seed=4)
        verts = np.arange(13, 57, dtype=np.int64)
        looped = np.stack([loop(grad_a, int(v)) for v in verts])
        np.testing.assert_allclose(batched(grad_a, verts), looped, atol=2e-5)

    def test_backward_is_transpose_of_forward(self, small_uniform):
        """<Â h, g> == <h, Âᵀ g> — the adjointness identity that defines
        the backward kernel, checked against the forward closure."""
        cache = JitKernelCache()
        spec = KernelSpec(6, "gcn")
        fwd = cache.specialize_batched(small_uniform, spec)
        bwd = cache.specialize_batched_backward(small_uniform, spec)
        rng = np.random.default_rng(0)
        h = rng.standard_normal((small_uniform.num_vertices, 6)).astype(np.float32)
        g = rng.standard_normal((small_uniform.num_vertices, 6)).astype(np.float32)
        verts = np.arange(small_uniform.num_vertices, dtype=np.int64)
        lhs = float((fwd(h, verts) * g).sum())
        rhs = float((h * bwd(g, verts)).sum())
        assert abs(lhs - rhs) <= 1e-3 * max(abs(lhs), 1.0)

    def test_backward_entries_amortize_in_kernel(self, small_products):
        """Training pattern: the second backward pass compiles nothing."""
        kernel = BasicKernel(engine="batched")
        grad_a = synthetic_features(small_products, 16, seed=5)
        _, first = kernel.aggregate_backward(small_products, grad_a, "gcn")
        _, second = kernel.aggregate_backward(small_products, grad_a, "gcn")
        assert first.jit_compilations == 1
        assert second.jit_compilations == 0


class TestWeakrefKeying:
    """Regression: the cache used to key off ``id(graph)``, so a look-alike
    graph allocated at a dead graph's address silently inherited its
    ψ-factor closures (wrong normalization, no recompilation)."""

    def test_entries_evicted_when_graph_dies(self):
        cache = JitKernelCache()
        graph = uniform_graph(40, avg_degree=4.0, seed=0)
        cache.specialize(graph, KernelSpec(8, "gcn"))
        cache.specialize_batched(graph, KernelSpec(8, "gcn"))
        assert len(cache) == 2
        del graph
        gc.collect()
        assert len(cache) == 0

    def test_look_alike_graph_gets_fresh_kernel(self):
        """Drop a graph, allocate same-shaped graphs hunting for address
        reuse: every one must recompile and use its own factors."""
        cache = JitKernelCache()
        spec = KernelSpec(4, "gcn")
        graph = uniform_graph(30, avg_degree=3.0, seed=0)
        cache.specialize(graph, spec)
        del graph
        gc.collect()
        for seed in range(1, 21):
            look_alike = uniform_graph(30, avg_degree=3.0, seed=seed)
            before = cache.compilations
            kernel = cache.specialize(look_alike, spec)
            assert cache.compilations == before + 1
            h = synthetic_features(look_alike, 4, seed=seed)
            reference = aggregate(look_alike, h, "gcn")
            np.testing.assert_allclose(kernel(h, 0), reference[0], atol=1e-5)
            del look_alike, kernel
            gc.collect()
        assert len(cache) == 0

    def test_live_graphs_keyed_independently(self):
        cache = JitKernelCache()
        spec = KernelSpec(4, "sum")
        graphs = [uniform_graph(25, avg_degree=3.0, seed=s) for s in range(4)]
        kernels = [cache.specialize(g, spec) for g in graphs]
        assert cache.compilations == 4
        for g, k in zip(graphs, kernels):
            h = synthetic_features(g, 4, seed=9)
            np.testing.assert_allclose(k(h, 1), aggregate(g, h, "sum")[1], atol=1e-5)

    def test_token_survives_pickle_roundtrip(self, small_products):
        """Workers unpickle the graph; specialization must still work."""
        import pickle

        clone = pickle.loads(pickle.dumps(small_products))
        cache = JitKernelCache()
        cache.specialize(small_products, KernelSpec(4, "gcn"))
        cache.specialize(clone, KernelSpec(4, "gcn"))
        assert cache.compilations == 2
