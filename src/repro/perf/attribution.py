"""Per-span analytic predictions — the perf-side glue of attribution.

The observability layer (:mod:`repro.obs.attrib`) joins each traced
kernel span with the *analytic* story the paper tells about it: how many
DRAM bytes the variant should move (:mod:`repro.perf.traffic`) and
whether that makes the span memory- or compute-bound on the modeled
machine (the Figure 3 / Table 4 verdict).  This module turns one span
record — name, ``vertices``/``edges``/``features`` attributes, measured
``KernelStats`` counters — into those predictions, without touching the
tracer itself, so the perf plane stays importable on its own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .cost_model import AGGREGATION_COMPUTE_EFFICIENCY, VARIANTS, VariantSpec
from .machine import MachineConfig, cascade_lake_28
from .traffic import (
    LayerShape,
    PhaseTraffic,
    aggregation_traffic,
    decompress_elements,
    update_traffic,
)

#: Traced span name -> cost-model variant it executes.
SPAN_VARIANTS: Dict[str, str] = {
    "kernel.mkl": "mkl",
    "kernel.basic": "basic",
    # The backward aggregation (Âᵀ grad_a) has the basic kernel's shape:
    # same gather-reduce structure over the transposed adjacency, so the
    # same traffic/compute model prices it and backward spans get
    # attribution rows of their own.
    "kernel.backward.basic": "basic",
    "kernel.fusion": "fusion",
    "kernel.compression": "compression",
    "kernel.combined": "combined",
}

#: Traced span name -> execution *phase*.  Where :data:`SPAN_VARIANTS`
#: buckets by cost-model variant, this buckets by training phase — the
#: granularity the sampling profiler attributes interpreter time at and
#: the architecture-characterization literature reports breakdowns in.
SPAN_PHASES: Dict[str, str] = {
    "kernel.basic": "aggregate",
    "kernel.mkl": "aggregate",
    "kernel.fusion": "update",
    "kernel.combined": "update",
    "kernel.compression": "compress",
    "kernel.backward.basic": "backward",
    "backward": "backward",
    "layer.backward": "backward",
}


def span_phase(name: str) -> Optional[str]:
    """Phase of one span name (``kernel.backward.*`` matches by prefix)."""
    phase = SPAN_PHASES.get(name)
    if phase is not None:
        return phase
    if name.startswith("kernel.backward."):
        return "backward"
    return None


@dataclass(frozen=True)
class SpanWorkload:
    """The analytic shape of the work one kernel span performed."""

    variant: str
    shape: LayerShape
    f_out: Optional[int]  # update width for fused spans, else None
    write_a: bool  # aggregation output goes to DRAM (Figure 5)
    fused: bool
    compressed: bool

    @property
    def spec(self) -> VariantSpec:
        return VARIANTS[self.variant]


def workload_from_span(record: Dict[str, Any]) -> Optional[SpanWorkload]:
    """Recover the workload shape of one traced kernel-span record.

    Returns None for spans that are not kernel invocations (epochs,
    layers, workers, sim spans).  ``edges`` falls back to the measured
    ``gathers`` counter minus the vertex count (one gather per edge plus
    the self contribution) for traces written before the ``edges``
    attribute existed.
    """
    variant = SPAN_VARIANTS.get(record.get("name", ""))
    if variant is None:
        return None
    attrs = record.get("attrs") or {}
    counters = record.get("counters") or {}
    vertices = attrs.get("vertices")
    f_in = attrs.get("features")
    if vertices is None or f_in is None:
        return None
    vertices = int(vertices)
    f_in = int(f_in)
    edges = attrs.get("edges")
    if edges is None:
        gathers = counters.get("gathers")
        if gathers is None:
            return None
        edges = int(gathers) - vertices
    edges = max(0, int(edges))

    spec = VARIANTS[variant]
    f_out: Optional[int] = None
    if spec.fused:
        f_out = attrs.get("features_out")
        if f_out is None:
            # Legacy traces: solve flops = 2*gathers*f_in + 2*n*f_in*f_out.
            flops = counters.get("flops", 0.0)
            gathers = counters.get("gathers", edges + vertices)
            gemm_flops = flops - 2.0 * gathers * f_in
            if vertices > 0 and f_in > 0 and gemm_flops > 0:
                f_out = max(1, int(round(gemm_flops / (2.0 * vertices * f_in))))
        if f_out is not None:
            f_out = int(f_out)
    # Fused inference keeps ``a`` in a reusable cache buffer (Figure 5c);
    # training — and every unfused kernel — writes it to DRAM.
    write_a = bool(attrs.get("keep_aggregation", True)) or not spec.fused
    shape = LayerShape(
        num_vertices=vertices,
        num_edges=edges,
        f_in=f_in,
        f_out=f_out if f_out is not None else f_in,
    )
    return SpanWorkload(
        variant=variant,
        shape=shape,
        f_out=f_out,
        write_a=write_a,
        fused=spec.fused,
        compressed=spec.compressed,
    )


def predict_phase_traffic(
    workload: SpanWorkload,
    hit_rate: float,
    sparsity: float = 0.0,
) -> Dict[str, PhaseTraffic]:
    """Analytic DRAM traffic of the span, keyed by execution phase."""
    phases = {
        "aggregation": aggregation_traffic(
            workload.shape,
            gather_hit_rate=hit_rate,
            feature_sparsity=sparsity,
            compressed=workload.compressed,
            write_a=workload.write_a,
        )
    }
    if workload.fused:
        phases["update"] = update_traffic(
            workload.shape,
            feature_sparsity=sparsity,
            compressed=workload.compressed,
            fused=True,
        )
    return phases


def predict_phase_times(
    workload: SpanWorkload,
    phases: Dict[str, PhaseTraffic],
    machine: Optional[MachineConfig] = None,
) -> Tuple[float, float]:
    """(memory_seconds, compute_seconds) the machine model assigns.

    The larger side is the bottleneck: the same comparison the cost model
    uses to decide whether a phase runs at the bandwidth limit or the
    FLOP limit (DESIGN.md §7's timing law, applied to a measured span).
    """
    machine = machine or cascade_lake_28()
    bw_eff = workload.spec.bw_efficiency(machine)
    total_bytes = sum(t.dram_total for t in phases.values())
    memory_s = machine.stream_time(total_bytes, bw_eff)
    agg = phases["aggregation"]
    compute_s = agg.flops / (machine.peak_flops * AGGREGATION_COMPUTE_EFFICIENCY)
    compute_s += decompress_elements(workload.shape, workload.compressed) / (
        machine.cores * machine.frequency_hz * machine.decompress_elements_per_cycle
    )
    update = phases.get("update")
    if update is not None:
        compute_s += machine.gemm_time(update.flops, small=True)
    return memory_s, compute_s


def compressed_effective_feature_len(f_in: int, traffic_ratio: float) -> int:
    """Feature length whose dense rows move what compressed rows move.

    Used to drive the line-granular cache simulator with a compressed
    working set: a dense run at this width approximates the compressed
    run's byte traffic (exact only when the scaled row still fills whole
    cache lines — the simulator cannot move a fraction of a line).
    """
    if not 0.0 < traffic_ratio <= 1.0 + 1e-9:
        raise ValueError(f"traffic ratio must be in (0, 1], got {traffic_ratio}")
    return max(1, int(math.ceil(f_in * traffic_ratio)))
