"""Differential test harness: every execution mode is provably equivalent.

The full matrix — kernel x aggregator x backend x worker count — must
produce the same answer.  Two levels of equivalence are enforced on
seeded random power-law graphs (the degree skew the paper's dynamic
scheduler exists for):

* **bitwise** across backends and worker counts: each vertex row is
  computed by the same specialized closure whichever worker runs its
  chunk, so ``serial``, ``thread``, and ``process`` outputs must be
  ``np.array_equal`` — not merely close;
* **numeric** against the dense SpMM reference oracle
  (:func:`repro.nn.aggregate`), up to fp32 reduction-order noise.

A determinism section additionally re-runs the concurrent backends and
requires bitwise-identical outputs and identical merged work counters.
"""

import numpy as np
import pytest

from repro.graphs import power_law_graph, synthetic_features
from repro.kernels import (
    BasicKernel,
    CompressedFusedKernel,
    CompressedKernel,
    FusedKernel,
    UpdateParams,
)
from repro.nn import aggregate
from repro.parallel import ChunkExecutor

AGGREGATORS = ("gcn", "sage-mean")

#: (backend, workers) cells of the execution matrix; serial is the baseline.
BACKEND_CELLS = [
    ("serial", 1),
    ("thread", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 1),
    ("process", 2),
    ("process", 4),
]

GRAPH_SEEDS = (3, 19)


def _graph(seed):
    return power_law_graph(150 + 31 * seed, avg_degree=7.0, seed=seed)


def _features(graph, seed):
    return synthetic_features(graph, 24, seed=seed, sparsity=0.4)


def _params(f_in, f_out, seed=0):
    rng = np.random.default_rng(seed)
    return UpdateParams(
        weight=(rng.standard_normal((f_in, f_out)) * 0.2).astype(np.float32),
        bias=(rng.standard_normal(f_out) * 0.1).astype(np.float32),
    )


def _run_kernel(name, executor, graph, h, aggregator, params):
    """Build a fresh kernel of one variant and run it once."""
    if name == "basic":
        kernel = BasicKernel(task_size=32, executor=executor)
        out, stats = kernel.aggregate(graph, h, aggregator)
    elif name == "compression":
        kernel = CompressedKernel(task_size=32, executor=executor)
        out, stats = kernel.aggregate(graph, h, aggregator)
    elif name == "fusion":
        kernel = FusedKernel(block_size=16, blocks_per_task=2, executor=executor)
        out, _, stats = kernel.run_layer(graph, h, params, aggregator)
    elif name == "combined":
        kernel = CompressedFusedKernel(
            block_size=16, blocks_per_task=2, executor=executor
        )
        out, _, stats = kernel.run_layer(graph, h, params, aggregator)
    else:  # pragma: no cover - defensive
        raise KeyError(name)
    return out, stats, kernel


def _comparable_counters(stats):
    """Every deterministic work counter (wall time is a measurement)."""
    counters = {
        "gathers": stats.gathers,
        "flops": stats.flops,
        "prefetches": stats.prefetches,
        "tasks": stats.tasks,
        "blocks": stats.blocks,
        "decompressed_rows": stats.decompressed_rows,
        "compressed_rows": stats.compressed_rows,
        "peak_buffer_bytes": stats.peak_buffer_bytes,
        "dram_bytes_saved": stats.dram_bytes_saved,
    }
    counters.update(
        {k: v for k, v in stats.extra.items() if k != "wall_time_s"}
    )
    return counters


@pytest.mark.parametrize("aggregator", AGGREGATORS)
@pytest.mark.parametrize("name", ["basic", "compression", "fusion", "combined"])
def test_differential_matrix(name, aggregator):
    """kernel x aggregator x backend x workers: bitwise-equal everywhere."""
    for seed in GRAPH_SEEDS:
        graph = _graph(seed)
        h = _features(graph, seed)
        params = _params(h.shape[1], 12, seed)
        reference = aggregate(graph, h, aggregator)  # dense SpMM oracle
        if name in ("fusion", "combined"):
            reference = params.apply(reference)

        baseline, baseline_stats, _ = _run_kernel(
            name, ChunkExecutor("serial", 1), graph, h, aggregator, params
        )
        np.testing.assert_allclose(baseline, reference, atol=2e-4)

        for backend, workers in BACKEND_CELLS[1:]:
            out, stats, _ = _run_kernel(
                name, ChunkExecutor(backend, workers), graph, h, aggregator, params
            )
            assert np.array_equal(out, baseline), (
                f"{name}/{aggregator}/{backend}x{workers} diverged bitwise"
            )
            # Schedule-invariant totals match the serial execution.
            assert stats.gathers == baseline_stats.gathers
            assert stats.tasks == baseline_stats.tasks
            assert stats.flops == baseline_stats.flops


@pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 4)])
@pytest.mark.parametrize("name", ["basic", "fusion"])
def test_concurrent_backends_are_deterministic(name, backend, workers):
    """Two runs with the same seed: bitwise outputs, identical counters."""
    graph = _graph(5)
    h = _features(graph, 5)
    params = _params(h.shape[1], 10, 5)

    runs = []
    for _ in range(2):
        out, stats, kernel = _run_kernel(
            name, ChunkExecutor(backend, workers), graph, h, "gcn", params
        )
        runs.append((out, stats, kernel.last_report))

    (out_a, stats_a, report_a), (out_b, stats_b, report_b) = runs
    assert np.array_equal(out_a, out_b)
    assert _comparable_counters(stats_a) == _comparable_counters(stats_b)
    # The deterministic dynamic schedule hands out identical chunk lists.
    assert report_a.chunks_per_worker == report_b.chunks_per_worker


def test_training_with_parallel_kernel_matches_serial():
    """A Trainer driving a multi-worker kernel reproduces the serial run."""
    from repro.nn import Adam, Trainer, build_model

    graph = _graph(2)
    h = _features(graph, 2)
    labels = np.random.default_rng(0).integers(0, 4, graph.num_vertices)

    losses = []
    for executor in (ChunkExecutor("serial", 1), ChunkExecutor("thread", 4)):
        model = build_model("gcn", h.shape[1], 16, 4, seed=0)
        trainer = Trainer(
            model,
            Adam(model, lr=0.01),
            aggregation_kernel=BasicKernel(executor=executor),
        )
        history = trainer.fit(graph, h, labels, epochs=3)
        losses.append(history.losses())
    assert losses[0] == losses[1]
