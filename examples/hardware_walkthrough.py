#!/usr/bin/env python
"""Walk through the hardware side of Graphite, mechanism by mechanism.

Four short acts:
1. why hardware prefetchers cannot save the aggregation (stream coverage
   on gather vs sequential traffic),
2. the Figure 10 request schedule, event by event, on the paper's exact
   example configuration,
3. the tracking-table sweep (Figure 16's knee),
4. the end-to-end DMA offload vs the core-executed run.

Run:  python examples/hardware_walkthrough.py
"""

import numpy as np

from repro.dma import DmaOffloadRunner
from repro.dma.timeline import figure10_example
from repro.graphs import load_dataset, synthetic_features
from repro.sim import CoreAggregationSim, StreamPrefetcher
from repro.sim.trace import layout_for, vertex_trace


def act1_prefetcher():
    print("== act 1: hardware prefetchers vs the gather stream ==")
    graph = load_dataset("products", scale=0.1, seed=0)
    layout = layout_for(graph, 32)
    gather, outputs = [], []
    for v in range(graph.num_vertices):
        gather.extend(vertex_trace(graph, layout, v).gather_lines)
        outputs.extend(layout.output_lines(v))
    g = StreamPrefetcher().run_trace(gather)
    s = StreamPrefetcher().run_trace(outputs)
    print(f"gather-phase coverage    : {g.coverage:6.1%}")
    print(f"sequential-write coverage: {s.coverage:6.1%}")
    print("-> streams cover the regular traffic, not the gathers; hence")
    print("   software prefetch (S4.1) and, ultimately, the DMA engine (S5)\n")


def act2_timeline():
    print("== act 2: the Figure 10 request schedule ==")
    timeline, jobs = figure10_example()
    result = timeline.run(jobs)
    for event in result.events[:12]:
        print(f"  t={event.time:5.1f}  {event.kind:<15} {event.tag}")
    print(f"  ... finishes at t={result.finish_time:.1f}; "
          f"table peak {result.max_table_occupancy}/4, "
          f"index buffer peak {result.max_index_buffer_occupancy}/2\n")


def act3_tracking_table():
    print("== act 3: tracking-table sweep (Figure 16) ==")
    graph = load_dataset("wikipedia", scale=0.1, seed=0)
    h = np.zeros((graph.num_vertices, 64), dtype=np.float32)
    times = {}
    for entries in (8, 16, 32, 64):
        runner = DmaOffloadRunner(cache_scale=0.002, tracking_entries=entries)
        _, _, report = runner.run_layer(graph, h)
        times[entries] = report.cycles
    for entries, cycles in times.items():
        print(f"  {entries:>2} entries: {cycles / times[8]:.2f} (norm.)")
    print("-> steep gains to 32 entries, then the DRAM interface limits —")
    print("   the paper's sizing argument (S7.3.3)\n")


def act4_offload():
    print("== act 4: DMA offload vs core execution ==")
    graph = load_dataset("products", scale=0.1, seed=0)
    core = CoreAggregationSim(cache_scale=0.002).run(graph, 64)
    h = np.zeros((graph.num_vertices, 64), dtype=np.float32)
    _, _, dma = DmaOffloadRunner(cache_scale=0.002).run_layer(graph, h)
    print(f"core run : {core.cycles:10.3g} cycles, "
          f"L1 accesses {core.l1_accesses}")
    print(f"DMA run  : {dma.cycles:10.3g} cycles, "
          f"core L1 accesses {dma.core_l1_accesses} "
          f"({1 - dma.core_l1_accesses / core.l1_accesses:.1%} avoided)")


if __name__ == "__main__":
    act1_prefetcher()
    act2_timeline()
    act3_tracking_table()
    act4_offload()
