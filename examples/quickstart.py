#!/usr/bin/env python
"""Quickstart: load a dataset twin, train a GCN, run optimized inference.

Covers the three things a new user does first:
1. build/load a graph and features,
2. train a full-batch GCN (the paper's headline workload — no sampling),
3. run inference through an optimized Graphite kernel and check it
   matches the plain layer bit-for-bit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.graphs import graph_stats, load_dataset, synthetic_features
from repro.kernels import FusedKernel, UpdateParams
from repro.nn import Adam, Trainer, build_model, train_val_split


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A scaled twin of ogbn-products (Table 3 of the paper).
    # ------------------------------------------------------------------
    graph = load_dataset("products", scale=0.25, seed=0)
    print("graph:", graph_stats(graph).as_row())

    num_features, hidden, num_classes = 64, 64, 8
    features = synthetic_features(graph, num_features, seed=0)
    rng = np.random.default_rng(0)
    labels = rng.integers(0, num_classes, graph.num_vertices)

    # ------------------------------------------------------------------
    # 2. Full-batch training: every epoch touches every vertex.
    # ------------------------------------------------------------------
    model = build_model(
        "gcn", num_features, hidden, num_classes, num_layers=2, seed=0
    )
    train_mask, val_mask = train_val_split(graph.num_vertices, 0.6, seed=0)
    trainer = Trainer(model, Adam(model, lr=0.01))
    history = trainer.fit(
        graph, features, labels, epochs=5,
        train_mask=train_mask, val_mask=val_mask,
    )
    print(f"training: loss {history.epochs[0].loss:.3f} -> "
          f"{history.final_loss:.3f} over {len(history.epochs)} epochs")

    # ------------------------------------------------------------------
    # 3. Inference through the fused Graphite kernel (Algorithm 2).
    # ------------------------------------------------------------------
    layer = model.layers[0]
    params = UpdateParams(weight=layer.weight, bias=layer.bias, activation=True)
    reference, _ = layer.forward(graph, features)

    fused = FusedKernel(block_size=32)
    h_out, a, stats = fused.run_layer(
        graph, features, params, aggregator="gcn", keep_aggregation=False
    )
    assert a is None  # inference reuses one block buffer (Figure 5c)
    max_err = float(np.abs(h_out - reference).max())
    print(f"fused kernel: {stats.blocks} blocks, "
          f"{stats.peak_buffer_bytes / 1024:.1f} KiB live buffer "
          f"(vs {graph.num_vertices * num_features * 4 / 1024:.0f} KiB for "
          f"the full aggregation matrix), max error {max_err:.2e}")
    assert max_err < 1e-4
    print("quickstart OK")


if __name__ == "__main__":
    main()
