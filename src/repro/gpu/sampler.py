"""Neighborhood sampling and mini-batching — Eq. 3 / Section 3.

The Figure 2 motivation experiment trains a *sampled* GraphSAGE on a
CPU-GPU platform: the CPU samples each mini-batch's layered K-hop
neighborhood (DGL-style message-flow graphs), the GPU runs the layers.
This module is that CPU-side sampler, built for real: per-layer fanout,
uniform sampling without replacement, frontier deduplication — the
dedup is what makes larger batches proportionally cheaper (shared
neighbors are sampled once), the effect behind Fig. 2's shrinking epoch
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.csr import CSRGraph


@dataclass(frozen=True)
class LayerBlock:
    """One sampled layer: edges from sampled sources to destination set."""

    dst_vertices: np.ndarray  # vertices whose aggregation this layer computes
    src_vertices: np.ndarray  # deduplicated frontier feeding them
    edge_dst: np.ndarray  # per sampled edge
    edge_src: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.edge_dst)


@dataclass(frozen=True)
class MiniBatch:
    """A sampled K-layer mini-batch (outermost layer first)."""

    seed_vertices: np.ndarray
    blocks: Tuple[LayerBlock, ...]

    @property
    def total_sampled_edges(self) -> int:
        return sum(b.num_edges for b in self.blocks)

    @property
    def input_vertices(self) -> np.ndarray:
        """Vertices whose input features must reach the device."""
        return self.blocks[0].src_vertices


def sample_neighbors(
    graph: CSRGraph,
    vertices: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """SAMPLE_k of Eq. 3: up to ``fanout`` neighbors per vertex, uniform
    without replacement (plus the self edge, per N(v) ∪ {v}).

    Returns (edge_dst, edge_src) arrays.
    """
    if fanout <= 0:
        raise ValueError(f"fanout must be positive, got {fanout}")
    dst_parts: List[np.ndarray] = []
    src_parts: List[np.ndarray] = []
    for v in vertices:
        v = int(v)
        row = graph.neighbors(v)
        if len(row) > fanout:
            row = rng.choice(row, size=fanout, replace=False)
        picked = np.append(row, v)  # self edge
        dst_parts.append(np.full(len(picked), v, dtype=np.int64))
        src_parts.append(picked.astype(np.int64))
    if not dst_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(dst_parts), np.concatenate(src_parts)


def sample_blocks(
    graph: CSRGraph,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    rng: np.random.Generator,
) -> MiniBatch:
    """Layered K-hop sampling (DGL-style): innermost layer seeds outward.

    ``fanouts`` is ordered from the input layer to the output layer, the
    DGL convention; sampling proceeds output-to-input, deduplicating each
    frontier before expanding the next layer.
    """
    blocks_reversed: List[LayerBlock] = []
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    for fanout in reversed(list(fanouts)):
        edge_dst, edge_src = sample_neighbors(graph, frontier, fanout, rng)
        src_unique = np.unique(edge_src)
        blocks_reversed.append(
            LayerBlock(
                dst_vertices=frontier,
                src_vertices=src_unique,
                edge_dst=edge_dst,
                edge_src=edge_src,
            )
        )
        frontier = src_unique
    return MiniBatch(
        seed_vertices=np.asarray(seeds, dtype=np.int64),
        blocks=tuple(reversed(blocks_reversed)),
    )


def iterate_minibatches(
    graph: CSRGraph,
    batch_size: int,
    fanouts: Sequence[int],
    seed: Optional[int] = 0,
    shuffle: bool = True,
):
    """Yield sampled mini-batches covering every vertex once per epoch."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rng = np.random.default_rng(seed)
    order = (
        rng.permutation(graph.num_vertices)
        if shuffle
        else np.arange(graph.num_vertices)
    )
    for start in range(0, graph.num_vertices, batch_size):
        seeds = order[start : start + batch_size]
        yield sample_blocks(graph, seeds, fanouts, rng)


@dataclass
class EpochSamplingStats:
    """Aggregate sampling work of one epoch — the Figure 2 inputs."""

    num_batches: int = 0
    sampled_edges: int = 0
    frontier_vertices: int = 0
    input_vertices: int = 0

    @classmethod
    def collect(
        cls,
        graph: CSRGraph,
        batch_size: int,
        fanouts: Sequence[int],
        seed: int = 0,
    ) -> "EpochSamplingStats":
        stats = cls()
        for batch in iterate_minibatches(graph, batch_size, fanouts, seed=seed):
            stats.num_batches += 1
            stats.sampled_edges += batch.total_sampled_edges
            stats.frontier_vertices += sum(len(b.src_vertices) for b in batch.blocks)
            stats.input_vertices += len(batch.input_vertices)
        return stats
