"""Unit tests for the top-down pipeline-slot model (Fig. 3 / Table 4)."""

import pytest

from repro.graphs import load_dataset
from repro.perf import CostModel, characterize


@pytest.fixture(scope="module")
def model():
    return CostModel(load_dataset("products", scale=0.25, seed=0))


class TestBreakdownStructure:
    def test_slots_sum_to_one(self, model):
        report = characterize(model, "distgnn", 100, 128)
        total = (
            report.retiring
            + report.frontend_bound
            + report.core_bound
            + report.memory_bound
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_all_fractions_in_range(self, model):
        for variant in ("distgnn", "mkl", "combined", "c-locality"):
            report = characterize(model, variant, 100, 128)
            for value in (
                report.retiring,
                report.memory_bound,
                report.dram_bandwidth_bound,
                report.dram_latency_bound,
                report.fill_buffer_full,
                report.l2_bound,
                report.l3_bound,
            ):
                assert 0.0 <= value <= 1.0


class TestPaperShape:
    def test_baseline_heavily_memory_bound(self, model):
        """Figure 3: ~10% retiring, >55% memory bound for the baseline."""
        report = characterize(model, "distgnn", 100, 128)
        assert report.retiring < 0.2
        assert report.memory_bound > 0.5

    def test_optimizations_raise_retiring(self, model):
        base = characterize(model, "distgnn", 100, 128)
        combined = characterize(model, "combined", 100, 128)
        locality = characterize(model, "c-locality", 100, 128)
        assert combined.retiring > base.retiring
        assert locality.retiring >= combined.retiring

    def test_optimizations_lower_memory_bound(self, model):
        base = characterize(model, "distgnn", 100, 128)
        locality = characterize(model, "c-locality", 100, 128)
        assert locality.memory_bound < base.memory_bound

    def test_baseline_fill_buffers_pegged(self, model):
        """Section 3: the fill buffers are full ~100% of the time."""
        report = characterize(model, "distgnn", 100, 128)
        assert report.fill_buffer_full == 1.0

    def test_as_row_renders(self, model):
        report = characterize(model, "distgnn", 100, 128)
        assert "distgnn" in report.as_row()
