"""Small-scale smoke runs of every paper-artifact experiment.

Each experiment must run end-to-end and reproduce the qualitative shape
the paper reports.  Full-scale numbers live in ``benchmarks/``.
"""

import pytest

pytestmark = pytest.mark.slow  # heavy sim sweeps; skip via -m "not slow"

from repro.bench.figures import (
    BenchContext,
    fig2_gpu_sampling,
    fig3_topdown,
    fig11_software_speedups,
    fig12_dma_speedups,
    fig13_fusion_breakdown,
    fig14_compression_sweep,
    fig15_locality,
    fig16_tracking_table,
    sec732_memory_system,
    tab3_datasets,
    tab4_characterization,
    tab5_cache_reduction,
)


@pytest.fixture(scope="module")
def ctx():
    return BenchContext(scale=0.25)


class TestMotivation:
    def test_fig2_sampling_dominates(self, ctx):
        exp = fig2_gpu_sampling(ctx)
        shares = {r.label: r.measured for r in exp.rows if "share" in r.label}
        assert all(v > 0.5 for v in shares.values())

    def test_fig2_epoch_time_decreases_with_batch(self, ctx):
        exp = fig2_gpu_sampling(ctx)
        assert exp.shape_holds(
            [
                "batch-4096 epoch time (norm.)",
                "batch-2048 epoch time (norm.)",
                "batch-1024 epoch time (norm.)",
            ]
        )

    def test_fig3_memory_bound_dominates(self, ctx):
        exp = fig3_topdown(ctx)
        values = {r.label: r.measured for r in exp.rows}
        assert values["memory bound"] > values["retiring"]
        assert values["retiring"] < 0.25

    def test_tab3_mean_degrees_in_band(self, ctx):
        exp = tab3_datasets(ctx)
        for row in exp.rows:
            if "mean degree" in row.label and row.ratio is not None:
                assert 0.5 <= row.ratio <= 1.5


class TestSoftwareEvaluation:
    def test_fig11a_ordering(self, ctx):
        exp = fig11_software_speedups(ctx, training=False)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "wikipedia", "papers", "twitter"):
            assert values[f"{name} combined"] > values[f"{name} basic"]
            assert values[f"{name} combined"] > 1.4
            assert values[f"{name} mkl"] < 1.0

    def test_fig11b_locality_wins_training(self, ctx):
        exp = fig11_software_speedups(ctx, training=True)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "wikipedia", "papers", "twitter"):
            assert values[f"{name} c-locality"] >= values[f"{name} combined"] * 0.98
        # products is the biggest locality winner (Fig. 11b).
        gain = {
            name: values[f"{name} c-locality"] / values[f"{name} combined"]
            for name in ("products", "wikipedia", "papers", "twitter")
        }
        assert gain["products"] == max(gain.values())

    def test_fig13_update_share_orders_fusion_benefit(self, ctx):
        exp = fig13_fusion_breakdown(ctx)
        values = {r.label: r.measured for r in exp.rows}
        # wikipedia has the biggest update share -> most fusion headroom.
        assert (
            values["wikipedia basic update share"]
            > values["products basic update share"]
        )
        # Fused inference is never slower than basic.
        for name in ("products", "wikipedia", "papers", "twitter"):
            assert values[f"{name} fused inference (norm.)"] <= 1.0

    def test_fig14_crossover(self, ctx):
        exp = fig14_compression_sweep(ctx, training=False)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "wikipedia", "papers", "twitter"):
            assert values[f"{name} @10%"] < 1.0  # loses at low sparsity
            assert values[f"{name} @90%"] > 1.3  # wins big at high sparsity
            assert exp.shape_holds(
                [f"{name} @{s}%" for s in (10, 30, 50, 70, 90)]
            )

    def test_fig15_products_randomized_equals_combined(self, ctx):
        exp = fig15_locality(ctx)
        values = {r.label: r.measured for r in exp.rows}
        assert values["products combined"] == pytest.approx(1.0, abs=0.1)
        assert values["products locality"] > 1.3
        # Pre-localized graphs beat randomized even without reordering.
        assert values["wikipedia combined"] > 1.02

    def test_tab4_optimizations_raise_retiring(self, ctx):
        exp = tab4_characterization(ctx)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "papers"):
            assert (
                values[f"{name} c-locality retiring"]
                > values[f"{name} distgnn retiring"]
            )
            assert (
                values[f"{name} c-locality memory-bound"]
                < values[f"{name} distgnn memory-bound"]
            )


HW_SCALE = 0.08


class TestHardwareEvaluation:
    def test_fig12_dma_beats_fusion(self):
        exp = fig12_dma_speedups(training=False, scale=HW_SCALE)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "wikipedia"):
            assert values[f"{name} fusion+DMA"] > values[f"{name} fusion"]

    def test_fig12b_locality_stacks_with_dma(self):
        exp = fig12_dma_speedups(training=True, scale=HW_SCALE)
        values = {r.label: r.measured for r in exp.rows}
        assert (
            values["products fusion+DMA+locality"]
            > values["products fusion+locality"]
        )

    def test_fig16_knee_at_32_entries(self):
        exp = fig16_tracking_table(scale=HW_SCALE)
        values = {r.label: r.measured for r in exp.rows}
        assert values["16 entries (norm.)"] < values["8 entries (norm.)"]
        assert values["32 entries (norm.)"] < values["16 entries (norm.)"]
        # Past the knee, returns vanish (Figure 16).
        assert values["64 entries (norm.)"] > values["32 entries (norm.)"] * 0.9

    def test_tab5_agg_only_reductions_over_90pct(self):
        exp = tab5_cache_reduction(scale=HW_SCALE)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "wikipedia"):
            assert values[f"{name} agg-only L1 reduction"] > 0.9
            assert values[f"{name} agg-only L2 reduction"] > 0.9
            # Fused keeps the update's accesses -> much lower reduction.
            assert (
                values[f"{name} fused L1 reduction"]
                < values[f"{name} agg-only L1 reduction"]
            )

    def test_sec732_l2_miss_rate_collapses(self):
        exp = sec732_memory_system(scale=HW_SCALE)
        values = {r.label: r.measured for r in exp.rows}
        for name in ("products", "wikipedia"):
            assert values[f"{name} L2 miss after"] < values[f"{name} L2 miss before"]
