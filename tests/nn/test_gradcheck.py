"""Differential gradient suite: numeric central differences vs analytic.

Two layers of defense for the batched backward engine:

1. **Gradcheck** — every layer configuration (aggregator x activation) x
   every backward execution path (SpMM fallback, loop engine, batched
   engine) is checked against central-difference numeric gradients for
   weights, bias, and inputs to <= 1e-4 relative error.  The whole
   pipeline is dtype-preserving, so the checks run at float64 where
   central differences are actually trustworthy.
2. **Property test** — the batched backward equals the scalar-loop
   ``aggregate_backward_reference`` oracle to 1e-6 on 50 seeded random
   graphs, including the degenerate shapes (isolated vertices,
   self-loops only, empty graph).
"""

import numpy as np
import pytest

from repro.graphs import CSRGraph, synthetic_features, uniform_graph
from repro.kernels import BasicKernel
from repro.kernels.jit import JitKernelCache, KernelSpec
from repro.nn import GNNLayer
from repro.nn.aggregate import aggregate_backward_reference

#: Maximum relative error tolerated between numeric and analytic grads.
GRAD_RTOL = 1e-4

#: Central-difference step — safe at float64 (≈ sqrt(eps) scale).
EPS = 1e-6

AGGREGATORS = ("gcn", "mean")
ACTIVATIONS = (True, False)

#: Backward execution paths: the transpose-SpMM fallback (no kernel),
#: and the chunked loop / batched engines of the basic kernel.
ENGINES = (None, "loop", "batched")


def make_layer(aggregator, activation, in_f=5, out_f=4, seed=0):
    """A float64 layer: weights/bias upcast so gradcheck is meaningful."""
    layer = GNNLayer(
        in_f, out_f, aggregator=aggregator, activation=activation, seed=seed
    )
    layer.weight = layer.weight.astype(np.float64)
    layer.bias = layer.bias.astype(np.float64)
    return layer


def make_kernel(engine):
    return None if engine is None else BasicKernel(engine=engine, task_size=7)


def layer_loss(layer, graph, h, kernel, coef):
    """Scalar probe loss: <h_out, coef> — its grad_out is just ``coef``."""
    h_out, _ = layer.forward(graph, h, training=False, kernel=kernel)
    return float((h_out * coef).sum())


def analytic_grads(layer, graph, h, kernel, coef):
    h_out, cache = layer.forward(graph, h, training=False, kernel=kernel)
    assert h_out.dtype == np.float64, "pipeline must preserve float64"
    return layer.backward(graph, coef, cache, kernel=kernel)


def numeric_grad(param, loss_fn):
    """Central differences over every element of ``param`` (in place)."""
    grad = np.zeros_like(param, dtype=np.float64)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        keep = param[idx]
        param[idx] = keep + EPS
        up = loss_fn()
        param[idx] = keep - EPS
        down = loss_fn()
        param[idx] = keep
        grad[idx] = (up - down) / (2.0 * EPS)
        it.iternext()
    return grad


def assert_close(numeric, analytic, what):
    scale = np.maximum(np.abs(numeric) + np.abs(analytic), 1.0)
    rel = np.abs(numeric - analytic) / scale
    assert rel.max() <= GRAD_RTOL, (
        f"{what}: max relative error {rel.max():.3e} > {GRAD_RTOL:.0e}"
    )


@pytest.fixture(scope="module")
def gradcheck_graph():
    return uniform_graph(14, avg_degree=3.0, seed=5, name="gradcheck")


@pytest.fixture(scope="module")
def gradcheck_features(gradcheck_graph):
    rng = np.random.default_rng(7)
    return rng.standard_normal((gradcheck_graph.num_vertices, 5))


@pytest.mark.parametrize("engine", ENGINES, ids=["oracle", "loop", "batched"])
@pytest.mark.parametrize("activation", ACTIVATIONS, ids=["relu", "linear"])
@pytest.mark.parametrize("aggregator", AGGREGATORS)
class TestGradcheck:
    """Central-difference checks for every layer type x engine."""

    def test_weight_grad(
        self, gradcheck_graph, gradcheck_features, aggregator, activation, engine
    ):
        graph, h = gradcheck_graph, gradcheck_features.copy()
        layer = make_layer(aggregator, activation)
        kernel = make_kernel(engine)
        rng = np.random.default_rng(11)
        coef = rng.standard_normal((graph.num_vertices, layer.out_features))
        grads = analytic_grads(layer, graph, h, kernel, coef)
        numeric = numeric_grad(
            layer.weight, lambda: layer_loss(layer, graph, h, kernel, coef)
        )
        assert_close(numeric, grads.weight, f"weight[{aggregator}/{engine}]")

    def test_bias_grad(
        self, gradcheck_graph, gradcheck_features, aggregator, activation, engine
    ):
        graph, h = gradcheck_graph, gradcheck_features.copy()
        layer = make_layer(aggregator, activation)
        kernel = make_kernel(engine)
        rng = np.random.default_rng(13)
        coef = rng.standard_normal((graph.num_vertices, layer.out_features))
        grads = analytic_grads(layer, graph, h, kernel, coef)
        numeric = numeric_grad(
            layer.bias, lambda: layer_loss(layer, graph, h, kernel, coef)
        )
        assert_close(numeric, grads.bias, f"bias[{aggregator}/{engine}]")

    def test_input_grad(
        self, gradcheck_graph, gradcheck_features, aggregator, activation, engine
    ):
        graph, h = gradcheck_graph, gradcheck_features.copy()
        layer = make_layer(aggregator, activation)
        kernel = make_kernel(engine)
        rng = np.random.default_rng(17)
        coef = rng.standard_normal((graph.num_vertices, layer.out_features))
        grads = analytic_grads(layer, graph, h, kernel, coef)
        numeric = numeric_grad(
            h, lambda: layer_loss(layer, graph, h, kernel, coef)
        )
        assert_close(numeric, grads.h_in, f"h_in[{aggregator}/{engine}]")


class TestGradcheckEngineAgreement:
    """The three backward paths must agree with each other, not just with
    the numeric gradient: same layer, same probe, near-identical grads."""

    @pytest.mark.parametrize("aggregator", AGGREGATORS)
    def test_engines_agree(self, gradcheck_graph, gradcheck_features, aggregator):
        graph, h = gradcheck_graph, gradcheck_features
        rng = np.random.default_rng(3)
        per_engine = []
        for engine in ENGINES:
            layer = make_layer(aggregator, True)
            coef = np.random.default_rng(3).standard_normal(
                (graph.num_vertices, layer.out_features)
            )
            per_engine.append(
                analytic_grads(layer, graph, h, make_kernel(engine), coef)
            )
        base = per_engine[0]
        for other in per_engine[1:]:
            np.testing.assert_allclose(other.weight, base.weight, rtol=1e-10)
            np.testing.assert_allclose(other.bias, base.bias, rtol=1e-10)
            np.testing.assert_allclose(other.h_in, base.h_in, rtol=1e-10)


def random_graph(seed):
    """One of 50 seeded random graphs, degenerate shapes included."""
    if seed == 0:
        return CSRGraph.from_edges(0, [])  # empty graph
    if seed == 1:
        return CSRGraph.from_edges(6, [])  # isolated vertices only
    if seed == 2:
        # Self-loops only.
        return CSRGraph.from_edges(5, [(v, v) for v in range(5)])
    if seed == 3:
        # Mixed: isolated vertices + self-loop + ordinary edges.
        return CSRGraph.from_edges(8, [(0, 1), (2, 2), (5, 0), (5, 1)])
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    avg = float(rng.uniform(0.5, 6.0))
    return uniform_graph(n, avg_degree=min(avg, max(n - 1, 1)), seed=seed)


class TestBatchedBackwardMatchesReference:
    """Property test: batched backward == scalar-loop oracle to 1e-6 on
    50 seeded random graphs (float64 upstream gradient, so the bound is
    about the engine's algebra, not fp32 rounding)."""

    @pytest.mark.parametrize("seed", range(50))
    def test_matches_reference(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(100 + seed)
        grad_a = rng.standard_normal((graph.num_vertices, 3))
        aggregator = ("gcn", "mean", "sum")[seed % 3]
        reference = aggregate_backward_reference(graph, grad_a, aggregator)
        kernel = BasicKernel(engine="batched", task_size=5)
        out, stats = kernel.aggregate_backward(graph, grad_a, aggregator)
        np.testing.assert_allclose(out, reference, atol=1e-6)
        if graph.num_edges or graph.num_vertices:
            assert stats.gathers == graph.num_edges + graph.num_vertices

    @pytest.mark.parametrize("seed", (0, 1, 2, 3, 17, 42))
    def test_loop_engine_matches_reference_too(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(200 + seed)
        grad_a = rng.standard_normal((graph.num_vertices, 4))
        reference = aggregate_backward_reference(graph, grad_a, "gcn")
        kernel = BasicKernel(engine="loop", task_size=5)
        out, _ = kernel.aggregate_backward(graph, grad_a, "gcn")
        np.testing.assert_allclose(out, reference, atol=1e-6)

    def test_jit_closures_match_reference_directly(self):
        """The raw specialized closures (not just the kernel wrapper)."""
        graph = uniform_graph(25, avg_degree=4.0, seed=9)
        rng = np.random.default_rng(9)
        grad_a = rng.standard_normal((graph.num_vertices, 6))
        reference = aggregate_backward_reference(graph, grad_a, "gcn")
        cache = JitKernelCache()
        spec = KernelSpec(6, "gcn")
        batched = cache.specialize_batched_backward(graph, spec)
        loop = cache.specialize_backward(graph, spec)
        verts = np.arange(graph.num_vertices, dtype=np.int64)
        np.testing.assert_allclose(batched(grad_a, verts), reference, atol=1e-6)
        looped = np.stack([loop(grad_a, int(v)) for v in verts])
        np.testing.assert_allclose(looped, reference, atol=1e-6)
