"""Mini-batch (sampled) training — the Section 3 workflow, for real.

The paper's motivation experiment trains a *sampled* GraphSAGE: each
step samples a layered K-hop neighborhood for a seed batch (Eq. 3) and
runs the layers on the induced blocks.  This module executes that
workflow on the value plane so the full-batch/sampled comparison (and
the accuracy caveat the paper cites — "sampling may degrade the network
accuracy") can be reproduced, not just asserted.

Implementation note: a sampled block is a bipartite layer ``src -> dst``;
we compute it by building a small CSR over the sampled edges and running
the mean aggregator with the block's own degrees, matching GraphSAGE's
neighborhood-sample semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpu.sampler import LayerBlock, MiniBatch, iterate_minibatches, sample_blocks
from ..obs import get_tracer
from . import functional as F
from .aggregate import canonical_aggregator
from .model import GNNModel
from .optim import Optimizer


def block_aggregate(
    edge_dst: np.ndarray,
    edge_src: np.ndarray,
    dst_vertices: np.ndarray,
    h_src: np.ndarray,
    src_index: dict,
) -> np.ndarray:
    """Mean-aggregate a sampled block.

    Args:
        edge_dst/edge_src: sampled edges in global vertex ids.
        dst_vertices: the block's destination set (global ids).
        h_src: features of the block's source frontier, ordered like the
            frontier array.
        src_index: global id -> row in ``h_src``.

    Returns:
        (len(dst_vertices), features) mean-aggregated matrix.
    """
    dst_pos = {int(v): i for i, v in enumerate(dst_vertices)}
    out = np.zeros((len(dst_vertices), h_src.shape[1]), dtype=np.float64)
    counts = np.zeros(len(dst_vertices), dtype=np.float64)
    for d, s in zip(edge_dst, edge_src):
        row = dst_pos[int(d)]
        out[row] += h_src[src_index[int(s)]]
        counts[row] += 1.0
    counts = np.maximum(counts, 1.0)
    return (out / counts[:, None]).astype(np.float32)


def full_neighbor_blocks(
    graph: CSRGraph, seeds: np.ndarray, num_layers: int
) -> MiniBatch:
    """Exact (unsampled) K-hop blocks for a seed set — the serving path.

    Like :func:`~repro.gpu.sampler.sample_blocks` but with *every*
    in-neighbor of each frontier vertex (plus the self edge), built
    vectorized from the CSR arrays: no per-vertex Python loop, so a
    serving batch assembles in O(edges touched) numpy work.  Frontiers
    are deduplicated and sorted (``np.unique``), matching the sampler's
    invariants, so downstream ``searchsorted`` row lookups are valid.

    Edge cases the online service hits are first-class here: an empty
    seed set yields empty blocks, repeated seeds deduplicate into one
    destination row, and isolated vertices carry just their self edge.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    blocks_reversed: List[LayerBlock] = []
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    indptr = graph.indptr.astype(np.int64, copy=False)
    indices = graph.indices.astype(np.int64, copy=False)
    for _ in range(num_layers):
        starts = indptr[frontier]
        degs = indptr[frontier + 1] - starts
        total = int(degs.sum())
        if total:
            # Flat gather positions for every (frontier vertex, neighbor)
            # pair: arange over the concatenated rows, rebased per row.
            cum = np.cumsum(degs)
            base = np.repeat(starts - (cum - degs), degs)
            edge_src = indices[np.arange(total, dtype=np.int64) + base]
            edge_dst = np.repeat(frontier, degs)
        else:
            edge_src = np.empty(0, dtype=np.int64)
            edge_dst = np.empty(0, dtype=np.int64)
        edge_dst = np.concatenate([edge_dst, frontier])  # self edges
        edge_src = np.concatenate([edge_src, frontier])
        src_unique = np.unique(edge_src)
        blocks_reversed.append(
            LayerBlock(
                dst_vertices=frontier,
                src_vertices=src_unique,
                edge_dst=edge_dst,
                edge_src=edge_src,
            )
        )
        frontier = src_unique
    return MiniBatch(
        seed_vertices=np.asarray(seeds, dtype=np.int64),
        blocks=tuple(reversed(blocks_reversed)),
    )


def assemble_batch(
    graph: CSRGraph,
    vertices: np.ndarray,
    num_layers: int,
    fanouts: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> MiniBatch:
    """Neighborhood assembly for a query batch: exact or sampled.

    ``fanouts=None`` (the default, and the serving default) builds exact
    full neighborhoods; a fanout list routes through the Eq. 3 sampler
    (one fanout per layer, input-layer first).
    """
    if fanouts is None:
        return full_neighbor_blocks(graph, vertices, num_layers)
    if len(fanouts) != num_layers:
        raise ValueError("need one fanout per layer")
    if rng is None:
        rng = np.random.default_rng(0)
    return sample_blocks(
        graph, np.asarray(vertices, dtype=np.int64), fanouts, rng
    )


def _block_weights(
    d_hat: np.ndarray, block: LayerBlock, aggregator: str, dst_rows: np.ndarray
) -> np.ndarray:
    """Per-edge ψ for one block (self edges ride in the edge arrays).

    * ``gcn`` — global-degree symmetric normalization
      ``1/sqrt(D̂_dst · D̂_src)``; on full neighborhoods this makes the
      block forward *equal* to the full-batch oracle (the self edge's
      ``1/sqrt(D̂_v²)`` collapses to the oracle's ``1/D̂_v`` self factor).
    * ``mean`` — block-local mean over the edges present (GraphSAGE
      neighborhood-sample semantics); on full neighborhoods the count is
      ``D+1 = D̂``, again exactly the oracle.
    """
    if aggregator == "gcn":
        return 1.0 / np.sqrt(d_hat[block.edge_dst] * d_hat[block.edge_src])
    if aggregator == "mean":
        counts = np.bincount(dst_rows, minlength=len(block.dst_vertices))
        return 1.0 / np.maximum(counts, 1)[dst_rows].astype(np.float64)
    raise ValueError(
        f"block forward supports 'gcn' and 'mean' aggregation, got {aggregator!r}"
    )


def _block_aggregate_vectorized(
    block: LayerBlock, h_src: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """ψ-weighted segment-sum of a block, no Python loop.

    Edges are stably sorted by destination row, then one
    ``np.add.reduceat`` per block reduces each destination's gathered,
    scaled neighbor rows.  Destinations with no edges (impossible when
    self edges are present, but kept safe) stay zero.
    """
    out = np.zeros((len(block.dst_vertices), h_src.shape[1]), dtype=np.float64)
    if block.num_edges:
        dst_rows = np.searchsorted(block.dst_vertices, block.edge_dst)
        src_rows = np.searchsorted(block.src_vertices, block.edge_src)
        order = np.argsort(dst_rows, kind="stable")
        sorted_dst = dst_rows[order]
        contrib = h_src[src_rows[order]].astype(np.float64)
        contrib *= weights[order][:, None]
        seg_starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_dst)) + 1]
        )
        out[sorted_dst[seg_starts]] = np.add.reduceat(contrib, seg_starts, axis=0)
    return out.astype(np.float32)


@dataclass
class BlockForwardResult:
    """Inference output of one assembled batch.

    Rows align with ``query_vertices`` (the deduplicated, sorted seed
    set); callers with repeated/unsorted queries map back with
    ``np.searchsorted(query_vertices, requested)``.
    """

    query_vertices: np.ndarray
    logits: np.ndarray  # (len(query_vertices), num_classes)
    embeddings: np.ndarray  # input representation of the final layer


def block_forward(
    graph: CSRGraph,
    model: GNNModel,
    batch: MiniBatch,
    features: np.ndarray,
) -> BlockForwardResult:
    """Vectorized inference forward over assembled blocks — serving's
    hot path.

    Computes only the rows the query needs (frontier-restricted), with
    no dropout and no caches.  Each layer runs under a ``kernel.serve.
    block`` span so a traced request shows its compute the same way a
    traced epoch does.  On :func:`full_neighbor_blocks` output this
    matches ``model.predict`` row-for-row (up to fp32 reduction-order
    noise) for both supported aggregators.
    """
    if len(batch.blocks) != model.num_layers:
        raise ValueError(
            f"batch has {len(batch.blocks)} blocks for a "
            f"{model.num_layers}-layer model"
        )
    tracer = get_tracer()
    # One global-degree pass serves every gcn layer in the batch.
    d_hat = graph.degrees().astype(np.float64) + 1.0
    h = features[batch.blocks[0].src_vertices].astype(np.float32, copy=False)
    query = batch.blocks[-1].dst_vertices
    embeddings = h
    for idx, (layer, block) in enumerate(zip(model.layers, batch.blocks)):
        if idx == model.num_layers - 1:
            # The final layer's input, restricted to the query rows, is
            # the served "embedding" representation.
            rows = np.searchsorted(block.src_vertices, query)
            embeddings = h[rows]
        with tracer.span(
            "kernel.serve.block",
            index=idx,
            aggregator=layer.aggregator,
        ) as span:
            aggregator = canonical_aggregator(layer.aggregator)
            dst_rows = (
                np.searchsorted(block.dst_vertices, block.edge_dst)
                if block.num_edges
                else np.empty(0, dtype=np.int64)
            )
            weights = _block_weights(d_hat, block, aggregator, dst_rows)
            a = _block_aggregate_vectorized(block, h, weights)
            pre = a @ layer.weight + layer.bias
            h = (F.relu(pre) if layer.activation else pre).astype(np.float32)
            span.add_counters(
                {
                    "edges": float(block.num_edges),
                    "dst_vertices": float(len(block.dst_vertices)),
                    "src_vertices": float(len(block.src_vertices)),
                    "gathers": float(block.num_edges),
                }
            )
    return BlockForwardResult(
        query_vertices=query, logits=h, embeddings=embeddings
    )


@dataclass
class MiniBatchStep:
    """Record of one sampled training step."""

    batch_size: int
    sampled_edges: int
    loss: float


class MiniBatchTrainer:
    """Sampled GraphSAGE-style training over layered mini-batches.

    Weights are shared with a :class:`repro.nn.model.GNNModel`; only the
    aggregation is replaced by the sampled-block version, so the same
    parameters can be evaluated full-batch afterwards.
    """

    def __init__(self, model: GNNModel, optimizer: Optimizer) -> None:
        for layer in model.layers:
            if layer.aggregator != "mean":
                raise ValueError(
                    "sampled training reproduces GraphSAGE; build the model "
                    "with aggregator 'mean' (model_type='sage')"
                )
        self.model = model
        self.optimizer = optimizer
        self.steps: List[MiniBatchStep] = []

    # ------------------------------------------------------------------
    def forward_batch(self, batch: MiniBatch, features: np.ndarray):
        """Forward through the sampled blocks; returns seed logits and
        the per-layer caches needed for the (dense-block) backward."""
        frontier = batch.blocks[0].src_vertices
        h = features[frontier]
        src_ids = frontier
        caches = []
        for layer, block in zip(self.model.layers, batch.blocks):
            src_index = {int(v): i for i, v in enumerate(src_ids)}
            a = block_aggregate(
                block.edge_dst, block.edge_src, block.dst_vertices, h, src_index
            )
            pre = a @ layer.weight + layer.bias
            out = F.relu(pre) if layer.activation else pre
            caches.append((a, pre, src_ids, block))
            h = out.astype(np.float32)
            src_ids = block.dst_vertices
        return h, caches

    def train_step(
        self,
        batch: MiniBatch,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> MiniBatchStep:
        """One sampled step: forward, loss on seeds, parameter update.

        Backward propagates through the update weights only (first-order
        sampled-gradient approximation); aggregations are linear in the
        parameters below them, and this keeps the step cost proportional
        to the sampled blocks, the property mini-batching exists for.
        """
        logits, caches = self.forward_batch(batch, features)
        seed_labels = labels[batch.blocks[-1].dst_vertices]
        loss, grad = F.cross_entropy(logits, seed_labels)
        grads = []
        for (a, pre, _, _), layer in zip(reversed(caches), reversed(self.model.layers)):
            grad_pre = F.relu_grad(pre, grad) if layer.activation else grad
            grad_w = a.T @ grad_pre
            grad_b = grad_pre.sum(axis=0)
            from .layers import LayerGrads

            grads.append(
                LayerGrads(
                    weight=grad_w.astype(np.float32),
                    bias=grad_b.astype(np.float32),
                    h_in=np.zeros((1, layer.in_features), dtype=np.float32),
                )
            )
            # Propagate to the layer below through the update weights and
            # the block aggregation (mean over sampled neighbors).
            if layer is not self.model.layers[0]:
                grad_a = grad_pre @ layer.weight.T
                # Scatter grad_a back to the previous layer's outputs via
                # the block's mean edges.
                block = caches[self.model.layers.index(layer)][3]
                src_ids = caches[self.model.layers.index(layer)][2]
                src_index = {int(v): i for i, v in enumerate(src_ids)}
                dst_pos = {int(v): i for i, v in enumerate(block.dst_vertices)}
                counts = np.zeros(len(block.dst_vertices))
                for d in block.edge_dst:
                    counts[dst_pos[int(d)]] += 1
                counts = np.maximum(counts, 1.0)
                scattered = np.zeros((len(src_ids), layer.in_features), dtype=np.float64)
                for d, s in zip(block.edge_dst, block.edge_src):
                    scattered[src_index[int(s)]] += (
                        grad_a[dst_pos[int(d)]] / counts[dst_pos[int(d)]]
                    )
                grad = scattered.astype(np.float32)
        self.optimizer.step(list(reversed(grads)))
        step = MiniBatchStep(
            batch_size=len(batch.seed_vertices),
            sampled_edges=batch.total_sampled_edges,
            loss=loss,
        )
        self.steps.append(step)
        return step

    def fit_epoch(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        fanouts: Sequence[int],
        seed: int = 0,
    ) -> float:
        """One epoch of sampled training; returns the mean step loss."""
        if len(fanouts) != self.model.num_layers:
            raise ValueError("need one fanout per layer")
        losses = []
        for batch in iterate_minibatches(graph, batch_size, fanouts, seed=seed):
            step = self.train_step(batch, features, labels)
            losses.append(step.loss)
        return float(np.mean(losses))
