"""Multi-worker chunk execution — Section 4.1's parallel loop, for real.

The chunk plan decides *what* runs where; this module actually runs it.
Three backends share one contract:

* ``serial`` — one worker, in-process; the reference execution.
* ``thread`` — one Python thread per worker.  Workers write their chunk
  rows directly into the shared output arrays; because every chunk owns
  a disjoint row slice (output parallelism), no locking is needed.
* ``process`` — a process pool.  The workload is pickled once per
  worker (runtime closures are rebuilt there); chunk rows travel back
  to the parent, which performs the same disjoint writes.

All three produce bitwise-identical outputs: each vertex's row is
computed by the same specialized closure regardless of which worker runs
it, and the deterministic chunk assignment makes the per-worker stats
(including per-worker chunk counts) identical run-to-run.  Merging
happens in worker-id order so the accumulated floating-point counters
are reproducible too.  Wall-clock time is recorded in
``KernelStats.extra["wall_time_s"]`` — it is a measurement, not a work
counter, and is the one entry that legitimately varies between runs.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.base import KernelStats
from ..obs import get_metrics, get_profiler, get_tracer
from .plan import Chunk, ChunkPlan, assign_chunks
from .workload import ChunkWorkload

logger = logging.getLogger(__name__)

#: Execution backends, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


@dataclass
class WorkerReport:
    """What one worker did: its chunks, vertices, counters, and time.

    ``telemetry`` carries a process-backend worker's shipped payload
    (its real span records, metrics registry, folded profile stacks and
    clock epoch) — ``None`` for in-process workers, whose telemetry
    lands in the shared tracer/registry directly.
    """

    worker_id: int
    num_chunks: int
    num_vertices: int
    elapsed_s: float
    stats: KernelStats = field(default_factory=KernelStats)
    telemetry: Optional[Dict[str, Any]] = None


@dataclass
class ExecutionReport:
    """One executor invocation: per-worker reports plus wall time."""

    backend: str
    workers: int
    wall_time_s: float
    worker_reports: List[WorkerReport] = field(default_factory=list)

    @property
    def chunks_per_worker(self) -> List[int]:
        return [report.num_chunks for report in self.worker_reports]

    @property
    def imbalance(self) -> float:
        """max / mean executed gather work — 1.0 is perfect balance."""
        work = np.array(
            [report.stats.gathers for report in self.worker_reports], dtype=np.float64
        )
        if len(work) == 0 or work.mean() == 0:
            return 1.0
        return float(work.max() / work.mean())


# ----------------------------------------------------------------------
# Process-backend worker entry points (module level: must be picklable).
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}


@dataclass(frozen=True)
class WorkerTelemetryPlan:
    """Picklable instructions for a worker process's own telemetry.

    Shipped through the pool initializer: when the parent's tracer or
    registry is live, each worker batch runs under a *fresh* tracer +
    registry of its own (never the fork-inherited parent singletons —
    writing there would be lost and double-counted), and optionally a
    sampling profiler at the parent's rate.  The collected records ride
    back with the chunk results.
    """

    telemetry: bool = False
    sampling_hz: Optional[float] = None


def _process_init(
    workload: ChunkWorkload, plan: Optional[WorkerTelemetryPlan] = None
) -> None:
    workload.prepare()
    _WORKER_STATE["workload"] = workload
    _WORKER_STATE["plan"] = plan or WorkerTelemetryPlan()


def _process_run(worker_id: int, chunks: List[Chunk]):
    workload = _WORKER_STATE["workload"]
    plan: WorkerTelemetryPlan = _WORKER_STATE.get("plan") or WorkerTelemetryPlan()
    if not plan.telemetry:
        start = time.perf_counter()
        stats = KernelStats()
        writes = []
        for chunk in chunks:
            chunk_writes, chunk_stats = workload.run_chunk(chunk)
            writes.append(chunk_writes)
            stats.merge(chunk_stats)
        return worker_id, writes, stats, time.perf_counter() - start, None

    # Telemetry path: fresh per-batch obs objects (one OS process can
    # serve several batches; each batch ships an independent capture).
    from .. import obs

    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    obs.set_tracer(tracer)
    obs.set_metrics(registry)
    profiler = (
        obs.SamplingProfiler(tracer=tracer, hz=plan.sampling_hz, registry=registry)
        if plan.sampling_hz
        else None
    )
    try:
        if profiler is not None:
            profiler.start()
        start = time.perf_counter()
        stats = KernelStats()
        writes = []
        vertices = 0
        with tracer.span(
            "worker",
            worker_id=worker_id,
            backend="process",
            pid=os.getpid(),
            chunks=len(chunks),
            **workload.describe(),
        ) as span:
            for chunk in chunks:
                chunk_writes, chunk_stats = workload.run_chunk(chunk)
                writes.append(chunk_writes)
                stats.merge(chunk_stats)
                vertices += chunk.num_vertices
            span.set_attr("vertices", vertices)
            span.add_counters(stats.as_dict())
        elapsed = time.perf_counter() - start
        if profiler is not None:
            profiler.stop()
        obs.publish_counters(registry, "work", stats.as_dict(include_extra=False))
        payload = {
            "spans": [s.to_record() for s in tracer.spans()],
            "metrics": registry,
            "profile": profiler.data if profiler is not None else None,
            "epoch_unix": tracer.epoch_unix,
        }
        return worker_id, writes, stats, elapsed, payload
    finally:
        if profiler is not None:
            profiler.stop()
        obs.disable()


class ChunkExecutor:
    """Runs a chunk plan on one of the three backends.

    Args:
        backend: ``serial``, ``thread``, or ``process``.
        workers: number of workers; must be 1 for ``serial``.
    """

    def __init__(self, backend: str = "serial", workers: int = 1) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if backend == "serial" and workers != 1:
            raise ValueError("serial backend runs exactly one worker")
        self.backend = backend
        self.workers = workers
        self.last_report: Optional[ExecutionReport] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChunkExecutor(backend={self.backend!r}, workers={self.workers})"

    # ------------------------------------------------------------------
    def run(
        self, workload: ChunkWorkload, plan: ChunkPlan
    ) -> Tuple[Dict[str, np.ndarray], KernelStats, ExecutionReport]:
        """Execute every chunk; return (outputs, merged stats, report)."""
        outputs = {
            name: np.empty(shape, dtype=dtype)
            for name, (shape, dtype) in workload.output_specs().items()
        }
        assignment = assign_chunks(plan, self.workers)
        # Live-plane gauges: a scrape mid-run sees how much of the plan
        # is still queued and how many workers are busy.  Zero-cost when
        # the registry is the null singleton (queue_gauge stays None and
        # workers never touch it).
        metrics = get_metrics()
        queue_gauge = None
        if metrics.enabled:
            queue_gauge = metrics.gauge("executor.queue_depth")
            queue_gauge.set(float(plan.num_chunks))
            metrics.set_gauge(
                "executor.inflight",
                float(sum(1 for chunks in assignment if chunks)),
            )
        wall_start = time.perf_counter()
        try:
            if self.backend == "process":
                # _run_process short-circuits an all-empty assignment to
                # idle reports, so no special empty-plan routing needed.
                reports = self._run_process(workload, assignment, outputs)
            elif self.backend == "thread" and self.workers > 1:
                reports = self._run_threads(workload, assignment, outputs, queue_gauge)
            else:
                reports = self._run_serial(workload, assignment, outputs, queue_gauge)
        finally:
            if metrics.enabled:
                metrics.set_gauge("executor.queue_depth", 0.0)
                metrics.set_gauge("executor.inflight", 0.0)
        wall_time = time.perf_counter() - wall_start

        reports.sort(key=lambda report: report.worker_id)
        merged = KernelStats()
        for report in reports:
            merged.merge(report.stats)
        merged.extra["workers"] = float(self.workers)
        merged.extra["wall_time_s"] = wall_time
        for report in reports:
            merged.extra[f"worker{report.worker_id}_chunks"] = float(report.num_chunks)
        execution = ExecutionReport(
            backend=self.backend,
            workers=self.workers,
            wall_time_s=wall_time,
            worker_reports=reports,
        )
        self.last_report = execution
        self._emit_telemetry(plan, execution)
        return outputs, merged, execution

    def _emit_telemetry(self, plan: ChunkPlan, execution: ExecutionReport) -> None:
        """Worker spans plus registry counters, real or synthesized.

        Process-backend workers that shipped a telemetry payload get the
        *real* treatment: their span records (measured in the worker, on
        the worker's clock) are adopted under the caller's open span with
        the clock offset corrected, their registries merge into the
        parent under a ``worker<id>.`` prefix, and their folded profile
        stacks are absorbed into the active profiler under a
        ``worker-<id>`` root frame.  Workers without a payload (thread /
        serial backends, whose telemetry already landed in the shared
        tracer and registry, or idle process workers) keep the old
        synthesized span, now marked ``synthesized: True``.
        """
        tracer = get_tracer()
        if tracer.enabled:
            for report in execution.worker_reports:
                payload = report.telemetry
                if payload and payload.get("spans"):
                    offset = float(payload["epoch_unix"]) - tracer.epoch_unix
                    tracer.adopt(payload["spans"], offset_s=offset)
                else:
                    tracer.record(
                        "worker",
                        duration_s=report.elapsed_s,
                        attrs={
                            "worker_id": report.worker_id,
                            "backend": self.backend,
                            "chunks": report.num_chunks,
                            "vertices": report.num_vertices,
                            "synthesized": True,
                        },
                        counters=report.stats.as_dict(),
                    )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("executor.runs")
            metrics.inc("executor.chunks", plan.num_chunks)
            metrics.observe("executor.wall_time_s", execution.wall_time_s)
            metrics.observe("executor.imbalance", execution.imbalance)
            for report in execution.worker_reports:
                prefix = f"executor.worker{report.worker_id}"
                metrics.inc(f"{prefix}.chunks", report.num_chunks)
                metrics.inc(f"{prefix}.vertices", report.num_vertices)
                metrics.observe(f"{prefix}.elapsed_s", report.elapsed_s)
                payload = report.telemetry
                if payload and payload.get("metrics") is not None:
                    metrics.merge(
                        payload["metrics"], prefix=f"worker{report.worker_id}."
                    )
        profiler = get_profiler()
        if profiler.enabled:
            for report in execution.worker_reports:
                payload = report.telemetry
                if payload and payload.get("profile") is not None:
                    profiler.absorb(
                        payload["profile"], source=f"worker-{report.worker_id}"
                    )
        # imbalance is O(workers) numpy work — don't compute it eagerly
        # just to discard it when DEBUG is off (this runs per kernel call).
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s x%d ran %d chunks in %.4fs (imbalance %.2f)",
                self.backend,
                self.workers,
                plan.num_chunks,
                execution.wall_time_s,
                execution.imbalance,
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _consume(
        workload: ChunkWorkload,
        worker_id: int,
        chunks: List[Chunk],
        outputs: Dict[str, np.ndarray],
        queue_gauge=None,
    ) -> WorkerReport:
        """Run one worker's chunk list in-process, writing disjoint rows."""
        start = time.perf_counter()
        stats = KernelStats()
        vertices = 0
        for chunk in chunks:
            writes, chunk_stats = workload.run_chunk(chunk)
            if queue_gauge is not None:
                queue_gauge.add(-1.0)
            for name, (idx, rows) in writes.items():
                count = len(idx)
                if count > 1 and int(idx[-1]) - int(idx[0]) == count - 1 and bool(
                    (np.diff(idx) == 1).all()
                ):
                    # Ascending contiguous ids (every natural-order chunk):
                    # a slice write is a straight memcpy, vs the per-row
                    # indirection of a fancy-index scatter.
                    outputs[name][int(idx[0]) : int(idx[0]) + count] = rows
                else:
                    outputs[name][idx] = rows
            stats.merge(chunk_stats)
            vertices += chunk.num_vertices
        return WorkerReport(
            worker_id=worker_id,
            num_chunks=len(chunks),
            num_vertices=vertices,
            elapsed_s=time.perf_counter() - start,
            stats=stats,
        )

    def _run_serial(
        self, workload, assignment, outputs, queue_gauge=None
    ) -> List[WorkerReport]:
        workload.prepare()
        return [
            self._consume(workload, worker_id, chunks, outputs, queue_gauge)
            for worker_id, chunks in enumerate(assignment)
        ]

    def _run_threads(
        self, workload, assignment, outputs, queue_gauge=None
    ) -> List[WorkerReport]:
        workload.prepare()  # workers share the read-only runtime state
        reports: List[Optional[WorkerReport]] = [None] * self.workers
        errors: List[BaseException] = []

        def body(worker_id: int, chunks: List[Chunk]) -> None:
            try:
                reports[worker_id] = self._consume(
                    workload, worker_id, chunks, outputs, queue_gauge
                )
            except BaseException as exc:  # surface worker failures
                errors.append(exc)

        threads = [
            threading.Thread(target=body, args=(worker_id, chunks), daemon=True)
            for worker_id, chunks in enumerate(assignment)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [report for report in reports if report is not None]

    def _run_process(self, workload, assignment, outputs) -> List[WorkerReport]:
        reports: List[WorkerReport] = []
        busy = [
            (worker_id, chunks)
            for worker_id, chunks in enumerate(assignment)
            if chunks
        ]
        idle = [worker_id for worker_id, chunks in enumerate(assignment) if not chunks]
        if not busy:
            # All-empty assignment: nothing to compute, so skip the pool
            # entirely — a ProcessPoolExecutor would still fork workers
            # and pickle the whole workload through the initializer.
            return [
                WorkerReport(
                    worker_id=worker_id,
                    num_chunks=0,
                    num_vertices=0,
                    elapsed_s=0.0,
                    stats=KernelStats(),
                )
                for worker_id in idle
            ]
        profiler = get_profiler()
        plan = WorkerTelemetryPlan(
            telemetry=get_tracer().enabled or get_metrics().enabled,
            sampling_hz=profiler.hz if profiler.enabled else None,
        )
        with ProcessPoolExecutor(
            max_workers=max(1, len(busy)),
            initializer=_process_init,
            initargs=(workload, plan),
        ) as pool:
            futures = [
                pool.submit(_process_run, worker_id, chunks)
                for worker_id, chunks in busy
            ]
            for future in futures:
                worker_id, writes, stats, elapsed, telemetry = future.result()
                for chunk_writes in writes:
                    for name, (idx, rows) in chunk_writes.items():
                        outputs[name][idx] = rows
                chunks = assignment[worker_id]
                reports.append(
                    WorkerReport(
                        worker_id=worker_id,
                        num_chunks=len(chunks),
                        num_vertices=sum(chunk.num_vertices for chunk in chunks),
                        elapsed_s=elapsed,
                        stats=stats,
                        telemetry=telemetry,
                    )
                )
        for worker_id in idle:
            reports.append(
                WorkerReport(
                    worker_id=worker_id,
                    num_chunks=0,
                    num_vertices=0,
                    elapsed_s=0.0,
                    stats=KernelStats(),
                )
            )
        return reports
