"""Set-associative LRU cache model.

Used by the trace-driven hardware evaluation (Section 7.3): per-core L1D
and L2, plus the shared L3.  Accesses are at cache-line granularity; the
model tracks hits, misses, evictions, and supports explicit installs
(the DMA engine writes aggregation results straight into L2 —
Section 5.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    installs: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Args:
        size_bytes: total capacity.
        ways: associativity.
        line_bytes: cache line size (64 in the modeled machine).
        name: label for reports.
    """

    def __init__(
        self, size_bytes: int, ways: int, line_bytes: int = 64, name: str = "cache"
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines < ways:
            raise ValueError(
                f"{name}: capacity {size_bytes}B holds fewer lines than "
                f"{ways} ways"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = max(1, num_lines // ways)
        self.name = name
        self.stats = CacheStats()
        # set index -> OrderedDict of line tags (LRU order: oldest first).
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    # ------------------------------------------------------------------
    def _locate(self, addr: int) -> "tuple[int, int]":
        line = addr // self.line_bytes
        return line % self.num_sets, line

    def access(self, addr: int, write: bool = False) -> bool:
        """Reference a line; returns True on hit.

        Misses allocate the line (write-allocate) and may evict LRU.
        """
        set_idx, tag = self._locate(addr)
        ways = self._sets.setdefault(set_idx, OrderedDict())
        self.stats.accesses += 1
        if tag in ways:
            ways.move_to_end(tag)
            if write:
                ways[tag] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._install(set_idx, tag, dirty=write)
        return False

    def contains(self, addr: int) -> bool:
        """Peek without touching LRU state or counters."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets.get(set_idx, ())

    def install(self, addr: int, dirty: bool = False) -> None:
        """Place a line without counting it as a demand access.

        The DMA engine uses this to push aggregation results into L2
        (Section 5.2: "we opt to write the results of the aggregation to
        L2").
        """
        set_idx, tag = self._locate(addr)
        self.stats.installs += 1
        ways = self._sets.setdefault(set_idx, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = ways[tag] or dirty
            return
        self._install(set_idx, tag, dirty)

    def invalidate(self, addr: int) -> None:
        set_idx, tag = self._locate(addr)
        ways = self._sets.get(set_idx)
        if ways is not None:
            ways.pop(tag, None)

    def _install(self, set_idx: int, tag: int, dirty: bool) -> None:
        ways = self._sets.setdefault(set_idx, OrderedDict())
        if len(ways) >= self.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[tag] = dirty

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.name}, {self.size_bytes}B, "
            f"{self.ways}-way, {self.num_sets} sets)"
        )
