"""Feature-sparsity measurement and injection — Section 2.2 of the paper.

Hidden-layer features pick up zeros from two sources: ReLU (40-90%
sparsity) and dropout (a further 50% by default).  The paper profiles a
three-layer GraphSAGE on ogbn-products and finds layer-2 inputs over 60%
sparse after ReLU, over 80% after dropout, and layer-3 inputs over 90%.

These helpers quantify sparsity, inject it for controlled experiments
(Section 6: "we randomly set the features to zeros with predefined
rates"), and track how sparsity evolves through a training run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


def sparsity(matrix: np.ndarray) -> float:
    """Fraction of exactly-zero elements."""
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix == 0) / matrix.size)


def inject_sparsity(
    matrix: np.ndarray, target: float, seed: Optional[int] = 0
) -> np.ndarray:
    """Zero a random ``target`` fraction of elements (returns a copy)."""
    if not 0.0 <= target <= 1.0:
        raise ValueError(f"target sparsity must be in [0, 1], got {target}")
    rng = np.random.default_rng(seed)
    out = np.array(matrix, dtype=np.float32, copy=True)
    mask = rng.random(out.shape) < target
    out[mask] = 0.0
    return out


@dataclass
class SparsityProfile:
    """Per-layer sparsity observations across a training run.

    Reproduces the Section 2.2 profiling experiment: record the sparsity of
    each hidden layer's *input* features every epoch.
    """

    per_layer: Dict[int, List[float]] = field(default_factory=dict)

    def record(self, layer: int, matrix: np.ndarray) -> None:
        self.add(layer, sparsity(matrix))

    def add(self, layer: int, value: float) -> None:
        """Append one already-computed sparsity observation."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"sparsity must be in [0, 1], got {value}")
        self.per_layer.setdefault(layer, []).append(value)

    def mean(self, layer: int) -> float:
        values = self.per_layer.get(layer, [])
        return float(np.mean(values)) if values else 0.0

    def last(self, layer: int) -> float:
        values = self.per_layer.get(layer, [])
        return values[-1] if values else 0.0

    def layers(self) -> List[int]:
        return sorted(self.per_layer)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable export (run reports, dashboards).

        Layer keys become strings (JSON object keys); the full per-epoch
        trajectory is kept alongside the mean/last summaries.
        """
        return {
            "per_layer": {
                str(layer): [float(v) for v in values]
                for layer, values in sorted(self.per_layer.items())
            },
            "mean": {str(layer): self.mean(layer) for layer in self.layers()},
            "last": {str(layer): self.last(layer) for layer in self.layers()},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SparsityProfile":
        """Inverse of :meth:`to_dict` (summaries are recomputed)."""
        per_layer = {
            int(layer): [float(v) for v in values]
            for layer, values in (doc.get("per_layer") or {}).items()
        }
        return cls(per_layer=per_layer)

    def summary(self) -> str:
        lines = ["layer  mean-sparsity  last-epoch"]
        for layer in self.layers():
            lines.append(
                f"{layer:>5}  {self.mean(layer):>12.1%}  {self.last(layer):>9.1%}"
            )
        return "\n".join(lines)


def relu_sparsity_estimate(matrix: np.ndarray) -> float:
    """Sparsity a ReLU would induce on this pre-activation matrix."""
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix <= 0) / matrix.size)


def combined_sparsity(relu_rate: float, dropout_rate: float) -> float:
    """Expected sparsity after ReLU then dropout.

    Dropout zeros a fraction ``p`` of elements uniformly, independent of
    whether ReLU already zeroed them: survivors are ``(1-s)(1-p)``.
    """
    for name, value in (("relu_rate", relu_rate), ("dropout_rate", dropout_rate)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    return 1.0 - (1.0 - relu_rate) * (1.0 - dropout_rate)
