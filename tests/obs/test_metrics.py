"""Unit tests for the metrics registry."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    publish_counters,
)


class TestMetricTypes:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_summary(self):
        h = Histogram()
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_dict_is_finite(self):
        d = Histogram().to_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0 and d["mean"] == 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_convenience_oneshots(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7)
        reg.observe("h", 1.5)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 2.0
        assert snap["g"]["value"] == 7.0
        assert snap["h"]["count"] == 1

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.snapshot()) == ["a", "z"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert len(reg) == 0


class TestNullRegistry:
    def test_disabled(self):
        assert NullRegistry.enabled is False
        assert MetricsRegistry.enabled is True

    def test_operations_noop(self):
        NULL_REGISTRY.inc("x", 5)
        NULL_REGISTRY.set_gauge("y", 1)
        NULL_REGISTRY.observe("z", 2)
        assert NULL_REGISTRY.snapshot() == {}

    def test_accessors_return_shared_nulls(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")


class TestPublishCounters:
    def test_prefixing(self):
        reg = MetricsRegistry()
        publish_counters(reg, "kernel.basic", {"gathers": 3, "flops": 6.0})
        snap = reg.snapshot()
        assert snap["kernel.basic.gathers"]["value"] == 3.0
        assert snap["kernel.basic.flops"]["value"] == 6.0

    def test_disabled_registry_skipped(self):
        publish_counters(NULL_REGISTRY, "kernel", {"gathers": 3})
        assert NULL_REGISTRY.snapshot() == {}
