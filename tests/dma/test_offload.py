"""Unit + integration tests for the Algorithm-5 DMA offload runner."""

import numpy as np
import pytest

from repro.dma import DmaOffloadRunner, GatherList
from repro.graphs import load_dataset, synthetic_features
from repro.kernels import UpdateParams
from repro.nn import aggregate, normalization_factors


@pytest.fixture(scope="module")
def graph():
    return load_dataset("products", scale=0.04, seed=1)


@pytest.fixture(scope="module")
def features(graph):
    return synthetic_features(graph, 40, seed=2)


class TestGatherList:
    def test_row_lengths_include_self(self, graph):
        gather = GatherList.build(graph, "gcn")
        degs = graph.degrees()
        rows = np.diff(gather.indptr)
        np.testing.assert_array_equal(rows, degs + 1)

    def test_self_entry_is_last_with_self_factor(self, graph):
        gather = GatherList.build(graph, "mean")
        _, self_f = normalization_factors(graph, "mean")
        for v in (0, 3, graph.num_vertices - 1):
            end = gather.indptr[v + 1]
            assert gather.indices[end - 1] == v
            assert gather.factors[end - 1] == pytest.approx(self_f[v])


class TestValuePlane:
    @pytest.mark.parametrize("aggregator", ["gcn", "mean"])
    def test_matches_reference(self, graph, features, aggregator):
        runner = DmaOffloadRunner(cache_scale=0.02)
        a, none_, report = runner.run_layer(graph, features, aggregator=aggregator)
        reference = aggregate(graph, features, aggregator)
        np.testing.assert_allclose(a, reference, atol=2e-4)
        assert none_ is None
        assert report.descriptors_issued == graph.num_vertices

    def test_fused_update_matches(self, graph, features):
        rng = np.random.default_rng(3)
        params = UpdateParams(
            weight=(rng.standard_normal((40, 16)) * 0.2).astype(np.float32),
            bias=rng.standard_normal(16).astype(np.float32) * 0.1,
        )
        runner = DmaOffloadRunner(cache_scale=0.02)
        h_out, a, report = runner.run_layer(graph, features, params=params)
        reference_a = aggregate(graph, features, "gcn")
        np.testing.assert_allclose(a, reference_a, atol=2e-4)
        np.testing.assert_allclose(h_out, params.apply(reference_a), atol=2e-4)

    def test_custom_order_same_result(self, graph, features):
        rng = np.random.default_rng(5)
        order = rng.permutation(graph.num_vertices)
        runner = DmaOffloadRunner(cache_scale=0.02)
        a, _, _ = runner.run_layer(graph, features, order=order)
        np.testing.assert_allclose(a, aggregate(graph, features, "gcn"), atol=2e-4)

    def test_long_vectors_split_descriptors(self, graph):
        """F=600 > 512-element output buffer: each vertex needs 2
        descriptors (the Section 5.2 software splitting)."""
        wide = synthetic_features(graph, 600, seed=4)
        runner = DmaOffloadRunner(cache_scale=0.02)
        a, _, report = runner.run_layer(graph, wide)
        assert report.descriptors_issued == 2 * graph.num_vertices
        assert report.descriptors_split == graph.num_vertices
        np.testing.assert_allclose(a, aggregate(graph, wide, "gcn"), atol=3e-4)

    def test_weight_shape_validated(self, graph, features):
        bad = UpdateParams(
            weight=np.zeros((8, 4), dtype=np.float32),
            bias=np.zeros(4, dtype=np.float32),
        )
        with pytest.raises(ValueError):
            DmaOffloadRunner(cache_scale=0.02).run_layer(graph, features, params=bad)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            DmaOffloadRunner(block_size=0)


class TestTimingPlane:
    def test_core_accesses_tiny_in_agg_only(self, graph, features):
        """Table 5 agg-only: the core only writes descriptors."""
        runner = DmaOffloadRunner(cache_scale=0.02)
        _, _, report = runner.run_layer(graph, features)
        # One descriptor line per vertex (plus noise) — orders of
        # magnitude below the gather traffic.
        gathers = graph.num_edges + graph.num_vertices
        assert report.core_l1_accesses < gathers

    def test_engine_counts_populated(self, graph, features):
        runner = DmaOffloadRunner(cache_scale=0.02)
        _, _, report = runner.run_layer(graph, features)
        assert report.engine_dram_lines > 0
        assert report.engine_l3_hits > 0
        assert report.cycles > 0

    def test_more_tracking_entries_not_slower(self, graph, features):
        slow = DmaOffloadRunner(cache_scale=0.02, tracking_entries=4)
        fast = DmaOffloadRunner(cache_scale=0.02, tracking_entries=64)
        _, _, r_slow = slow.run_layer(graph, features)
        _, _, r_fast = fast.run_layer(graph, features)
        assert r_fast.cycles <= r_slow.cycles

    def test_update_overlap_reported(self, graph, features):
        params = UpdateParams(
            weight=np.zeros((40, 40), dtype=np.float32),
            bias=np.zeros(40, dtype=np.float32),
        )
        runner = DmaOffloadRunner(cache_scale=0.02)
        _, _, report = runner.run_layer(graph, features, params=params)
        assert report.update_cycles > 0
        assert 0.0 <= report.core_wait_fraction <= 1.0
