"""Unit tests for KernelStats merge semantics and the telemetry view."""

from repro.kernels import KernelStats


class TestMerge:
    def test_additive_fields_sum(self):
        a = KernelStats(gathers=3, flops=10.0, prefetches=2, tasks=1, blocks=4)
        b = KernelStats(gathers=7, flops=5.0, prefetches=1, tasks=2, blocks=6)
        a.merge(b)
        assert a.gathers == 10
        assert a.flops == 15.0
        assert a.prefetches == 3
        assert a.tasks == 3
        assert a.blocks == 10

    def test_extra_dict_summation(self):
        a = KernelStats(extra={"wall_time_s": 1.0, "only_a": 2.0})
        b = KernelStats(extra={"wall_time_s": 0.5, "only_b": 3.0})
        a.merge(b)
        assert a.extra == {"wall_time_s": 1.5, "only_a": 2.0, "only_b": 3.0}
        # merge must not mutate the right-hand side
        assert b.extra == {"wall_time_s": 0.5, "only_b": 3.0}

    def test_peak_buffer_bytes_takes_max(self):
        a = KernelStats(peak_buffer_bytes=100)
        a.merge(KernelStats(peak_buffer_bytes=50))
        assert a.peak_buffer_bytes == 100
        a.merge(KernelStats(peak_buffer_bytes=400))
        assert a.peak_buffer_bytes == 400

    def test_empty_merge_identity(self):
        stats = KernelStats(
            gathers=5, flops=2.0, prefetches=1, tasks=2, blocks=3,
            jit_compilations=1, decompressed_rows=4, compressed_rows=5,
            peak_buffer_bytes=64, dram_bytes_saved=7.0, extra={"k": 1.0},
        )
        before = stats.as_dict()
        stats.merge(KernelStats())
        assert stats.as_dict() == before

    def test_merge_into_empty_copies(self):
        src = KernelStats(gathers=5, peak_buffer_bytes=9, extra={"k": 2.0})
        dst = KernelStats()
        dst.merge(src)
        assert dst.as_dict() == src.as_dict()


class TestAsDict:
    def test_all_declared_counters_present(self):
        d = KernelStats().as_dict()
        assert set(d) == {
            "gathers", "flops", "prefetches", "tasks", "blocks",
            "jit_compilations", "decompressed_rows", "compressed_rows",
            "peak_buffer_bytes", "dram_bytes_saved",
        }
        assert all(isinstance(v, float) for v in d.values())

    def test_extra_namespaced(self):
        d = KernelStats(extra={"wall_time_s": 0.5}).as_dict()
        assert d["extra.wall_time_s"] == 0.5

    def test_extra_excluded_on_request(self):
        d = KernelStats(extra={"wall_time_s": 0.5}).as_dict(include_extra=False)
        assert "extra.wall_time_s" not in d
