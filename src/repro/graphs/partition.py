"""Task partitioning and load-balance analysis — Section 4.1's motivation.

"The processing time of a chunk correlates with the degrees of the
vertices in it.  The degrees can vary significantly and sometimes follow
a power law distribution.  To balance the load among threads, we
schedule the parallel tasks with OpenMP's dynamic scheduler."

This module quantifies that choice: it splits a vertex set into tasks of
``T`` vertices, weighs each task by its gather work (sum of degrees + 1),
and compares static thread assignment against a dynamic (greedy
longest-processing-time-first) schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class ScheduleReport:
    """Per-thread work under one scheduling policy."""

    policy: str
    thread_work: np.ndarray

    @property
    def makespan(self) -> float:
        return float(self.thread_work.max()) if len(self.thread_work) else 0.0

    @property
    def mean_work(self) -> float:
        return float(self.thread_work.mean()) if len(self.thread_work) else 0.0

    @property
    def imbalance(self) -> float:
        """makespan / mean — 1.0 is a perfectly balanced schedule."""
        if self.mean_work == 0:
            return 1.0
        return self.makespan / self.mean_work


def task_weights(
    graph: CSRGraph, task_size: int, order: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gather work (degree + 1 summed) of each T-vertex task."""
    if task_size <= 0:
        raise ValueError("task_size must be positive")
    degs = graph.degrees()
    if order is not None:
        degs = degs[order]
    work = degs + 1
    n = graph.num_vertices
    num_tasks = (n + task_size - 1) // task_size
    weights = np.zeros(num_tasks, dtype=np.float64)
    for task in range(num_tasks):
        weights[task] = work[task * task_size : (task + 1) * task_size].sum()
    return weights


def static_schedule(weights: np.ndarray, threads: int) -> ScheduleReport:
    """Round-robin task assignment (OpenMP static)."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    thread_work = np.zeros(threads)
    for task, weight in enumerate(weights):
        thread_work[task % threads] += weight
    return ScheduleReport(policy="static", thread_work=thread_work)


def dynamic_schedule(weights: np.ndarray, threads: int) -> ScheduleReport:
    """Work-stealing-style dynamic assignment.

    Models OpenMP's dynamic scheduler as a list scheduler: each thread
    grabs the next task when it goes idle, which is equivalent to always
    assigning the next task to the least-loaded thread.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    thread_work = np.zeros(threads)
    for weight in weights:
        thread_work[int(np.argmin(thread_work))] += weight
    return ScheduleReport(policy="dynamic", thread_work=thread_work)


def balance_comparison(
    graph: CSRGraph,
    task_size: int = 64,
    threads: int = 28,
    order: Optional[np.ndarray] = None,
) -> "tuple[ScheduleReport, ScheduleReport]":
    """(static, dynamic) schedules of a graph's aggregation tasks."""
    weights = task_weights(graph, task_size, order=order)
    return static_schedule(weights, threads), dynamic_schedule(weights, threads)


def chunk_boundaries(num_vertices: int, task_size: int) -> List[slice]:
    """The T-vertex chunk slices of Algorithm 1's parallel loop."""
    if task_size <= 0:
        raise ValueError("task_size must be positive")
    return [
        slice(start, min(start + task_size, num_vertices))
        for start in range(0, num_vertices, task_size)
    ]
