"""The modeled memory hierarchy: per-core L1D/L2, shared L3, DRAM.

Mirrors the evaluation platform of Section 6 (32KB L1D, 1MB L2,
1.375MB L3 slice per core, non-inclusive shared L3) plus the access paths
the DMA engine uses: input fetches bypass the private caches but may hit
in the shared L3, and aggregation results are installed directly into the
issuing core's L2 (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..perf.machine import MachineConfig, cascade_lake_28
from .cache import SetAssociativeCache
from .dram import DramModel
from .noc import MeshNoc

#: Load-to-use latencies in core cycles (typical Cascade Lake values).
L1_LATENCY = 4
L2_LATENCY = 14
L3_LATENCY = 44


@dataclass
class AccessResult:
    """Outcome of one line access."""

    level: str  # "L1" | "L2" | "L3" | "DRAM"
    latency_cycles: float


class MemoryHierarchy:
    """Private L1/L2 per core + shared L3 + one DRAM interface."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        cache_scale: float = 1.0,
        noc: Optional[MeshNoc] = None,
    ) -> None:
        """Build the hierarchy.

        Args:
            machine: platform parameters.
            cache_scale: shrink factor applied to every cache, used to
                keep cache:working-set ratios faithful when simulating
                scaled-down dataset twins (same argument as
                :func:`repro.perf.cost_model.scaled_capacity_vectors`).
            noc: optional mesh model; when given, L3 hits pay a
                distance-dependent latency to the line's home slice
                instead of the flat L3_LATENCY (Figure 7a's shared NoC
                port).  Default None keeps the flat latency the timing
                calibration uses.
        """
        machine = machine or cascade_lake_28()
        if not 0 < cache_scale <= 1.0:
            raise ValueError(f"cache_scale must be in (0, 1], got {cache_scale}")
        self.machine = machine
        self.noc = noc
        line = machine.line_bytes

        def scaled(size: int, minimum: int) -> int:
            return max(minimum, int(size * cache_scale))

        self.l1: List[SetAssociativeCache] = [
            SetAssociativeCache(scaled(machine.l1d_bytes, 8 * line), 8, line, f"L1-{c}")
            for c in range(machine.cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(scaled(machine.l2_bytes, 16 * line), 16, line, f"L2-{c}")
            for c in range(machine.cores)
        ]
        self.l3 = SetAssociativeCache(
            scaled(machine.l3_total_bytes, 16 * line), 16, line, "L3"
        )
        self.dram = DramModel(
            bandwidth_bytes_per_s=machine.dram_bandwidth,
            base_latency_ns=machine.dram_latency_ns,
            frequency_hz=machine.frequency_hz,
            line_bytes=line,
        )

    # ------------------------------------------------------------------
    def access(
        self,
        core: int,
        addr: int,
        write: bool = False,
        now_cycle: float = 0.0,
        bypass_private: bool = False,
    ) -> AccessResult:
        """One line reference from a core (or its DMA engine).

        ``bypass_private=True`` is the DMA input path: the engine never
        allocates gathered inputs in L1/L2 (they are read-once by design —
        Section 5.2's coherence discussion) but does benefit from the
        shared L3.
        """
        if not 0 <= core < len(self.l1):
            raise IndexError(f"core {core} out of range")
        if not bypass_private:
            if self.l1[core].access(addr, write):
                return AccessResult("L1", L1_LATENCY)
            if self.l2[core].access(addr, write):
                return AccessResult("L2", L2_LATENCY)
        if self.l3.access(addr, write):
            latency = L3_LATENCY
            if self.noc is not None:
                latency = L2_LATENCY + self.noc.l3_access_latency(core, addr)
            return AccessResult("L3", latency)
        done = self.dram.request(now_cycle)
        return AccessResult("DRAM", max(L3_LATENCY, done - now_cycle))

    def dma_install_output(self, core: int, addr: int) -> None:
        """DMA result line pushed into the issuing core's L2 (Section 5.2)."""
        self.l2[core].install(addr, dirty=True)
        self.l3.install(addr, dirty=True)

    # ------------------------------------------------------------------
    def publish_metrics(self, prefix: str = "sim") -> None:
        """Publish aggregate cache/DRAM counters into the metrics registry.

        No-op while telemetry is disabled.  Names follow the
        ``<prefix>.<level>.<counter>`` convention, e.g. ``sim.l2.misses``
        and ``sim.dram.bytes_served``.
        """
        from ..obs import get_metrics

        metrics = get_metrics()
        if not metrics.enabled:
            return
        levels = {"l1": self.l1, "l2": self.l2, "l3": [self.l3]}
        for level, caches in levels.items():
            for counter in ("accesses", "hits", "misses", "evictions", "installs"):
                metrics.inc(
                    f"{prefix}.{level}.{counter}",
                    sum(getattr(cache.stats, counter) for cache in caches),
                )
        metrics.inc(f"{prefix}.dram.lines_served", self.dram.stats.lines_served)
        metrics.inc(f"{prefix}.dram.bytes_served", self.dram.stats.bytes_served)
        metrics.inc(f"{prefix}.dram.busy_cycles", self.dram.stats.busy_cycles)
        metrics.set_gauge(f"{prefix}.l2.miss_rate", self.l2_miss_rate())

    def dram_traffic_bytes(self) -> float:
        """DRAM bytes the hierarchy has served so far (fills, line-granular)."""
        return float(self.dram.stats.bytes_served)

    def l1_accesses(self) -> int:
        return sum(c.stats.accesses for c in self.l1)

    def l2_accesses(self) -> int:
        return sum(c.stats.accesses for c in self.l2)

    def l2_miss_rate(self) -> float:
        accesses = self.l2_accesses()
        if accesses == 0:
            return 0.0
        return sum(c.stats.misses for c in self.l2) / accesses

    def reset_stats(self) -> None:
        for cache in (*self.l1, *self.l2, self.l3):
            cache.reset_stats()
        self.dram.reset()
