#!/usr/bin/env python
"""Full-batch GNN training with Graphite's software techniques.

Reproduces the paper's training story end-to-end on a twin graph:

* trains a 3-layer GraphSAGE with dropout and profiles the hidden-
  feature sparsity that motivates compression (Section 2.2),
* computes the Section 4.4 locality order and shows the gather hit-rate
  improvement it buys on this graph,
* prices a training epoch for every software variant with the cost
  model and prints the Figure-11b-style speedup column.

Run:  python examples/full_batch_training.py
"""

import numpy as np

from repro.graphs import (
    graph_stats,
    input_feature_size,
    load_dataset,
    synthetic_features,
)
from repro.nn import Adam, Trainer, build_model
from repro.perf import CostModel


def main() -> None:
    graph = load_dataset("products", scale=0.25, seed=0)
    print("graph:", graph_stats(graph).as_row())

    # ------------------------------------------------------------------
    # Section 2.2: measure how sparse hidden features actually get.
    # ------------------------------------------------------------------
    f_in = 48
    features = synthetic_features(graph, f_in, seed=0)
    labels = np.random.default_rng(0).integers(0, 8, graph.num_vertices)
    model = build_model("sage", f_in, 64, 8, num_layers=3, dropout=0.5, seed=0)
    trainer = Trainer(model, Adam(model, lr=0.01), profile_sparsity=True)
    trainer.fit(graph, features, labels, epochs=8)
    profile = trainer.history.sparsity
    print("\nhidden-feature sparsity during training (Section 2.2):")
    print(profile.summary())
    print("-> this is the sparsity the Section 4.3 compression exploits")

    # ------------------------------------------------------------------
    # Section 4.4: how much locality does Algorithm 3 create here?
    # ------------------------------------------------------------------
    cost = CostModel(graph)
    natural = cost.hit_rate("natural")
    localized = cost.hit_rate("locality")
    print(f"\ngather hit rate @ scaled cache capacity "
          f"({cost.capacity_vectors:.0f} vectors):")
    print(f"  natural order : {natural:6.1%}")
    print(f"  Algorithm 3   : {localized:6.1%}")

    # ------------------------------------------------------------------
    # Figure 11b: price a training epoch for each software variant.
    # ------------------------------------------------------------------
    f_input = input_feature_size("products", 1.0)
    print("\nmodeled training-epoch speedup over DistGNN @50% sparsity:")
    for variant in ("mkl", "basic", "fusion", "compression", "combined",
                    "c-locality"):
        speedup = cost.speedup(
            variant, f_input, 256, training=True, sparsity=0.5
        )
        print(f"  {variant:<12} {speedup:5.2f}x")
    print("\n(the paper's Figure 11b reports 1.58x for combined and 2.57x "
          "for combined+locality on the full-size products graph)")


if __name__ == "__main__":
    main()
