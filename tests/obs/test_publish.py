"""Publishers: sim cache/DRAM, prefetcher, and DMA timeline -> registry."""

import pytest

from repro import obs
from repro.dma.timeline import figure10_example
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.prefetcher import StreamPrefetcher


@pytest.fixture
def telemetry():
    """Enabled tracer+registry, restored to the nulls afterwards."""
    tracer, metrics = obs.enable()
    yield tracer, metrics
    obs.disable()


class TestHierarchyPublish:
    def test_publishes_cache_and_dram_counters(self, telemetry):
        _, metrics = telemetry
        hierarchy = MemoryHierarchy(cache_scale=0.01)
        for addr in range(0, 64 * 100, 64):
            hierarchy.access(0, addr)
        hierarchy.publish_metrics()
        snap = metrics.snapshot()
        assert snap["sim.l1.accesses"]["value"] == 100.0
        assert snap["sim.l1.misses"]["value"] > 0
        assert "sim.l2.accesses" in snap
        assert "sim.l3.accesses" in snap
        assert snap["sim.dram.lines_served"]["value"] > 0
        assert snap["sim.dram.bytes_served"]["value"] > 0

    def test_noop_when_disabled(self):
        hierarchy = MemoryHierarchy(cache_scale=0.01)
        hierarchy.access(0, 0)
        hierarchy.publish_metrics()  # must not raise, must not record
        assert obs.get_metrics().snapshot() == {}


class TestPrefetcherPublish:
    def test_publishes_effectiveness(self, telemetry):
        _, metrics = telemetry
        prefetcher = StreamPrefetcher()
        prefetcher.run_trace(list(range(0, 64 * 50, 64)))  # pure stream
        prefetcher.publish_metrics()
        snap = metrics.snapshot()
        assert snap["sim.prefetcher.accesses"]["value"] == 50.0
        assert snap["sim.prefetcher.useful_prefetches"]["value"] > 0
        assert 0.0 < snap["sim.prefetcher.coverage"]["value"] <= 1.0


class TestDmaTimelinePublish:
    def test_run_emits_span_and_metrics(self, telemetry):
        tracer, metrics = telemetry
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        spans = tracer.spans("dma.timeline")
        assert len(spans) == 1
        assert spans[0].counters["finish_cycles"] == result.finish_time
        assert spans[0].counters["events"] == len(result.events)
        snap = metrics.snapshot()
        assert snap["dma.timeline.runs"]["value"] == 1.0
        assert snap["dma.timeline.descriptors"]["value"] == 1.0
        assert (
            snap["dma.timeline.max_table_occupancy"]["value"]
            == result.max_table_occupancy
        )

    def test_result_unchanged_when_disabled(self):
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        assert result.finish_time > 0
        assert obs.get_tracer().enabled is False
