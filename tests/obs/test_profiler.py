"""Unit tests for the sampling profiler and ``profile diff`` engine."""

import json
import os
import sys
import threading
import time

import pytest

from repro.obs import Tracer
from repro.obs.profiler import (
    DEFAULT_SAMPLING_HZ,
    NULL_PROFILER,
    ProfileData,
    SamplingProfiler,
    fold_stack,
    frame_label,
    load_profile_document,
    phase_of_stack,
    profile_diff,
    render_profile,
    span_phase_seconds,
    write_collapsed,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "data")


class TestPhaseAttribution:
    def test_innermost_phase_wins(self):
        # A backward kernel nested inside an epoch/layer still reads as
        # backward; the enclosing spans carry no phase of their own.
        stack = ["epoch", "layer", "kernel.backward.basic"]
        assert phase_of_stack(stack) == "backward"

    def test_kernel_names_map_to_paper_phases(self):
        assert phase_of_stack(["kernel.basic"]) == "aggregate"
        assert phase_of_stack(["kernel.fusion"]) == "update"
        assert phase_of_stack(["kernel.compression"]) == "compress"
        assert phase_of_stack(["kernel.backward.anything"]) == "backward"

    def test_no_phase_span_is_other(self):
        assert phase_of_stack(["epoch", "layer"]) == "other"
        assert phase_of_stack([]) == "other"

    def test_inner_phase_shadows_outer(self):
        # compress inside an aggregate kernel: the innermost wins.
        stack = ["kernel.basic", "kernel.compression"]
        assert phase_of_stack(stack) == "compress"


def _leaf_frame():
    def inner():
        return sys._getframe()

    def outer():
        return inner()

    return outer()


class TestFolding:
    def test_fold_is_deterministic(self):
        # The same call site folded twice yields identical tuples — the
        # property the collapsed-stack table keys depend on.
        assert fold_stack(_leaf_frame()) == fold_stack(_leaf_frame())

    def test_fold_orders_root_to_leaf(self):
        frames = fold_stack(_leaf_frame())
        assert frames[-1].endswith(":inner")
        assert frames[-2].endswith(":outer")
        assert frames.index(frames[-2]) < frames.index(frames[-1])

    def test_frame_label_is_module_and_function(self):
        label = frame_label(_leaf_frame())
        module, _, func = label.partition(":")
        assert func == "inner"
        assert "test_profiler" in module

    def test_max_depth_truncates(self):
        frames = fold_stack(_leaf_frame(), max_depth=2)
        assert len(frames) == 2
        # Truncation drops the *root* side: the leaf is always kept.
        assert frames[-1].endswith(":inner")


class TestProfileData:
    def test_record_and_phase_seconds(self):
        data = ProfileData(hz=100.0)
        for _ in range(5):
            data.record("aggregate", ("main:f",), "MainThread")
        data.record("other", ("main:g",), "MainThread")
        assert data.thread_samples == 6
        assert data.phase_seconds["aggregate"] == pytest.approx(0.05)
        assert data.seconds(10.0) == pytest.approx(0.1)

    def test_top_self_ranks_leaf_frames(self):
        data = ProfileData(hz=100.0)
        for _ in range(3):
            data.record("other", ("a:root", "b:hot"), "t")
        data.record("other", ("a:root", "c:cold"), "t")
        data.record("aggregate", ("d:entry", "b:hot"), "t")
        top = data.top_self(2)
        assert top[0][0] == "b:hot"
        assert top[0][1] == 4.0  # self samples sum across phases
        assert top[1][0] == "c:cold"

    def test_overflow_bucket_bounds_unique_stacks(self, monkeypatch):
        monkeypatch.setattr("repro.obs.profiler.MAX_UNIQUE_STACKS", 2)
        data = ProfileData(hz=100.0)
        data.record("other", ("a:a",), "t")
        data.record("other", ("b:b",), "t")
        data.record("other", ("c:c",), "t")  # third unique stack: overflow
        assert len(data.stacks) == 3
        assert data.stacks[("other", ("<overflow>",))] == 1.0
        assert data.thread_samples == 3  # mass is never dropped

    def test_collapsed_lines_format_and_determinism(self):
        data = ProfileData(hz=100.0)
        data.record("aggregate", ("main:run", "kern:gather"), "t")
        data.record("aggregate", ("main:run", "kern:gather"), "t")
        data.record("other", ("main:run",), "t")
        lines = data.collapsed_lines()
        assert lines == [
            "aggregate;main:run;kern:gather 2",
            "other;main:run 1",
        ]
        assert lines == data.collapsed_lines()  # stable across calls

    def test_merge_with_source_prepends_root_frame(self):
        parent = ProfileData(hz=100.0)
        parent.record("other", ("main:loop",), "MainThread")
        worker = ProfileData(hz=100.0)
        worker.record("aggregate", ("exec:run", "kern:gather"), "MainThread")
        parent.merge(worker, source="worker-0")
        key = ("aggregate", ("worker-0", "exec:run", "kern:gather"))
        assert parent.stacks[key] == 1.0
        assert parent.threads["worker-0:MainThread"] == 1.0
        assert parent.sources == ["worker-0"]
        assert parent.thread_samples == 2

    def test_merge_rescales_across_rates(self):
        # A worker sampled at 200 Hz contributes half the per-sample
        # seconds of a 100 Hz parent; counts rescale so seconds agree.
        parent = ProfileData(hz=100.0)
        worker = ProfileData(hz=200.0)
        for _ in range(10):
            worker.record("aggregate", ("w:f",), "t")
        parent.merge(worker)
        assert parent.phase_seconds["aggregate"] == pytest.approx(
            worker.phase_seconds["aggregate"]
        )

    def test_dict_round_trip(self):
        data = ProfileData(hz=97.0)
        data.samples = 4
        data.record("aggregate", ("m:f", "m:g"), "MainThread", t_s=0.01)
        data.record("other", ("m:f",), "helper")
        clone = ProfileData.from_dict(data.to_dict())
        assert clone.hz == data.hz
        assert clone.stacks == data.stacks
        assert clone.phase_samples == data.phase_samples
        assert clone.threads == data.threads
        assert clone.timeline == data.timeline

    def test_write_collapsed_empty_profile(self, tmp_path):
        path = tmp_path / "empty.folded"
        assert write_collapsed(str(path), ProfileData()) == 0
        assert path.read_text() == ""


class TestSamplingProfiler:
    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)

    def test_sample_lands_in_span_phase(self):
        tracer = Tracer()
        profiler = SamplingProfiler(tracer=tracer, hz=200.0)
        done = threading.Event()

        def work():
            with tracer.span("kernel.basic", vertices=1):
                while not done.is_set():
                    sum(i * i for i in range(500))

        thread = threading.Thread(target=work, name="busy-worker")
        thread.start()
        try:
            time.sleep(0.01)  # let the span open
            for _ in range(5):
                profiler.sample_once()
        finally:
            done.set()
            thread.join()
        data = profiler.stop()
        assert data.samples == 5
        assert data.phase_samples.get("aggregate", 0.0) >= 1.0
        assert any("busy-worker" in label for label in data.threads)

    def test_threads_exiting_mid_profile_are_safe(self):
        # Regression guard for the sys._current_frames() race: threads
        # that die between the snapshot and the fold must not break the
        # sampler or lose the tick.
        profiler = SamplingProfiler(hz=1000.0).start()
        try:
            for _ in range(30):
                thread = threading.Thread(target=lambda: time.sleep(0.001))
                thread.start()
                thread.join()
        finally:
            data = profiler.stop()
        assert data.samples >= 1
        # Everything sampled without a tracer lands in "other".
        assert set(data.phase_samples) <= {"other"}

    def test_start_stop_empty_capture_exports_cleanly(self, tmp_path):
        profiler = SamplingProfiler(hz=DEFAULT_SAMPLING_HZ)
        data = profiler.stop()  # never started: zero ticks
        assert data.samples == 0
        rendered = render_profile(data)
        assert "0 ticks" in rendered
        assert write_collapsed(str(tmp_path / "f.folded"), data) == 0
        doc = data.to_dict()
        assert doc["phases"] == {}
        assert doc["duration_estimate_s"] == 0.0

    def test_never_samples_its_own_thread(self):
        profiler = SamplingProfiler(hz=500.0).start()
        time.sleep(0.03)
        data = profiler.stop()
        assert not any(
            "repro-sampling-profiler" in label for label in data.threads
        )

    def test_absorb_accepts_serialized_dict(self):
        profiler = SamplingProfiler(hz=100.0)
        shipped = ProfileData(hz=100.0)
        shipped.record("aggregate", ("w:f",), "MainThread")
        profiler.absorb(shipped.to_dict(), source="worker-1")
        profiler.absorb(None)  # payload without a profile: no-op
        assert profiler.data.sources == ["worker-1"]
        assert ("aggregate", ("worker-1", "w:f")) in profiler.data.stacks

    def test_registry_counts_ticks(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=100.0, registry=registry)
        profiler.sample_once()
        profiler.sample_once()
        assert registry.snapshot()["profiler.samples"]["value"] == 2.0

    def test_null_profiler_is_inert(self):
        assert not NULL_PROFILER.enabled
        assert NULL_PROFILER.start() is NULL_PROFILER
        assert NULL_PROFILER.stop() is None
        assert NULL_PROFILER.sample_once() == 0
        NULL_PROFILER.absorb(ProfileData())
        names = [t.name for t in threading.enumerate()]
        assert "repro-sampling-profiler" not in names


class TestSpanPhaseSeconds:
    def test_only_kernel_spans_count(self):
        records = [
            {"name": "epoch", "duration_s": 1.0},
            {"name": "backward", "duration_s": 0.5},  # trainer span: skip
            {"name": "kernel.basic", "duration_s": 0.2},
            {"name": "kernel.basic", "duration_s": 0.1},
            {"name": "kernel.backward.basic", "duration_s": 0.3},
            {"name": "worker", "duration_s": 0.05},
        ]
        totals = span_phase_seconds(records)
        assert totals == {
            "aggregate": pytest.approx(0.3),
            "backward": pytest.approx(0.3),
        }

    def test_render_profile_includes_span_wall_column(self):
        data = ProfileData(hz=100.0)
        for _ in range(8):
            data.record("aggregate", ("m:f",), "t")
        text = render_profile(data, span_seconds={"aggregate": 0.081})
        assert "span wall" in text
        assert "0.081s" in text


class TestProfileDiff:
    def test_golden_captures_flag_the_slow_phase(self):
        # Two committed captures of the same workload: the regressed one
        # grew its aggregate phase 1.57x while backward moved +10 ms
        # (under the noise floor).  Exactly one gated regression.
        baseline = os.path.join(DATA_DIR, "profile_baseline.json")
        regressed = os.path.join(DATA_DIR, "profile_regressed.json")
        diff = profile_diff(baseline, regressed)
        assert not diff.ok
        assert [r.name for r in diff.regressions] == ["aggregate"]
        rendered = diff.render()
        assert "REGRESSED" in rendered
        assert "verdict: 1 regression(s): aggregate" in rendered

    def test_self_comparison_is_ok(self):
        baseline = os.path.join(DATA_DIR, "profile_baseline.json")
        diff = profile_diff(baseline, baseline)
        assert diff.ok
        assert "verdict: OK" in diff.render()

    def _capture(self, **phase_seconds):
        return {
            "hz": 97.0,
            "phases": {
                name: {"samples": seconds * 97.0, "seconds": seconds}
                for name, seconds in phase_seconds.items()
            },
            "top": [],
        }

    def test_small_absolute_delta_never_gates(self):
        a = self._capture(aggregate=0.010)
        b = self._capture(aggregate=0.019)  # +90% relative, +9 ms absolute
        assert profile_diff(a, b, threshold=0.25, min_seconds=0.02).ok

    def test_relative_threshold_gates_large_phases(self):
        a = self._capture(aggregate=1.0)
        b = self._capture(aggregate=1.3)
        diff = profile_diff(a, b, threshold=0.25, min_seconds=0.02)
        assert [r.name for r in diff.regressions] == ["aggregate"]
        # Under a looser threshold the same delta passes.
        assert profile_diff(a, b, threshold=0.5, min_seconds=0.02).ok

    def test_new_phase_in_current_has_inf_ratio(self):
        a = self._capture(aggregate=0.5)
        b = self._capture(aggregate=0.5, compress=0.2)
        diff = profile_diff(a, b)
        row = next(r for r in diff.rows if r.name == "compress")
        assert row.ratio == float("inf")
        assert row.regressed  # 0 -> 0.2s clears both gates

    def test_function_rows_report_but_never_gate(self):
        a = {
            "hz": 97.0,
            "phases": {"other": {"samples": 10, "seconds": 0.1}},
            "top": [{"function": "m:f", "self_samples": 1, "self_seconds": 0.01}],
        }
        b = {
            "hz": 97.0,
            "phases": {"other": {"samples": 10, "seconds": 0.1}},
            "top": [{"function": "m:f", "self_samples": 50, "self_seconds": 0.5}],
        }
        diff = profile_diff(a, b)
        func_rows = [r for r in diff.rows if r.kind == "function"]
        assert func_rows and not any(r.regressed for r in func_rows)
        assert diff.ok

    def test_accepts_full_run_report(self, tmp_path):
        report = {"schema": 1, "profile": self._capture(aggregate=0.3)}
        path = tmp_path / "run.json"
        path.write_text(json.dumps(report))
        assert profile_diff(str(path), str(path)).ok

    def test_document_without_profile_raises(self):
        with pytest.raises(ValueError, match="no sampled profile"):
            load_profile_document({"schema": 1, "spans": []})
