"""Feature compression applied to aggregation kernels (Section 4.3).

The compressed kernels hold the input feature matrix in the fixed-stride
mask-compressed form of :mod:`repro.tensors.compression`, decompress each
gathered row on the fly, and track the DRAM bytes the compression avoids.
The numerics are bit-identical to the dense kernels — compression is
lossless by construction.

The per-vertex loop is the same chunk body as the dense kernels, so both
compressed variants dispatch through :class:`repro.parallel.ChunkExecutor`
and run on ``thread`` / ``process`` workers unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import get_metrics, get_tracer, publish_counters
from ..tensors.compression import (
    CompressedMatrix,
    compress_matrix,
    decompress_matrix,
)
from .base import (
    AggregationKernel,
    FusedLayerKernel,
    KernelStats,
    UpdateParams,
    resolve_engine,
    validate_inputs,
)
from .basic import DEFAULT_TASK_SIZE
from .fused import DEFAULT_BLOCK_SIZE, DEFAULT_BLOCKS_PER_TASK
from ..parallel.executor import ChunkExecutor, ExecutionReport
from ..parallel.plan import build_chunk_plan
from ..parallel.workload import BasicAggregationWorkload, FusedLayerWorkload


def _compression_savings(compressed: CompressedMatrix, gathers_per_row: np.ndarray) -> float:
    """DRAM bytes avoided by gathering compressed rows.

    Each gather of row ``v`` moves ``stored`` instead of ``dense`` bytes;
    the saving is weighted by how often each row is gathered.
    """
    dense_row = compressed.cols * compressed.slots.dtype.itemsize
    stored = compressed.counts * compressed.slots.dtype.itemsize + compressed.masks.shape[1]
    return float(((dense_row - stored) * gathers_per_row).sum())


class CompressedKernel(AggregationKernel):
    """Aggregation over a mask-compressed feature matrix."""

    name = "compression"

    def __init__(
        self,
        task_size: int = DEFAULT_TASK_SIZE,
        executor: Optional[ChunkExecutor] = None,
        engine: Optional[str] = None,
    ) -> None:
        if task_size <= 0:
            raise ValueError(f"task_size must be positive, got {task_size}")
        self.task_size = task_size
        self.executor = executor or ChunkExecutor()
        self.engine = resolve_engine(engine)
        self.last_report: Optional[ExecutionReport] = None

    def aggregate(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, KernelStats]:
        validate_inputs(graph, h)
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        compressed = compress_matrix(h)
        # Decompress-on-gather: restore the dense matrix once (the value
        # plane's equivalent of per-gather mask expansion) and count every
        # gathered row as one expansion.
        dense = decompress_matrix(compressed)
        engine = resolve_engine(self.engine)
        workload = BasicAggregationWorkload(
            graph, dense, aggregator, order, count_decompressed=True, engine=engine
        )
        plan = build_chunk_plan(graph, self.task_size, order)
        with get_tracer().span(
            "kernel.compression",
            aggregator=aggregator,
            vertices=n,
            edges=graph.num_edges,
            features=int(h.shape[1]),
            backend=self.executor.backend,
            workers=self.executor.workers,
            engine=engine,
        ) as span:
            outputs, stats, report = self.executor.run(workload, plan)
            self.last_report = report
            stats.compressed_rows = n
            gathers_per_row = np.bincount(graph.indices, minlength=n) + 1
            stats.dram_bytes_saved = _compression_savings(compressed, gathers_per_row)
            stats.flops = 2.0 * stats.gathers * h.shape[1]
            span.add_counters(stats.as_dict())
        publish_counters(get_metrics(), "kernel.compression", stats.as_dict(False))
        return outputs["out"], stats


class CompressedFusedKernel(FusedLayerKernel):
    """Fusion + compression: the paper's ``combined`` variant."""

    name = "combined"

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        blocks_per_task: int = DEFAULT_BLOCKS_PER_TASK,
        executor: Optional[ChunkExecutor] = None,
        engine: Optional[str] = None,
    ) -> None:
        if block_size <= 0 or blocks_per_task <= 0:
            raise ValueError("block_size and blocks_per_task must be positive")
        self.block_size = block_size
        self.blocks_per_task = blocks_per_task
        self.executor = executor or ChunkExecutor()
        self.engine = resolve_engine(engine)
        self.last_report: Optional[ExecutionReport] = None

    def run_layer(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str = "gcn",
        keep_aggregation: bool = False,
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], KernelStats]:
        validate_inputs(graph, h)
        if params.weight.shape[0] != h.shape[1]:
            raise ValueError(
                f"weight rows {params.weight.shape[0]} != features {h.shape[1]}"
            )
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        compressed = compress_matrix(h)
        dense = decompress_matrix(compressed)
        engine = resolve_engine(self.engine)
        workload = FusedLayerWorkload(
            graph,
            dense,
            params,
            aggregator,
            order,
            block_size=self.block_size,
            keep_aggregation=keep_aggregation,
            count_decompressed=True,
            engine=engine,
        )
        plan = build_chunk_plan(graph, self.block_size * self.blocks_per_task, order)
        with get_tracer().span(
            "kernel.combined",
            aggregator=aggregator,
            vertices=n,
            edges=graph.num_edges,
            features=int(h.shape[1]),
            features_out=int(params.weight.shape[1]),
            keep_aggregation=keep_aggregation,
            backend=self.executor.backend,
            workers=self.executor.workers,
            engine=engine,
        ) as span:
            outputs, stats, report = self.executor.run(workload, plan)
            self.last_report = report
            a_full = outputs.get("a") if keep_aggregation else None
            stats.compressed_rows = n
            stats.peak_buffer_bytes = (
                a_full.nbytes
                if a_full is not None
                else self.block_size * h.shape[1] * np.dtype(np.float32).itemsize
            )
            gathers_per_row = np.bincount(graph.indices, minlength=n) + 1
            stats.dram_bytes_saved = _compression_savings(compressed, gathers_per_row)
            f_out = params.weight.shape[1]
            stats.flops = (
                2.0 * stats.gathers * h.shape[1] + 2.0 * n * h.shape[1] * f_out
            )
            span.add_counters(stats.as_dict())
        publish_counters(get_metrics(), "kernel.combined", stats.as_dict(False))
        return outputs["h_out"], a_full, stats
