"""Unit + property tests for vertex processing orders (Section 4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CSRGraph,
    apply_order,
    degree_sorted_order,
    is_permutation,
    locality_order,
    natural_order,
    randomized_order,
    star_graph,
    uniform_graph,
)


class TestBasicOrders:
    def test_natural_is_identity(self, tiny_graph):
        np.testing.assert_array_equal(
            natural_order(tiny_graph), np.arange(tiny_graph.num_vertices)
        )

    def test_randomized_is_permutation(self, small_uniform):
        order = randomized_order(small_uniform, seed=3)
        assert is_permutation(order, small_uniform.num_vertices)

    def test_randomized_deterministic_per_seed(self, small_uniform):
        a = randomized_order(small_uniform, seed=3)
        b = randomized_order(small_uniform, seed=3)
        c = randomized_order(small_uniform, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_degree_sorted_descending(self, small_uniform):
        order = degree_sorted_order(small_uniform)
        degs = small_uniform.degrees()[order]
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))

    def test_degree_sorted_ascending(self, small_uniform):
        order = degree_sorted_order(small_uniform, descending=False)
        degs = small_uniform.degrees()[order]
        assert all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))


class TestLocalityOrder:
    def test_is_permutation(self, small_community):
        order = locality_order(small_community)
        assert is_permutation(order, small_community.num_vertices)

    def test_star_groups_leaves_with_hub(self, star10):
        """Every leaf's only (and max-degree) neighbor is the hub, so all
        leaves join L[hub] and appear contiguously (Algorithm 3)."""
        order = locality_order(star10)
        # The hub has degree 10; leaves have degree 1 -> the hub's own
        # owner is itself; leaves' owner is the hub.  All 11 vertices end
        # up in one group, emitted contiguously.
        assert is_permutation(order, 11)

    def test_isolated_vertices_own_themselves(self):
        graph = CSRGraph.from_edges(4, [(0, 1)])
        order = locality_order(graph)
        assert is_permutation(order, 4)

    def test_groups_are_contiguous(self, small_community):
        """All vertices owned by the same hub appear consecutively in M."""
        graph = small_community
        degs = graph.degrees()
        owner = np.arange(graph.num_vertices)
        best = degs.copy()
        for v in range(graph.num_vertices):
            row = graph.neighbors(v)
            if len(row) == 0:
                continue
            j = int(np.argmax(degs[row]))
            if degs[row][j] > best[v] or (
                degs[row][j] == best[v] and row[j] < owner[v]
            ):
                owner[v] = row[j]
                best[v] = degs[row][j]
        order = locality_order(graph)
        owners_in_order = owner[order]
        # Each owner id appears in exactly one contiguous run.
        seen = set()
        previous = None
        for current in owners_in_order:
            if current != previous:
                assert current not in seen, "owner group split apart"
                seen.add(current)
            previous = current

    def test_improves_reuse_on_community_graph(self, small_community):
        from repro.perf.reuse import reuse_profile

        capacity = 24.0
        natural = reuse_profile(small_community, natural_order(small_community))
        localized = reuse_profile(small_community, locality_order(small_community))
        assert localized.hit_rate(capacity) >= natural.hit_rate(capacity)

    def test_linear_time_complexity_smoke(self):
        """Large-ish graph completes quickly (O(|V| + |E|))."""
        graph = uniform_graph(5000, 8.0, seed=0)
        order = locality_order(graph)
        assert is_permutation(order, 5000)

    @staticmethod
    def _reference_owner_loop(graph):
        """Algorithm 3's owner rule, per vertex: the max-degree neighbor
        (smallest id on ties) owns v when it beats v's own degree (same
        tie-break).  The vectorized implementation must match exactly."""
        degs = graph.degrees()
        owner = np.arange(graph.num_vertices, dtype=np.int64)
        for v in range(graph.num_vertices):
            row = graph.neighbors(v)
            if len(row) == 0:
                continue
            best = row[np.argmax(degs[row] * (graph.num_vertices + 1) - row)]
            if (degs[best], -best) > (degs[v], -v):
                owner[v] = best
        return np.argsort(owner, kind="stable").astype(np.int64)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorized_matches_reference_loop(self, seed):
        graph = uniform_graph(200, avg_degree=5.0, seed=seed)
        np.testing.assert_array_equal(
            locality_order(graph), self._reference_owner_loop(graph)
        )

    def test_vectorized_matches_reference_loop_on_shapes(
        self, tiny_graph, star10, chain20, small_community
    ):
        for graph in (tiny_graph, star10, chain20, small_community):
            np.testing.assert_array_equal(
                locality_order(graph), self._reference_owner_loop(graph)
            )

    def test_empty_graph(self):
        graph = CSRGraph.from_edges(0, [])
        assert len(locality_order(graph)) == 0


class TestApplyOrder:
    def test_preserves_counts(self, small_uniform):
        order = randomized_order(small_uniform, seed=1)
        relabeled = apply_order(small_uniform, order)
        assert relabeled.num_vertices == small_uniform.num_vertices
        assert relabeled.num_edges == small_uniform.num_edges

    def test_preserves_structure(self, tiny_graph):
        order = np.array([4, 3, 2, 1, 0])
        relabeled = apply_order(tiny_graph, order)
        # order[i] becomes vertex i: old vertex 3 (with neighbors 0,1,2)
        # becomes new vertex 1 with neighbors {4,3,2}.
        assert sorted(relabeled.neighbors(1).tolist()) == [2, 3, 4]

    def test_identity_order_is_noop(self, tiny_graph):
        relabeled = apply_order(tiny_graph, natural_order(tiny_graph))
        np.testing.assert_array_equal(relabeled.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(relabeled.indices, tiny_graph.indices)

    def test_rejects_non_permutation(self, tiny_graph):
        with pytest.raises(ValueError):
            apply_order(tiny_graph, np.array([0, 0, 1, 2, 3]))

    def test_rejects_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError):
            apply_order(tiny_graph, np.array([0, 1, 2, 3, 5]))
        with pytest.raises(ValueError):
            apply_order(tiny_graph, np.array([-1, 0, 1, 2, 3]))

    def test_rejects_wrong_length(self, tiny_graph):
        with pytest.raises(ValueError):
            apply_order(tiny_graph, np.array([0, 1, 2]))

    def test_degree_multiset_preserved(self, small_community):
        order = locality_order(small_community)
        relabeled = apply_order(small_community, order)
        assert sorted(relabeled.degrees()) == sorted(small_community.degrees())


class TestIsPermutation:
    def test_valid(self):
        assert is_permutation(np.array([2, 0, 1]), 3)

    def test_wrong_length(self):
        assert not is_permutation(np.array([0, 1]), 3)

    def test_duplicate(self):
        assert not is_permutation(np.array([0, 0, 2]), 3)

    def test_out_of_range(self):
        assert not is_permutation(np.array([0, 1, 3]), 3)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_locality_order_always_permutation(n, seed):
    graph = uniform_graph(n, avg_degree=3.0, seed=seed)
    assert is_permutation(locality_order(graph), n)
