"""Algorithm 1: parallel vectorized aggregation with software prefetch.

The paper's ``basic`` kernel:

* output-parallelizes over chunks of ``T`` vertices (no synchronization —
  each task owns a disjoint slice of ``a``),
* dynamically schedules chunks to balance power-law degree skew,
* issues a software prefetch for the vertex ``D`` positions ahead,
  restricted to the first two cache lines of each feature vector because
  the L1 fill buffers are usually full (Section 4.1),
* runs a JIT-specialized inner kernel per layer spec.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from .base import AggregationKernel, KernelStats, validate_inputs
from .jit import JitKernelCache, KernelSpec

#: Default task size T (vertices per parallel task).
DEFAULT_TASK_SIZE = 64

#: Default prefetch distance D (vertices ahead).
DEFAULT_PREFETCH_DISTANCE = 4

#: Cache lines prefetched per feature vector (Section 4.1: "we empirically
#: choose to prefetch only the first two cache lines").
PREFETCH_LINES_PER_VECTOR = 2


class BasicKernel(AggregationKernel):
    """The Graphite ``basic`` aggregation of Algorithm 1."""

    def __init__(
        self,
        task_size: int = DEFAULT_TASK_SIZE,
        prefetch_distance: int = DEFAULT_PREFETCH_DISTANCE,
        jit_cache: Optional[JitKernelCache] = None,
    ) -> None:
        if task_size <= 0:
            raise ValueError(f"task_size must be positive, got {task_size}")
        if prefetch_distance < 0:
            raise ValueError("prefetch_distance must be >= 0")
        self.task_size = task_size
        self.prefetch_distance = prefetch_distance
        self.jit_cache = jit_cache or JitKernelCache()

    name = "basic"

    def aggregate(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, KernelStats]:
        """Aggregate all vertices, optionally in a custom processing order.

        ``order`` is the Section 4.4 hook: kernels walk ``order`` while the
        output stays indexed by original vertex id.
        """
        validate_inputs(graph, h)
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        if len(order) != n:
            raise ValueError("order must cover every vertex exactly once")

        compiled_before = self.jit_cache.compilations
        inner = self.jit_cache.specialize(
            graph, KernelSpec(feature_len=h.shape[1], aggregator=aggregator)
        )
        out = np.empty_like(h, dtype=np.float32)
        stats = KernelStats()
        stats.jit_compilations = self.jit_cache.compilations - compiled_before

        degs = graph.degrees()
        for task_start in range(0, n, self.task_size):
            stats.tasks += 1
            task_end = min(task_start + self.task_size, n)
            for pos in range(task_start, task_end):
                v = int(order[pos])
                out[v] = inner(h, v)
                stats.gathers += int(degs[v]) + 1
                # Prefetch the first lines of the vertex D ahead (Line 9).
                ahead = pos + self.prefetch_distance
                if self.prefetch_distance and ahead < n:
                    v_ahead = int(order[ahead])
                    stats.prefetches += (
                        (int(degs[v_ahead]) + 1) * PREFETCH_LINES_PER_VECTOR
                    )
        stats.flops = 2.0 * stats.gathers * h.shape[1]
        return out, stats
