"""Section 2.2: hidden-feature sparsity profile during GraphSAGE training.

The paper profiles a 20-epoch, 3-layer GraphSAGE on ogbn-products and
finds layer-2 inputs >60% sparse after ReLU (>80% with dropout) and
layer-3 inputs >90% sparse.  This regenerates that measurement on the
twin with the real trainer.
"""

import numpy as np
from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.bench.paper_values import SEC22_SPARSITY
from repro.graphs import load_dataset, synthetic_features
from repro.nn import Adam, Trainer, build_model


def _profile_sparsity(ctx):
    graph = ctx.graph("products")
    features = synthetic_features(graph, 64, seed=0)
    rng = np.random.default_rng(0)
    labels = rng.integers(0, 8, graph.num_vertices)
    model = build_model("sage", 64, 96, 8, num_layers=3, dropout=0.5, seed=0)
    trainer = Trainer(model, Adam(model, lr=0.01), profile_sparsity=True)
    trainer.fit(graph, features, labels, epochs=20)
    profile = trainer.history.sparsity

    exp = Experiment("sec2.2", "Hidden-feature sparsity, 3-layer SAGE training")
    exp.add("layer-2 input sparsity", profile.mean(1),
            SEC22_SPARSITY["layer2_dropout"], unit="frac")
    exp.add("layer-3 input sparsity", profile.mean(2),
            SEC22_SPARSITY["layer3"], unit="frac")
    return exp


def test_sec22_sparsity_profile(benchmark, ctx):
    exp = run_experiment(benchmark, _profile_sparsity, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # ReLU + 50% dropout: layer-2 inputs well over half sparse.
    assert values["layer-2 input sparsity"] > 0.6
    # Deeper layers are sparser still.
    assert values["layer-3 input sparsity"] >= values["layer-2 input sparsity"] - 0.05
