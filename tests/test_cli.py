"""Unit tests for the command-line interface."""

import logging

import pytest

from repro import __version__
from repro.cli import _configure_logging, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == 0.5

    def test_speedup_validates_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["speedup", "reddit"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_verbosity_counts(self):
        args = build_parser().parse_args(["-vv", "datasets"])
        assert args.verbose == 2 and args.quiet == 0
        args = build_parser().parse_args(["-q", "datasets"])
        assert args.quiet == 1

    def test_trace_flags_default_off(self):
        args = build_parser().parse_args(["train", "products"])
        assert args.trace is None and args.json is None

    @pytest.mark.parametrize("command", [
        ["train", "products"],
        ["bench-parallel", "products"],
        ["profile"],
    ])
    def test_engine_flag(self, command):
        assert build_parser().parse_args(command).engine is None
        args = build_parser().parse_args(command + ["--engine", "loop"])
        assert args.engine == "loop"
        args = build_parser().parse_args(command + ["--engine", "batched"])
        assert args.engine == "batched"

    def test_engine_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "products", "--engine", "turbo"])

    def test_train_observability_flags_default_off(self):
        args = build_parser().parse_args(["train", "products"])
        assert args.events is None
        assert args.health is False
        assert args.sample_proc is False

    def test_train_observability_flags_parse(self):
        args = build_parser().parse_args([
            "train", "products", "--events", "e.jsonl", "--health",
            "--sample-proc",
        ])
        assert args.events == "e.jsonl"
        assert args.health is True
        assert args.sample_proc is True

    def test_dashboard_defaults(self):
        args = build_parser().parse_args(["dashboard", "run.jsonl"])
        assert args.events == "run.jsonl"
        assert args.output == "run_dashboard.html"
        assert args.report is None and args.history is None


class TestLoggingConfig:
    @pytest.mark.parametrize("verbosity,level", [
        (2, logging.DEBUG), (1, logging.INFO),
        (0, logging.WARNING), (-1, logging.ERROR),
    ])
    def test_levels(self, verbosity, level):
        _configure_logging(verbosity)
        assert logging.getLogger("repro").level == level

    def test_handler_installed_once(self):
        _configure_logging(0)
        _configure_logging(0)
        assert len(logging.getLogger("repro").handlers) == 1


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "products" in out and "paper:" in out

    def test_speedup_inference(self, capsys):
        assert main(["speedup", "products", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "combined" in out
        assert "c-locality" not in out  # training-only variant

    def test_speedup_training_includes_locality(self, capsys):
        assert main(["speedup", "products", "--scale", "0.1", "--training"]) == 0
        assert "c-locality" in capsys.readouterr().out

    def test_characterize(self, capsys):
        assert main(["characterize", "products", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Retiring" in out and "FillBufFull" in out

    def test_train(self, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "16", "--hidden", "16",
        ])
        assert code == 0
        assert "sparsity" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["loop", "batched"])
    def test_train_with_engine(self, engine, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--engine", engine,
        ])
        assert code == 0
        assert f"{engine} engine" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--scale", "0.1"]) == 0
        assert "retiring" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_profile(self, capsys):
        code = main([
            "profile", "--vertices", "300", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "epoch" in out and "worker" in out
        assert "gathers" in out
        assert "repro_version" in out

    def test_profile_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        report = tmp_path / "r.json"
        code = main([
            "profile", "--vertices", "200", "--epochs", "1",
            "--features", "8", "--hidden", "8",
            "--trace", str(trace), "--json", str(report),
        ])
        assert code == 0
        assert trace.exists() and report.exists()

    def test_bench_parallel_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        code = main([
            "bench-parallel", "products", "--scale", "0.05",
            "--workers", "1", "2", "--trace", str(trace),
        ])
        assert code == 0
        assert trace.exists()
        assert "wrote" in capsys.readouterr().out

    def test_bench_parallel_train_flags_default_off(self):
        args = build_parser().parse_args(["bench-parallel", "products"])
        assert args.train_epochs == 0
        assert args.train_trials == 3
        assert args.train_task_size == 0
        assert args.history is None

    def test_bench_parallel_training_history(self, tmp_path, capsys):
        """The train-epoch bench times both backward configurations and
        appends a history row carrying the train.* metrics."""
        import json

        history = tmp_path / "hist.jsonl"
        code = main([
            "bench-parallel", "products", "--scale", "0.05",
            "--workers", "1", "--backend", "serial",
            "--train-epochs", "2", "--train-trials", "1",
            "--train-features", "4", "--train-hidden", "4",
            "--train-layers", "2",
            "--history", str(history), "--history-label", "cli-test",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "training (2 epochs, 2 layers, F=4)" in out
        assert "appended history entry 'cli-test'" in out
        (entry,) = [json.loads(line) for line in history.read_text().splitlines()]
        assert entry["label"] == "cli-test"
        metrics = entry["metrics"]
        assert metrics["train.epoch_oracle_backward_s"] > 0
        assert metrics["train.epoch_batched_s"] > 0
        assert metrics["train.backward_speedup_x"] == pytest.approx(
            metrics["train.epoch_oracle_backward_s"]
            / metrics["train.epoch_batched_s"]
        )
        # The sweep's span totals ride along in the same row, so the
        # perf gate can compare them like-for-like with earlier entries.
        assert "span.kernel.basic.total_s" in metrics


class TestShardedTraining:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["train", "products"])
        assert args.shards == 1
        assert args.partition == "greedy"
        assert args.delay_aggregation == []
        assert args.halo_refresh == 8

    def test_bench_sharded_parser_defaults(self):
        args = build_parser().parse_args(["bench-sharded"])
        assert args.dataset == "products"
        assert args.scale == 10.0
        assert args.shards == [1, 2, 4]
        assert args.backend == "process"

    def test_train_sharded_runs(self, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "8", "--hidden", "8", "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "partition: greedy x2" in out
        assert "halo" in out

    def test_train_sharded_rejects_dropout(self, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--shards", "2",
            "--dropout", "0.3",
        ])
        assert code == 2
        assert "dropout" in capsys.readouterr().err

    def test_train_sharded_json_report_has_shard_metrics(self, tmp_path):
        import json

        report = tmp_path / "sharded.json"
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "8", "--hidden", "8", "--shards", "2",
            "--backend", "process", "--json", str(report),
        ])
        assert code == 0
        doc = json.loads(report.read_text())
        for key in (
            "shard.workers",
            "shard.halo_bytes",
            "shard.epoch_time_s",
            "shard.setup_bytes_max",
            "shard.partition.cut_fraction",
        ):
            assert key in doc["metrics"], f"missing {key}"
        span_names = {s["name"] for s in doc["spans"]}
        assert "shard.partition" in span_names
        assert "shard.epoch" in span_names

    def test_bench_sharded_appends_gateable_history(self, tmp_path, capsys):
        import json

        history = tmp_path / "hist.jsonl"
        code = main([
            "bench-sharded", "products", "--scale", "0.05",
            "--shards", "1", "2", "--epochs", "1", "--backend", "serial",
            "--features", "8", "--hidden", "8",
            "--history", str(history),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        rows = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert len(rows) == 1
        assert rows[0]["label"] == "bench-parallel-sharded"
        metrics = rows[0]["metrics"]
        assert "sharded.shards1.epochs_per_s" in metrics
        assert "sharded.shards2.efficiency" in metrics
        assert "sharded.partition.cut_fraction" in metrics
        # The fresh label gates trivially: the row is a usable baseline.
        assert main([
            "compare", "--history", str(history),
            "--label", "bench-parallel-sharded",
        ]) == 0


class TestObservabilityCommands:
    def test_train_events_health_and_report(self, tmp_path, capsys):
        from repro.obs.events import validate_events_file

        events = tmp_path / "run.jsonl"
        report = tmp_path / "run.json"
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "16", "--hidden", "16",
            "--events", str(events), "--health", "--json", str(report),
        ])
        assert code == 0
        header, records = validate_events_file(str(events))
        assert header["run"]["command"] == "train"
        assert len(records) == 2
        assert records[0]["sparsity"]  # per-layer sparsity present
        assert records[0]["grad_norms"]
        import json

        doc = json.loads(report.read_text())
        assert len(doc["epoch_events"]) == 2
        assert doc["sparsity"]["per_layer"]
        out = capsys.readouterr().out
        assert "wrote 2 epoch events" in out
        assert "health: ok" in out

    def test_train_epoch_lines_via_logging(self, capsys, caplog):
        # Satellite: epoch lines reach the console through the logging
        # layer, not print() — stdout carries only the summaries.
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "1",
            "--features", "8", "--hidden", "8",
        ])
        assert code == 0
        assert "epoch   0" not in capsys.readouterr().out
        epoch_lines = [
            r.message for r in caplog.records
            if r.name == "repro.nn.training" and "epoch   0" in r.message
        ]
        assert len(epoch_lines) == 1
        # `repro train` shows the lines without -v: the CLI raises the
        # training logger to INFO.
        assert logging.getLogger("repro.nn.training").level == logging.INFO

    def test_train_sample_proc(self, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--sample-proc",
        ])
        assert code == 0
        assert "peak RSS" in capsys.readouterr().out

    def test_dashboard_end_to_end(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        html_path = tmp_path / "run.html"
        assert main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "8", "--hidden", "8", "--events", str(events),
        ]) == 0
        code = main(["dashboard", str(events), "-o", str(html_path)])
        assert code == 0
        html = html_path.read_text()
        assert "<script" not in html.lower()
        assert "https://" not in html
        assert "Training loss" in html

    def test_dashboard_rejects_invalid_events(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "events_header", "schema": 1}\n'
                       '{"kind": "epoch", "schema": 1}\n')
        code = main(["dashboard", str(bad), "-o", str(tmp_path / "x.html")])
        assert code == 2
        assert "missing field" in capsys.readouterr().err

    def test_dashboard_needs_an_input(self, capsys):
        assert main(["dashboard"]) == 2
        assert "need an events file" in capsys.readouterr().err


class TestLiveTelemetryCommands:
    def _train(self, tmp_path, *extra):
        events = tmp_path / "run.jsonl"
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "8", "--hidden", "8", "--events", str(events),
            *extra,
        ])
        return code, events

    def test_serve_metrics_scrapable_and_torn_down(self, tmp_path, capsys):
        # The endpoint announces its URL; after the command returns the
        # socket is closed and the serving thread is gone.
        import re
        import threading
        import urllib.request

        code, _ = self._train(tmp_path, "--serve-metrics", "0")
        assert code == 0
        out = capsys.readouterr().out
        match = re.search(r"serving live metrics on (http://\S+)", out)
        assert match, out
        assert "repro-metrics-server" not in [
            t.name for t in threading.enumerate()
        ]
        with pytest.raises(OSError):
            urllib.request.urlopen(match.group(1) + "/metrics", timeout=0.5)

    def test_train_rules_in_report_and_events(self, tmp_path, capsys):
        import json

        rules = tmp_path / "rules.txt"
        rules.write_text("loss_cap: train.loss < 1e-6\n")
        report = tmp_path / "run.json"
        code, events = self._train(
            tmp_path, "--rules", str(rules), "--json", str(report)
        )
        assert code == 0
        doc = json.loads(report.read_text())
        assert doc["alerts"]["ok"] is False
        assert doc["alerts"]["rules"][0]["name"] == "loss_cap"
        assert any(
            "slo:loss_cap" in e["health_issues"] for e in doc["epoch_events"]
        )
        snap = doc["metrics"]
        assert snap["alerts.fired"]["value"] >= 1.0
        assert "slo:" in capsys.readouterr().out

    def test_train_rejects_bad_rules_file(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("not a rule\n")
        code, _ = self._train(tmp_path, "--rules", str(rules))
        assert code == 2
        assert "rules.txt" in capsys.readouterr().err

    def test_top_once_renders_run(self, tmp_path, capsys):
        code, events = self._train(tmp_path)
        capsys.readouterr()
        assert main(["top", str(events), "--once"]) == 0
        out = capsys.readouterr().out
        assert "== repro top ==" in out
        assert "epoch    1" in out
        assert "loss" in out

    def test_top_accepts_run_directory(self, tmp_path, capsys):
        self._train(tmp_path)
        capsys.readouterr()
        assert main(["top", str(tmp_path)]) == 0
        assert "epoch    1" in capsys.readouterr().out

    def test_top_check_exit_codes(self, tmp_path, capsys):
        _, events = self._train(tmp_path)
        firing = tmp_path / "firing.txt"
        firing.write_text("loss_cap: train.loss < 1e-6\n")
        quiet = tmp_path / "quiet.txt"
        quiet.write_text("loss_cap: train.loss < 1e9\n")
        assert main(
            ["top", str(events), "--check", "--rules", str(quiet)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["top", str(events), "--check", "--rules", str(firing)]
        ) == 1
        err = capsys.readouterr().err
        assert "loss_cap" in err

    def test_top_check_requires_rules(self, tmp_path, capsys):
        _, events = self._train(tmp_path)
        capsys.readouterr()
        assert main(["top", str(events), "--check"]) == 2
        assert "--rules" in capsys.readouterr().err

    def test_top_nothing_to_watch(self, tmp_path, capsys):
        assert main(["top", str(tmp_path)]) == 2
        assert "nothing to watch" in capsys.readouterr().err

    def test_top_follow_bounded(self, tmp_path, capsys):
        _, events = self._train(tmp_path)
        capsys.readouterr()
        assert main([
            "top", str(events), "--follow", "--refresh-limit", "2",
            "--interval", "0",
        ]) == 0
        assert "== repro top ==" in capsys.readouterr().out

    def test_top_flags_default_off(self):
        args = build_parser().parse_args(["top", "x.jsonl"])
        assert args.follow is False and args.check is False
        assert args.metrics_url is None and args.rules is None
        assert args.interval == 1.0 and args.refresh_limit is None

    def test_serve_metrics_flag_parses_everywhere(self):
        for command in (
            ["train", "products"],
            ["bench-parallel", "products"],
            ["profile"],
        ):
            args = build_parser().parse_args(command + ["--serve-metrics", "0"])
            assert args.serve_metrics == 0
            args = build_parser().parse_args(command)
            assert args.serve_metrics is None


class TestProfilingCommands:
    def test_sampling_flags_parse(self):
        for command in (["train", "products"], ["profile"]):
            args = build_parser().parse_args(command)
            assert args.sampling is None and args.flame is None
            args = build_parser().parse_args(command + ["--sampling", "50"])
            assert args.sampling == 50.0

    def test_sampling_rejects_nonpositive_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--sampling", "0"])

    def test_profile_diff_parses_as_subcommand(self):
        args = build_parser().parse_args(["profile", "diff", "a.json", "b.json"])
        assert args.baseline == "a.json" and args.candidate == "b.json"
        assert args.threshold == 0.25 and args.min_seconds == 0.02

    def test_profile_sampling_prints_phase_table_and_flame(
        self, tmp_path, capsys
    ):
        flame = tmp_path / "flame.folded"
        report = tmp_path / "run.json"
        code = main([
            "profile", "--vertices", "300", "--epochs", "2",
            "--features", "16", "--hidden", "16", "--workers", "2",
            "--sampling", "400", "--flame", str(flame),
            "--json", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled profile" in out
        assert "phase" in out and "samples" in out
        assert flame.exists()
        import json as json_module

        doc = json_module.loads(report.read_text())
        assert doc["profile"]["hz"] == 400.0
        assert doc["meta"]["sampling_hz"] == 400.0
        assert "span_phase_seconds" in doc
        # Every flame line is "phase;frame;... count".
        for line in flame.read_text().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 0

    def test_train_flame_implies_sampling(self, tmp_path, capsys):
        flame = tmp_path / "train.folded"
        code = main([
            "train", "products", "--scale", "0.02", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--flame", str(flame),
        ])
        assert code == 0
        assert "sampled profile" in capsys.readouterr().out
        assert flame.exists()

    def test_profile_diff_exit_codes(self, tmp_path, capsys):
        import json as json_module
        import os

        data_dir = os.path.join(os.path.dirname(__file__), "data")
        baseline = os.path.join(data_dir, "profile_baseline.json")
        regressed = os.path.join(data_dir, "profile_regressed.json")
        assert main(["profile", "diff", baseline, baseline]) == 0
        assert "verdict: OK" in capsys.readouterr().out
        assert main(["profile", "diff", baseline, regressed]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # A document without a sampled profile is a usage error (2).
        bare = tmp_path / "noprofile.json"
        bare.write_text(json_module.dumps({"schema": 1, "spans": []}))
        assert main(["profile", "diff", baseline, str(bare)]) == 2
        assert "no sampled profile" in capsys.readouterr().err

    def test_profile_diff_missing_file_is_usage_error(self, capsys):
        assert main(["profile", "diff", "/nonexistent/a.json", "/nonexistent/b.json"]) == 2
        assert "profile diff:" in capsys.readouterr().err
