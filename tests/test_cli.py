"""Unit tests for the command-line interface."""

import logging

import pytest

from repro import __version__
from repro.cli import _configure_logging, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == 0.5

    def test_speedup_validates_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["speedup", "reddit"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_verbosity_counts(self):
        args = build_parser().parse_args(["-vv", "datasets"])
        assert args.verbose == 2 and args.quiet == 0
        args = build_parser().parse_args(["-q", "datasets"])
        assert args.quiet == 1

    def test_trace_flags_default_off(self):
        args = build_parser().parse_args(["train", "products"])
        assert args.trace is None and args.json is None

    @pytest.mark.parametrize("command", [
        ["train", "products"],
        ["bench-parallel", "products"],
        ["profile"],
    ])
    def test_engine_flag(self, command):
        assert build_parser().parse_args(command).engine is None
        args = build_parser().parse_args(command + ["--engine", "loop"])
        assert args.engine == "loop"
        args = build_parser().parse_args(command + ["--engine", "batched"])
        assert args.engine == "batched"

    def test_engine_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "products", "--engine", "turbo"])


class TestLoggingConfig:
    @pytest.mark.parametrize("verbosity,level", [
        (2, logging.DEBUG), (1, logging.INFO),
        (0, logging.WARNING), (-1, logging.ERROR),
    ])
    def test_levels(self, verbosity, level):
        _configure_logging(verbosity)
        assert logging.getLogger("repro").level == level

    def test_handler_installed_once(self):
        _configure_logging(0)
        _configure_logging(0)
        assert len(logging.getLogger("repro").handlers) == 1


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "products" in out and "paper:" in out

    def test_speedup_inference(self, capsys):
        assert main(["speedup", "products", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "combined" in out
        assert "c-locality" not in out  # training-only variant

    def test_speedup_training_includes_locality(self, capsys):
        assert main(["speedup", "products", "--scale", "0.1", "--training"]) == 0
        assert "c-locality" in capsys.readouterr().out

    def test_characterize(self, capsys):
        assert main(["characterize", "products", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Retiring" in out and "FillBufFull" in out

    def test_train(self, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "16", "--hidden", "16",
        ])
        assert code == 0
        assert "sparsity" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["loop", "batched"])
    def test_train_with_engine(self, engine, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--engine", engine,
        ])
        assert code == 0
        assert f"{engine} engine" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--scale", "0.1"]) == 0
        assert "retiring" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_profile(self, capsys):
        code = main([
            "profile", "--vertices", "300", "--epochs", "1",
            "--features", "8", "--hidden", "8", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "epoch" in out and "worker" in out
        assert "gathers" in out
        assert "repro_version" in out

    def test_profile_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        report = tmp_path / "r.json"
        code = main([
            "profile", "--vertices", "200", "--epochs", "1",
            "--features", "8", "--hidden", "8",
            "--trace", str(trace), "--json", str(report),
        ])
        assert code == 0
        assert trace.exists() and report.exists()

    def test_bench_parallel_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        code = main([
            "bench-parallel", "products", "--scale", "0.05",
            "--workers", "1", "2", "--trace", str(trace),
        ])
        assert code == 0
        assert trace.exists()
        assert "wrote" in capsys.readouterr().out
