"""Chunk planning for Algorithm 1's output-parallel loop.

The paper's ``basic`` kernel output-parallelizes over chunks of ``T``
vertices: each task owns a disjoint slice of the output matrix, so the
workers need no synchronization (Section 4.1).  This module turns a
graph (plus an optional Section 4.4 processing order) into that chunk
plan, weighs each chunk by its gather work, and assigns chunks to
workers with the same deterministic list scheduler that
:func:`repro.graphs.partition.dynamic_schedule` uses to model OpenMP's
dynamic scheduler: the next chunk always goes to the least-loaded
worker.  Because the assignment is computed up front from the chunk
costs, two runs with the same inputs produce the same per-worker chunk
lists — parallel execution stays reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph


@dataclass(frozen=True)
class Chunk:
    """One T-vertex task: a half-open position range over the order."""

    index: int
    start: int
    stop: int
    cost: float  # gather work: sum of (degree + 1) over the chunk

    @property
    def num_vertices(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ChunkPlan:
    """The full task decomposition of one kernel invocation."""

    chunks: Tuple[Chunk, ...]
    task_size: int
    num_vertices: int

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_cost(self) -> float:
        return sum(chunk.cost for chunk in self.chunks)


def build_chunk_plan(
    graph: CSRGraph,
    task_size: int,
    order: Optional[np.ndarray] = None,
) -> ChunkPlan:
    """Split ``[0, num_vertices)`` into T-vertex chunks with gather costs.

    ``order`` is the processing order the kernel walks; costs follow the
    *ordered* degrees so the plan prices exactly the vertices each chunk
    will touch.
    """
    if task_size <= 0:
        raise ValueError(f"task_size must be positive, got {task_size}")
    n = graph.num_vertices
    degs = graph.degrees()
    if order is not None:
        if len(order) != n:
            raise ValueError("order must cover every vertex exactly once")
        degs = degs[order]
    work = (degs + 1).astype(np.float64)
    chunks = []
    for index, start in enumerate(range(0, n, task_size)):
        stop = min(start + task_size, n)
        chunks.append(
            Chunk(index=index, start=start, stop=stop, cost=float(work[start:stop].sum()))
        )
    return ChunkPlan(chunks=tuple(chunks), task_size=task_size, num_vertices=n)


def assign_chunks(plan: ChunkPlan, workers: int) -> List[List[Chunk]]:
    """Deterministic dynamic assignment of chunks to ``workers`` workers.

    Models OpenMP's dynamic scheduler as a list scheduler (the same model
    as :func:`repro.graphs.partition.dynamic_schedule`): chunks are
    handed out in index order, each to the worker with the least
    accumulated cost, ties broken by the lowest worker id.  The result is
    a load-balanced partition that is identical run-to-run.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    load = np.zeros(workers, dtype=np.float64)
    assignment: List[List[Chunk]] = [[] for _ in range(workers)]
    for chunk in plan.chunks:
        worker = int(np.argmin(load))  # argmin takes the first (lowest id) tie
        assignment[worker].append(chunk)
        load[worker] += chunk.cost
    return assignment


def assignment_imbalance(assignment: List[List[Chunk]]) -> float:
    """makespan / mean cost of an assignment — 1.0 is perfect balance."""
    costs = np.array(
        [sum(chunk.cost for chunk in chunks) for chunks in assignment], dtype=np.float64
    )
    if len(costs) == 0 or costs.mean() == 0:
        return 1.0
    return float(costs.max() / costs.mean())
