"""Background resource sampler: RSS, CPU utilization, thread count.

Memory-efficiency claims are only auditable when the run records what
the process actually consumed — peak RSS rising with the dataset twin,
CPU utilization collapsing when the run goes memory-bound.  The
:class:`ResourceSampler` runs a daemon thread that samples the process
every ``interval_s`` and publishes into the active metrics registry:

* ``proc.rss_bytes`` (gauge, last sample) and ``proc.rss_bytes.samples``
  (histogram — min/mean/max/percentiles over the run);
* ``proc.cpu_percent`` (gauge) and ``proc.cpu_percent.samples``
  (histogram) — process CPU time *delta between consecutive samples*
  over the wall delta, so 400 means four saturated cores right now;
* ``proc.cpu_seconds`` (gauge) — cumulative user+system CPU time, the
  raw monotone quantity the percent is differentiated from;
* ``proc.num_threads`` (gauge);
* ``proc.samples`` (counter).

No third-party dependency: RSS and thread count come from
``/proc/self`` where it exists (Linux) with a ``resource.getrusage``
fallback, CPU time from ``os.times()``.

Like the tracer and registry, the sampler is **zero-cost when
disabled**: :data:`NULL_SAMPLER` answers ``start``/``stop``/``sample``
with no-ops and never spawns a thread.  Usable as a context manager.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from .metrics import MetricsRegistry

#: Default sampling period.  Coarse enough that a sample costs a few
#: /proc reads per tick, fine enough to catch epoch-scale phases.
DEFAULT_INTERVAL_S = 0.05

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_bytes() -> float:
    """Resident set size of this process, in bytes (0.0 if unknown)."""
    try:
        with open("/proc/self/statm") as handle:
            return float(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        # ru_maxrss is the *peak*, in KiB on Linux — a weaker signal but
        # better than nothing on platforms without /proc.
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except (ImportError, OSError, ValueError):
        return 0.0


def _num_threads() -> float:
    """OS-level thread count (falls back to Python's view)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("Threads:"):
                    return float(line.split()[1])
    except (OSError, IndexError, ValueError):
        pass
    return float(threading.active_count())


def _cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process."""
    times = os.times()
    return times.user + times.system


class ResourceSampler:
    """Daemon-thread process sampler publishing ``proc.*`` metrics."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.registry = registry
        self.interval_s = interval_s
        self.samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_cpu = _cpu_seconds()
        self._last_wall = time.perf_counter()
        # The first sample after construction/start has no meaningful
        # interval to differentiate over — its cpu_percent would be the
        # delta against a near-zero (or arbitrarily stale) baseline.
        # It primes the baseline instead and publishes no percent.
        self._primed = False

    # ------------------------------------------------------------------
    def sample_once(self) -> Dict[str, float]:
        """Take one sample, publish it, and return the raw values.

        The first sample after init/:meth:`start` omits ``cpu_percent``
        (both from the returned dict and the registry): there is no
        prior *sample* to delta against, so the value would be garbage
        noise amplified by a tiny wall interval.
        """
        now = time.perf_counter()
        cpu = _cpu_seconds()
        wall_delta = now - self._last_wall
        cpu_percent = (
            100.0 * (cpu - self._last_cpu) / wall_delta if wall_delta > 0 else 0.0
        )
        primed = self._primed
        self._primed = True
        self._last_cpu = cpu
        self._last_wall = now
        sample = {
            "rss_bytes": _rss_bytes(),
            "cpu_seconds": cpu,
            "num_threads": _num_threads(),
        }
        if primed:
            sample["cpu_percent"] = cpu_percent
        registry = self.registry
        registry.set_gauge("proc.rss_bytes", sample["rss_bytes"])
        registry.set_gauge("proc.cpu_seconds", sample["cpu_seconds"])
        registry.set_gauge("proc.num_threads", sample["num_threads"])
        registry.observe("proc.rss_bytes.samples", sample["rss_bytes"])
        if primed:
            registry.set_gauge("proc.cpu_percent", cpu_percent)
            registry.observe("proc.cpu_percent.samples", cpu_percent)
        registry.inc("proc.samples")
        self.samples += 1
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    # ------------------------------------------------------------------
    def start(self) -> "ResourceSampler":
        """Spawn the daemon sampling thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._last_cpu = _cpu_seconds()
            self._last_wall = time.perf_counter()
            self._primed = False
            self._thread = threading.Thread(
                target=self._run, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (the run's close)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
            self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class NullResourceSampler:
    """Disabled sampler: no thread, no samples, no metrics."""

    enabled = False
    samples = 0

    def sample_once(self) -> Dict[str, float]:
        return {}

    def start(self) -> "NullResourceSampler":
        return self

    def stop(self) -> None:
        pass

    def __enter__(self) -> "NullResourceSampler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SAMPLER = NullResourceSampler()
