"""Unit tests for the fused kernel's structural properties (Section 4.2)."""

import numpy as np
import pytest

from repro.graphs import synthetic_features
from repro.kernels import BasicKernel, FusedKernel, UpdateParams


def _params(f_in, f_out):
    rng = np.random.default_rng(0)
    return UpdateParams(
        weight=(rng.standard_normal((f_in, f_out)) * 0.1).astype(np.float32),
        bias=np.zeros(f_out, dtype=np.float32),
    )


class TestFootprint:
    def test_inference_buffer_is_one_block(self, small_products):
        """Figure 5c: inference needs only a B-row reusable buffer."""
        kernel = FusedKernel(block_size=16)
        h = synthetic_features(small_products, 32, seed=0)
        _, _, stats = kernel.run_layer(
            small_products, h, _params(32, 8), keep_aggregation=False
        )
        assert stats.peak_buffer_bytes == 16 * 32 * 4

    def test_training_keeps_full_matrix(self, small_products):
        """Figure 5b: training retains all of a for backward."""
        kernel = FusedKernel(block_size=16)
        h = synthetic_features(small_products, 32, seed=0)
        _, a, stats = kernel.run_layer(
            small_products, h, _params(32, 8), keep_aggregation=True
        )
        assert a is not None
        assert stats.peak_buffer_bytes == a.nbytes
        assert a.nbytes == small_products.num_vertices * 32 * 4

    def test_inference_footprint_much_smaller(self, small_products):
        kernel = FusedKernel(block_size=8)
        h = synthetic_features(small_products, 64, seed=0)
        _, _, inf = kernel.run_layer(
            small_products, h, _params(64, 8), keep_aggregation=False
        )
        _, _, train = kernel.run_layer(
            small_products, h, _params(64, 8), keep_aggregation=True
        )
        assert inf.peak_buffer_bytes * 10 < train.peak_buffer_bytes


class TestBlocking:
    @pytest.mark.parametrize("block_size", [1, 3, 16, 1000])
    def test_any_block_size_is_correct(self, small_products, block_size):
        h = synthetic_features(small_products, 12, seed=1)
        params = _params(12, 6)
        reference, _, _ = FusedKernel(block_size=32).run_layer(
            small_products, h, params
        )
        out, _, _ = FusedKernel(block_size=block_size).run_layer(
            small_products, h, params
        )
        np.testing.assert_allclose(out, reference, atol=1e-5)

    def test_block_count(self, small_products):
        kernel = FusedKernel(block_size=10)
        h = synthetic_features(small_products, 8, seed=2)
        _, _, stats = kernel.run_layer(small_products, h, _params(8, 4))
        n = small_products.num_vertices
        assert stats.blocks == (n + 9) // 10

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FusedKernel(block_size=0)
        with pytest.raises(ValueError):
            FusedKernel(blocks_per_task=0)

    def test_weight_shape_checked(self, small_products):
        kernel = FusedKernel()
        h = synthetic_features(small_products, 8, seed=3)
        with pytest.raises(ValueError):
            kernel.run_layer(small_products, h, _params(16, 4))


class TestPrefetch:
    def test_prefetch_counts_two_lines_per_vector(self, small_products):
        """Section 4.1: only the first two cache lines are prefetched."""
        h = synthetic_features(small_products, 16, seed=4)
        kernel = BasicKernel(prefetch_distance=4)
        _, stats = kernel.aggregate(small_products, h)
        gathers_ahead = sum(
            small_products.degree(v) + 1
            for v in range(4, small_products.num_vertices)
        )
        assert stats.prefetches == gathers_ahead * 2

    def test_zero_distance_disables_prefetch(self, small_products):
        h = synthetic_features(small_products, 16, seed=4)
        _, stats = BasicKernel(prefetch_distance=0).aggregate(small_products, h)
        assert stats.prefetches == 0
