"""CPU-GPU sampled-training substrate for the Figure 2 motivation."""

from .gpu_model import (
    GPU_FLOPS,
    GPU_US_PER_BATCH,
    GpuEpochBreakdown,
    PCIE_BYTES_PER_S,
    SAMPLING_NS_PER_EDGE,
    SAMPLING_US_PER_BATCH,
    epoch_breakdown,
)
from .sampler import (
    EpochSamplingStats,
    LayerBlock,
    MiniBatch,
    iterate_minibatches,
    sample_blocks,
    sample_neighbors,
)

__all__ = [
    "GPU_FLOPS",
    "GPU_US_PER_BATCH",
    "GpuEpochBreakdown",
    "PCIE_BYTES_PER_S",
    "SAMPLING_NS_PER_EDGE",
    "SAMPLING_US_PER_BATCH",
    "epoch_breakdown",
    "EpochSamplingStats",
    "LayerBlock",
    "MiniBatch",
    "iterate_minibatches",
    "sample_blocks",
    "sample_neighbors",
]
