"""Benchmark harness and per-artifact experiment definitions."""

from .harness import Experiment, ResultRow, geometric_mean, render_all

__all__ = ["Experiment", "ResultRow", "geometric_mean", "render_all"]
