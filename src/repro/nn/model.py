"""Multi-layer GNN models — GCN and GraphSAGE stacks.

A K-layer model makes every vertex's output a function of its K-hop
neighborhood (Section 2.1).  The paper evaluates 2- and 3-layer GCN and
GraphSAGE models with hidden width 256; :func:`build_model` constructs
either with arbitrary widths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import AggregationKernel
from ..obs import get_tracer
from .layers import GNNLayer, LayerCache, LayerGrads


class GNNModel:
    """A stack of :class:`GNNLayer` with full forward/backward."""

    def __init__(self, layers: Sequence[GNNLayer]) -> None:
        if not layers:
            raise ValueError("model needs at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer width mismatch: {prev.out_features} -> {nxt.in_features}"
                )
        self.layers: List[GNNLayer] = list(layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    def forward(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        training: bool = False,
        kernel: Optional[AggregationKernel] = None,
    ) -> Tuple[np.ndarray, List[LayerCache]]:
        """Full forward pass; returns logits and per-layer caches.

        ``kernel`` routes every layer's aggregation through an optimized
        execution strategy (possibly multi-worker) instead of the SpMM
        oracle.
        """
        h = features
        caches: List[LayerCache] = []
        tracer = get_tracer()
        for idx, layer in enumerate(self.layers):
            with tracer.span(
                "layer",
                index=idx,
                in_features=layer.in_features,
                out_features=layer.out_features,
                aggregator=layer.aggregator,
            ):
                h, cache = layer.forward(graph, h, training=training, kernel=kernel)
            caches.append(cache)
        return h, caches

    def backward(
        self,
        graph: CSRGraph,
        grad_logits: np.ndarray,
        caches: List[LayerCache],
        kernel: Optional[AggregationKernel] = None,
    ) -> List[LayerGrads]:
        """Full backward pass; returns grads aligned with ``self.layers``.

        ``kernel`` routes every layer's aggregation backward
        (``Âᵀ grad_a``) through an optimized execution strategy when it
        provides ``aggregate_backward``, mirroring ``forward``.
        """
        if len(caches) != self.num_layers:
            raise ValueError("cache count does not match layer count")
        grads: List[Optional[LayerGrads]] = [None] * self.num_layers
        grad = grad_logits
        tracer = get_tracer()
        for idx in range(self.num_layers - 1, -1, -1):
            with tracer.span(
                "layer.backward",
                index=idx,
                in_features=self.layers[idx].in_features,
                out_features=self.layers[idx].out_features,
                aggregator=self.layers[idx].aggregator,
            ):
                layer_grads = self.layers[idx].backward(
                    graph, grad, caches[idx], kernel=kernel
                )
            grads[idx] = layer_grads
            grad = layer_grads.h_in
        return grads  # type: ignore[return-value]

    def predict(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        kernel: Optional[AggregationKernel] = None,
    ) -> np.ndarray:
        """Inference-mode logits (no dropout, caches discarded)."""
        logits, _ = self.forward(graph, features, training=False, kernel=kernel)
        return logits

    # ------------------------------------------------------------------
    # Norm capture for the training-run observability layer (obs.events /
    # obs.health): a NaN/Inf anywhere in a tensor makes its L2 norm
    # non-finite, so the norms double as a cheap corruption detector.
    @staticmethod
    def grad_norms(grads: Sequence["LayerGrads"]) -> Dict[str, Dict[str, float]]:
        """Per-layer L2 norms of one backward pass's gradients.

        Keys are layer indices as strings (the JSON event-log layout).
        """
        return {
            str(idx): {
                "weight": float(np.linalg.norm(grad.weight)),
                "bias": float(np.linalg.norm(grad.bias)),
                "h_in": float(np.linalg.norm(grad.h_in)),
            }
            for idx, grad in enumerate(grads)
        }

    def weight_norms(self) -> Dict[str, Dict[str, float]]:
        """Per-layer L2 norms of the current parameters."""
        return {
            str(idx): {
                "weight": float(np.linalg.norm(layer.weight)),
                "bias": float(np.linalg.norm(layer.bias)),
            }
            for idx, layer in enumerate(self.layers)
        }

    # ------------------------------------------------------------------
    def parameters(self):
        """Flat list of (layer_idx, name, array) for optimizers."""
        out = []
        for idx, layer in enumerate(self.layers):
            for name, arr in layer.parameters().items():
                out.append((idx, name, arr))
        return out

    def hidden_widths(self) -> List[int]:
        return [layer.out_features for layer in self.layers]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"GNNModel([{inner}])"


def build_model(
    model_type: str,
    in_features: int,
    hidden_features: int,
    num_classes: int,
    num_layers: int = 2,
    dropout: float = 0.0,
    seed: int = 0,
) -> GNNModel:
    """Construct a GCN or GraphSAGE model like the paper's (Section 6).

    All layers but the last apply ReLU; hidden layers share the width.
    """
    if model_type not in ("gcn", "sage"):
        raise ValueError(f"model_type must be 'gcn' or 'sage', got {model_type!r}")
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    aggregator = "gcn" if model_type == "gcn" else "mean"
    widths = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
    layers = []
    for k in range(num_layers):
        layers.append(
            GNNLayer(
                widths[k],
                widths[k + 1],
                aggregator=aggregator,
                activation=(k < num_layers - 1),
                dropout=dropout if k > 0 else 0.0,
                seed=seed + k,
            )
        )
    return GNNModel(layers)
