"""Per-chunk workloads: the kernel bodies the executor dispatches.

A :class:`ChunkWorkload` is a picklable description of what one chunk of
Algorithm 1/2's parallel loop computes.  The split mirrors the paper's
execution model:

* the *plan* (``repro.parallel.plan``) decides which vertices each task
  owns and which worker runs it;
* the *workload* computes one chunk's disjoint output rows and counts
  the work in a private :class:`KernelStats`;
* the *executor* (``repro.parallel.executor``) runs chunks concurrently
  and merges the per-worker stats deterministically.

Each workload executes on one of two engines:

* ``loop`` — one specialized closure call per vertex (the original,
  interpreter-bound execution);
* ``batched`` — one batched segment-reduce call per chunk (or per fused
  block), Alg. 1's vectorized gather-reduce with no Python-level
  per-vertex loop.

Both engines produce the same :class:`KernelStats` counters exactly and
agree on the outputs to fp32 reduction-order tolerance (the engine
differential suite enforces it).

Workloads must be picklable so the ``process`` backend can ship them to
worker processes.  Runtime-only state (JIT closures, factor arrays) is
kept in attributes prefixed ``_rt_`` which are stripped from the pickled
state; each worker rebuilds them once via :meth:`ChunkWorkload.prepare`,
matching the paper's claim that specialization cost is amortized because
"the code is tailored to the model but not the data".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import ENGINES, KernelStats, UpdateParams
from ..kernels.jit import BatchedKernel, InnerKernel, JitKernelCache, KernelSpec
from .plan import Chunk

#: One chunk's output: name -> (vertex ids, rows to write at those ids).
ChunkWrites = Dict[str, Tuple[np.ndarray, np.ndarray]]


class ChunkWorkload:
    """Base class: the per-chunk body of one kernel invocation."""

    def output_specs(self) -> Dict[str, Tuple[Tuple[int, ...], np.dtype]]:
        """Name -> (shape, dtype) of every output array to allocate."""
        raise NotImplementedError

    def prepare(self) -> None:
        """Build runtime-only state; called once per worker."""

    def run_chunk(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        """Compute one chunk's disjoint output rows and its work counters."""
        raise NotImplementedError

    def describe(self) -> Dict[str, str]:
        """Span attributes identifying this workload on worker spans."""
        desc = {"workload": type(self).__name__}
        for key in ("aggregator", "engine"):
            value = getattr(self, key, None)
            if value is not None:
                desc[key] = value
        return desc

    def __getstate__(self):
        # Runtime state (closures, factor arrays) is rebuilt per worker.
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_rt_")}


class _AggregationChunkBase(ChunkWorkload):
    """Shared engine plumbing of the two aggregation workloads."""

    graph: CSRGraph
    h: np.ndarray
    aggregator: str
    engine: str

    def attach_inner(self, inner: InnerKernel) -> None:
        """Reuse a loop closure the caller already JIT-specialized."""
        self._rt_inner = inner

    def attach_batched(self, batched: BatchedKernel) -> None:
        """Reuse a batched closure the caller already JIT-specialized."""
        self._rt_batched = batched

    def prepare(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        spec = KernelSpec(feature_len=self.h.shape[1], aggregator=self.aggregator)
        if self.engine == "batched":
            if getattr(self, "_rt_batched", None) is None:
                self._rt_batched = JitKernelCache().specialize_batched(
                    self.graph, spec
                )
        elif getattr(self, "_rt_inner", None) is None:
            self._rt_inner = JitKernelCache().specialize(self.graph, spec)
        self._rt_degs = self.graph.degrees()

    # ------------------------------------------------------------------
    def _count_prefetches(
        self, stats: KernelStats, start: int, stop: int
    ) -> None:
        """Vectorized Alg. 1 line 9 accounting, identical to the loop's."""
        if not self.prefetch_distance:
            return
        # The look-ahead positions are the contiguous range [start+D,
        # min(stop+D, n)) — slice the order directly instead of building
        # and filtering an index array per chunk.
        n = len(self.order)
        lo = start + self.prefetch_distance
        hi = min(stop + self.prefetch_distance, n)
        if lo < hi:
            degs = self._rt_degs
            stats.prefetches += int(
                (degs[self.order[lo:hi]] + 1).sum()
            ) * self.prefetch_lines

    def _count_gathers(self, stats: KernelStats, verts: np.ndarray) -> None:
        gathered = int((self._rt_degs[verts] + 1).sum())
        stats.gathers += gathered
        if self.count_decompressed:
            stats.decompressed_rows += gathered


class BasicAggregationWorkload(_AggregationChunkBase):
    """Algorithm 1's chunk body: gather-reduce ``T`` vertices with prefetch.

    Also serves the compressed kernel (Section 4.3): with
    ``count_decompressed`` set, ``h`` is the decompress-on-gather feature
    matrix and every gathered row is counted as one mask expansion.
    """

    def __init__(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str,
        order: np.ndarray,
        prefetch_distance: int = 0,
        prefetch_lines: int = 2,
        count_decompressed: bool = False,
        engine: str = "loop",
    ) -> None:
        self.graph = graph
        self.h = h
        self.aggregator = aggregator
        self.order = order
        self.prefetch_distance = prefetch_distance
        self.prefetch_lines = prefetch_lines
        self.count_decompressed = count_decompressed
        self.engine = engine

    def output_specs(self):
        # Preserve the input dtype: fp32 in normal runs, fp64 when a
        # gradcheck drives the whole pipeline at double precision.
        return {"out": (self.h.shape, np.result_type(self.h.dtype, np.float32))}

    def run_chunk(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        if self.engine == "batched":
            return self._run_chunk_batched(chunk)
        inner = self._rt_inner
        degs = self._rt_degs
        order = self.order
        n = len(order)
        rows = np.empty(
            (chunk.num_vertices, self.h.shape[1]),
            dtype=np.result_type(self.h.dtype, np.float32),
        )
        stats = KernelStats(tasks=1)
        for m, pos in enumerate(range(chunk.start, chunk.stop)):
            v = int(order[pos])
            rows[m] = inner(self.h, v)
            stats.gathers += int(degs[v]) + 1
            if self.count_decompressed:
                stats.decompressed_rows += int(degs[v]) + 1
            # Prefetch the first lines of the vertex D ahead (Alg. 1 line 9).
            ahead = pos + self.prefetch_distance
            if self.prefetch_distance and ahead < n:
                v_ahead = int(order[ahead])
                stats.prefetches += (int(degs[v_ahead]) + 1) * self.prefetch_lines
        return {"out": (order[chunk.start : chunk.stop], rows)}, stats

    def _run_chunk_batched(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        """The whole chunk in one segment-reduce call, same counters."""
        verts = self.order[chunk.start : chunk.stop]
        stats = KernelStats(tasks=1)
        rows = self._rt_batched(self.h, verts)
        self._count_gathers(stats, verts)
        self._count_prefetches(stats, chunk.start, chunk.stop)
        return {"out": (verts, rows)}, stats


class BackwardAggregationWorkload(BasicAggregationWorkload):
    """The backward twin of Algorithm 1: chunked rows of ``Âᵀ grad_a``.

    ``h`` holds the upstream gradient ``grad_a``; each chunk writes the
    disjoint ``grad_h`` rows it owns.  The chunk bodies are inherited
    unchanged — only :meth:`prepare` differs, binding the *backward* JIT
    specializations (closures over the graph's cached CSC view) and the
    transposed degrees the counters and prefetch accounting walk.  The
    two engines therefore keep the exact stats-parity and bitwise
    properties of the forward pass.
    """

    def prepare(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        spec = KernelSpec(feature_len=self.h.shape[1], aggregator=self.aggregator)
        if self.engine == "batched":
            if getattr(self, "_rt_batched", None) is None:
                self._rt_batched = JitKernelCache().specialize_batched_backward(
                    self.graph, spec
                )
        elif getattr(self, "_rt_inner", None) is None:
            self._rt_inner = JitKernelCache().specialize_backward(self.graph, spec)
        # Work accounting follows the transposed adjacency: a backward
        # "gather" reads one incoming-gradient row per out-edge + self.
        # The cached transpose memoizes its degree array, so repeated
        # prepare() calls (one per epoch per layer) cost nothing.
        self._rt_degs = self.graph.transpose().degrees()


class FusedLayerWorkload(_AggregationChunkBase):
    """Algorithm 2's task body: aggregate+update ``T`` blocks of ``B`` rows.

    Each chunk spans ``block_size * blocks_per_task`` vertices; blocks are
    aggregated into a scratch buffer and immediately updated with the
    small GEMM, so the ``a`` block never leaves cache.  With
    ``count_decompressed`` set this is the paper's ``combined`` variant.
    The ``batched`` engine aggregates each block in one segment-reduce
    call, preserving the block granularity (and ``stats.blocks``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str,
        order: np.ndarray,
        block_size: int,
        keep_aggregation: bool = False,
        prefetch_distance: int = 0,
        prefetch_lines: int = 2,
        count_decompressed: bool = False,
        engine: str = "loop",
    ) -> None:
        self.graph = graph
        self.h = h
        self.params = params
        self.aggregator = aggregator
        self.order = order
        self.block_size = block_size
        self.keep_aggregation = keep_aggregation
        self.prefetch_distance = prefetch_distance
        self.prefetch_lines = prefetch_lines
        self.count_decompressed = count_decompressed
        self.engine = engine

    def output_specs(self):
        n, f_in = self.h.shape
        f_out = self.params.weight.shape[1]
        specs = {"h_out": ((n, f_out), np.dtype(np.float32))}
        if self.keep_aggregation:
            specs["a"] = ((n, f_in), np.dtype(np.float32))
        return specs

    def run_chunk(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        if self.engine == "batched":
            return self._run_chunk_batched(chunk)
        inner = self._rt_inner
        degs = self._rt_degs
        order = self.order
        n = len(order)
        f_in = self.h.shape[1]
        stats = KernelStats(tasks=1)
        h_rows = np.empty(
            (chunk.num_vertices, self.params.weight.shape[1]), dtype=np.float32
        )
        a_rows = (
            np.empty((chunk.num_vertices, f_in), dtype=np.float32)
            if self.keep_aggregation
            else None
        )
        for block_start in range(chunk.start, chunk.stop, self.block_size):
            stats.blocks += 1
            block_end = min(block_start + self.block_size, chunk.stop)
            count = block_end - block_start
            # Aggregation phase of the block (Alg. 2 lines 3-7).
            scratch = np.empty((count, f_in), dtype=np.float32)
            for m in range(count):
                v = int(order[block_start + m])
                scratch[m] = inner(self.h, v)
                stats.gathers += int(degs[v]) + 1
                if self.count_decompressed:
                    stats.decompressed_rows += int(degs[v]) + 1
                ahead = block_start + m + self.prefetch_distance
                if self.prefetch_distance and ahead < n:
                    v_ahead = int(order[ahead])
                    stats.prefetches += (int(degs[v_ahead]) + 1) * self.prefetch_lines
            local = block_start - chunk.start
            if a_rows is not None:
                a_rows[local : local + count] = scratch
            # Update phase of the block (Alg. 2 lines 8-10): small GEMM.
            h_rows[local : local + count] = self.params.apply(scratch[:count])
        idx = order[chunk.start : chunk.stop]
        writes: ChunkWrites = {"h_out": (idx, h_rows)}
        if a_rows is not None:
            writes["a"] = (idx, a_rows)
        return writes, stats

    def _run_chunk_batched(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        """Per-block segment-reduce + GEMM, same counters as the loop."""
        batched = self._rt_batched
        order = self.order
        f_in = self.h.shape[1]
        stats = KernelStats(tasks=1)
        h_rows = np.empty(
            (chunk.num_vertices, self.params.weight.shape[1]), dtype=np.float32
        )
        a_rows = (
            np.empty((chunk.num_vertices, f_in), dtype=np.float32)
            if self.keep_aggregation
            else None
        )
        for block_start in range(chunk.start, chunk.stop, self.block_size):
            stats.blocks += 1
            block_end = min(block_start + self.block_size, chunk.stop)
            verts = order[block_start:block_end]
            # Aggregation phase of the block (Alg. 2 lines 3-7), batched.
            scratch = batched(self.h, verts)
            self._count_gathers(stats, verts)
            self._count_prefetches(stats, block_start, block_end)
            local = block_start - chunk.start
            if a_rows is not None:
                a_rows[local : local + len(verts)] = scratch
            # Update phase of the block (Alg. 2 lines 8-10): small GEMM.
            h_rows[local : local + len(verts)] = self.params.apply(scratch)
        idx = order[chunk.start : chunk.stop]
        writes: ChunkWrites = {"h_out": (idx, h_rows)}
        if a_rows is not None:
            writes["a"] = (idx, a_rows)
        return writes, stats
