"""Feature-tensor utilities: mask compression and sparsity tracking."""

from .compression import (
    MASK_BITS_PER_ELEMENT,
    VECTOR_LANES,
    CompressedMatrix,
    CompressedVector,
    compress,
    compress_matrix,
    decompress,
    decompress_matrix,
    decompress_row,
    measured_traffic_ratio,
    traffic_ratio,
    traffic_saved,
)
from .sparsity import (
    SparsityProfile,
    combined_sparsity,
    inject_sparsity,
    relu_sparsity_estimate,
    sparsity,
)

__all__ = [
    "MASK_BITS_PER_ELEMENT",
    "VECTOR_LANES",
    "CompressedMatrix",
    "CompressedVector",
    "compress",
    "compress_matrix",
    "decompress",
    "decompress_matrix",
    "decompress_row",
    "measured_traffic_ratio",
    "traffic_ratio",
    "traffic_saved",
    "SparsityProfile",
    "combined_sparsity",
    "inject_sparsity",
    "relu_sparsity_estimate",
    "sparsity",
]
