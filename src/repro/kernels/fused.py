"""Algorithm 2: fused aggregation + update.

Each task processes ``T`` blocks of ``B`` vertices: aggregate a block,
then immediately update it with the small GEMM while the hardware
prefetcher streams the next block's inputs.  Two consequences the paper
highlights (Figure 5):

* the ``a`` block is consumed from cache, never re-read from DRAM;
* in inference, one reusable buffer of ``B`` rows replaces the whole
  ``a`` matrix — :class:`KernelStats.peak_buffer_bytes` proves the
  footprint reduction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from .base import FusedLayerKernel, KernelStats, UpdateParams, validate_inputs
from .basic import DEFAULT_PREFETCH_DISTANCE, PREFETCH_LINES_PER_VECTOR
from .jit import JitKernelCache, KernelSpec

#: Default block size B: sized so a block of 256-float rows stays in L2.
DEFAULT_BLOCK_SIZE = 32

#: Default blocks per task T.
DEFAULT_BLOCKS_PER_TASK = 8


class FusedKernel(FusedLayerKernel):
    """The Graphite fused layer of Algorithm 2."""

    name = "fusion"

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        blocks_per_task: int = DEFAULT_BLOCKS_PER_TASK,
        prefetch_distance: int = DEFAULT_PREFETCH_DISTANCE,
        jit_cache: Optional[JitKernelCache] = None,
    ) -> None:
        if block_size <= 0 or blocks_per_task <= 0:
            raise ValueError("block_size and blocks_per_task must be positive")
        self.block_size = block_size
        self.blocks_per_task = blocks_per_task
        self.prefetch_distance = prefetch_distance
        self.jit_cache = jit_cache or JitKernelCache()

    def run_layer(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str = "gcn",
        keep_aggregation: bool = False,
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], KernelStats]:
        validate_inputs(graph, h)
        if params.weight.shape[0] != h.shape[1]:
            raise ValueError(
                f"weight rows {params.weight.shape[0]} != features {h.shape[1]}"
            )
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        if len(order) != n:
            raise ValueError("order must cover every vertex exactly once")

        compiled_before = self.jit_cache.compilations
        inner = self.jit_cache.specialize(
            graph, KernelSpec(feature_len=h.shape[1], aggregator=aggregator)
        )
        f_out = params.weight.shape[1]
        h_out = np.empty((n, f_out), dtype=np.float32)
        a_full = np.empty_like(h, dtype=np.float32) if keep_aggregation else None
        # Inference: one reusable B-row buffer (Figure 5c).  Training: the
        # full a matrix must survive for backward (Figure 5b).
        buffer = np.empty((self.block_size, h.shape[1]), dtype=np.float32)

        stats = KernelStats()
        stats.jit_compilations = self.jit_cache.compilations - compiled_before
        stats.peak_buffer_bytes = (
            a_full.nbytes if a_full is not None else buffer.nbytes
        )
        degs = graph.degrees()
        task_span = self.block_size * self.blocks_per_task

        for task_start in range(0, n, task_span):
            stats.tasks += 1
            for block_start in range(
                task_start, min(task_start + task_span, n), self.block_size
            ):
                stats.blocks += 1
                block_end = min(block_start + self.block_size, n)
                count = block_end - block_start
                # Aggregation phase of the block (Alg. 2 lines 3-7).
                scratch = np.empty((count, h.shape[1]), dtype=np.float32)
                for m in range(count):
                    v = int(order[block_start + m])
                    scratch[m] = inner(h, v)
                    stats.gathers += int(degs[v]) + 1
                    ahead = block_start + m + self.prefetch_distance
                    if self.prefetch_distance and ahead < n:
                        v_ahead = int(order[ahead])
                        stats.prefetches += (
                            (int(degs[v_ahead]) + 1) * PREFETCH_LINES_PER_VECTOR
                        )
                if keep_aggregation:
                    for m in range(count):
                        a_full[int(order[block_start + m])] = scratch[m]
                else:
                    buffer[:count] = scratch
                # Update phase of the block (Alg. 2 lines 8-10): small GEMM.
                updated = params.apply(scratch[:count])
                for m in range(count):
                    h_out[int(order[block_start + m])] = updated[m]
        stats.flops = (
            2.0 * stats.gathers * h.shape[1]
            + 2.0 * n * h.shape[1] * f_out
        )
        return h_out, a_full, stats

