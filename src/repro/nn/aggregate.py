"""Reference aggregation numerics — Eq. 1 and Table 2 of the paper.

Both evaluated models reduce each vertex's neighborhood (including the
vertex itself) with a per-neighbor scale factor ψ:

* GCN:        a_v = Σ  h_u / sqrt(D̂_v · D̂_u)   over u ∈ N(v) ∪ {v}
* SAGE-mean:  a_v = Σ  h_u / (D_v + 1)          over u ∈ N(v) ∪ {v}

where ``D̂ = D + 1`` counts the self edge so isolated vertices stay
well-defined (the standard renormalization-trick reading of Table 2).

These routines are the *value plane* oracle: every optimized kernel in
:mod:`repro.kernels` must reproduce their output bit-for-bit up to fp32
reduction-order noise.  They also expose the factor arrays that the DMA
engine's ``FACTOR`` descriptor field consumes (Section 5.1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import CSRGraph

#: Aggregators the library (and the DMA engine's bin_op/red_op) support.
AGGREGATORS = ("gcn", "mean", "sum", "max")

#: Accepted spellings that map onto a canonical aggregator.
AGGREGATOR_ALIASES = {"sage-mean": "mean"}


def canonical_aggregator(aggregator: str) -> str:
    """Resolve aliases (``sage-mean`` -> ``mean``) to canonical names."""
    return AGGREGATOR_ALIASES.get(aggregator, aggregator)


def normalization_factors(graph: CSRGraph, aggregator: str) -> Tuple[np.ndarray, np.ndarray]:
    """Per-edge and per-self factor arrays for an aggregator.

    Returns:
        (edge_factors, self_factors): ``edge_factors`` is aligned with
        ``graph.indices`` (one scale per gathered neighbor, the layout the
        DMA ``FACTOR`` pointer expects — Figure 9b), ``self_factors`` has
        one scale per vertex for the implicit self edge.
    """
    aggregator = canonical_aggregator(aggregator)
    degs = graph.degrees().astype(np.float64)
    d_hat = degs + 1.0
    dst = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees())
    if aggregator == "gcn":
        edge = 1.0 / np.sqrt(d_hat[dst] * d_hat[graph.indices])
        self_f = 1.0 / d_hat
    elif aggregator == "mean":
        edge = 1.0 / d_hat[dst]
        self_f = 1.0 / d_hat
    elif aggregator in ("sum", "max"):
        edge = np.ones(graph.num_edges, dtype=np.float64)
        self_f = np.ones(graph.num_vertices, dtype=np.float64)
    else:
        raise ValueError(f"unknown aggregator {aggregator!r}; choose from {AGGREGATORS}")
    return edge.astype(np.float32), self_f.astype(np.float32)


def normalized_adjacency(graph: CSRGraph, aggregator: str) -> sp.csr_matrix:
    """Â = the (self-loop augmented, ψ-scaled) adjacency as scipy CSR.

    ``aggregate(...) == Â @ h`` for the linear aggregators — this is the
    SpMM formulation the MKL baseline uses (Section 6).
    """
    edge, self_f = normalization_factors(graph, aggregator)
    n = graph.num_vertices
    adj = sp.csr_matrix(
        (edge, graph.indices.astype(np.int64), graph.indptr.astype(np.int64)),
        shape=(n, n),
    )
    return (adj + sp.diags(self_f)).tocsr()


def aggregate(graph: CSRGraph, h: np.ndarray, aggregator: str = "gcn") -> np.ndarray:
    """Eq. 1 — the reference aggregation.

    Linear aggregators go through the SpMM formulation; ``max`` falls back
    to an explicit loop (it is not expressible as a matrix product).
    """
    if h.shape[0] != graph.num_vertices:
        raise ValueError(
            f"feature rows {h.shape[0]} != num_vertices {graph.num_vertices}"
        )
    aggregator = canonical_aggregator(aggregator)
    if aggregator == "max":
        return _aggregate_max(graph, h)
    a_hat = normalized_adjacency(graph, aggregator)
    return (a_hat @ h).astype(np.result_type(h.dtype, np.float32))


def aggregate_backward(
    graph: CSRGraph, grad_a: np.ndarray, aggregator: str = "gcn"
) -> np.ndarray:
    """Gradient of the linear aggregation w.r.t. the input features.

    ``a = Â h`` implies ``dL/dh = Â^T dL/da``.  This is the vectorized
    *fallback* (one transpose-SpMM, rebuilding Â per call); training on
    an optimized kernel routes through the cached-CSC batched backward
    instead (:meth:`repro.kernels.BasicKernel.aggregate_backward`).
    """
    aggregator = canonical_aggregator(aggregator)
    if aggregator == "max":
        raise NotImplementedError("max aggregation has no linear backward")
    a_hat = normalized_adjacency(graph, aggregator)
    return (a_hat.T @ grad_a).astype(np.result_type(grad_a.dtype, np.float32))


def aggregate_backward_reference(
    graph: CSRGraph, grad_a: np.ndarray, aggregator: str = "gcn"
) -> np.ndarray:
    """Scalar-loop backward aggregation — the independent second oracle.

    Walks every forward edge once and scatters ``ψ_e * grad_a[dst]``
    onto the edge's source (plus the ψ-scaled self term), accumulating
    in float64: exactly ``Âᵀ grad_a`` with no sparse library involved.
    The differential gradient suite pins every optimized backward
    engine against this.
    """
    aggregator = canonical_aggregator(aggregator)
    if aggregator == "max":
        raise NotImplementedError("max aggregation has no linear backward")
    edge, self_f = normalization_factors(graph, aggregator)
    out = np.zeros_like(grad_a, dtype=np.float64)
    for v in range(graph.num_vertices):
        start, end = graph.indptr[v], graph.indptr[v + 1]
        for pos in range(start, end):
            out[graph.indices[pos]] += (
                grad_a[v].astype(np.float64) * edge[pos]
            )
        out[v] += grad_a[v].astype(np.float64) * self_f[v]
    return out.astype(np.result_type(grad_a.dtype, np.float32))


def _aggregate_max(graph: CSRGraph, h: np.ndarray) -> np.ndarray:
    """Element-wise max over N(v) ∪ {v} — supported by red_op=max.

    Vectorized: one ``np.maximum.reduceat`` over the gathered neighbor
    rows for the non-empty CSR segments, then an elementwise max with
    the self row (``_aggregate_max_reference`` keeps the loop oracle).
    """
    out = np.ascontiguousarray(h, dtype=np.float32).copy()
    degs = graph.degrees()
    nonempty = np.flatnonzero(degs)
    if len(nonempty):
        starts = graph.indptr[:-1][nonempty]
        gathered = h[graph.indices].astype(np.float32, copy=False)
        seg_max = np.maximum.reduceat(gathered, starts, axis=0)
        # reduceat segment i runs to the next start, so restrict to rows
        # whose segment is exactly one CSR row: starts are row starts of
        # non-empty rows, and the next start is the next non-empty row's
        # start == this row's end (empty rows contribute no positions).
        out[nonempty] = np.maximum(out[nonempty], seg_max)
    return out


def _aggregate_max_reference(graph: CSRGraph, h: np.ndarray) -> np.ndarray:
    """The original per-vertex loop of :func:`_aggregate_max` (oracle)."""
    out = h.copy()
    for v in range(graph.num_vertices):
        row = graph.neighbors(v)
        if len(row):
            out[v] = np.maximum(h[row].max(axis=0), h[v])
    return out.astype(np.float32)


def gather_reduce_reference(
    graph: CSRGraph, h: np.ndarray, aggregator: str = "gcn"
) -> np.ndarray:
    """Scalar-loop aggregation mirroring Algorithm 1's data flow exactly.

    Slower than :func:`aggregate` but structured like the kernels: per
    vertex, gather each neighbor row, scale by ψ, reduce.  Used in tests as
    an independent second oracle.
    """
    edge, self_f = normalization_factors(graph, aggregator)
    out = np.zeros_like(h, dtype=np.float64)
    for v in range(graph.num_vertices):
        start, end = graph.indptr[v], graph.indptr[v + 1]
        for pos in range(start, end):
            out[v] += h[graph.indices[pos]].astype(np.float64) * edge[pos]
        out[v] += h[v].astype(np.float64) * self_f[v]
    return out.astype(np.float32)
