"""Optimizers for full-batch GNN training: SGD (+momentum) and Adam."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .layers import LayerGrads
from .model import GNNModel


class Optimizer:
    """Base class: applies per-layer gradients to a model's parameters."""

    def __init__(self, model: GNNModel, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr

    def step(self, grads: Sequence[LayerGrads]) -> None:
        if len(grads) != self.model.num_layers:
            raise ValueError("gradient count does not match layer count")
        for layer, grad in zip(self.model.layers, grads):
            self._update(layer, grad)

    def _update(self, layer, grad: LayerGrads) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, model: GNNModel, lr: float = 0.1, momentum: float = 0.0) -> None:
        super().__init__(model, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _update(self, layer, grad: LayerGrads) -> None:
        if self.momentum == 0.0:
            layer.weight -= self.lr * grad.weight
            layer.bias -= self.lr * grad.bias
            return
        key = id(layer)
        vw, vb = self._velocity.get(
            key, (np.zeros_like(layer.weight), np.zeros_like(layer.bias))
        )
        vw = self.momentum * vw + grad.weight
        vb = self.momentum * vb + grad.bias
        self._velocity[key] = (vw, vb)
        layer.weight -= self.lr * vw
        layer.bias -= self.lr * vb


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the usual choice for GNN training runs."""

    def __init__(
        self,
        model: GNNModel,
        lr: float = 0.01,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(model, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._t = 0
        self._m: Dict[int, List[np.ndarray]] = {}
        self._v: Dict[int, List[np.ndarray]] = {}

    def step(self, grads: Sequence[LayerGrads]) -> None:
        self._t += 1
        super().step(grads)

    def _update(self, layer, grad: LayerGrads) -> None:
        key = id(layer)
        if key not in self._m:
            self._m[key] = [np.zeros_like(layer.weight), np.zeros_like(layer.bias)]
            self._v[key] = [np.zeros_like(layer.weight), np.zeros_like(layer.bias)]
        for slot, (param, g) in enumerate(
            ((layer.weight, grad.weight), (layer.bias, grad.bias))
        ):
            m = self._m[key][slot]
            v = self._v[key][slot]
            m[...] = self.beta1 * m + (1 - self.beta1) * g
            v[...] = self.beta2 * v + (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
