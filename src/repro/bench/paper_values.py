"""Published numbers from the paper's tables and figures.

Transcribed from the ISCA 2022 paper; benchmarks print these next to the
measured values so EXPERIMENTS.md can record paper-vs-measured for every
artifact.
"""

from __future__ import annotations

# Figure 2: sampled GraphSAGE training epoch on Titan V + 12-core CPU,
# ogbn-products, seconds.
FIG2_GPU_SAMPLING = {
    1024: {"sampling": 53.7, "gnn": 7.0},
    2048: {"sampling": 40.2, "gnn": 3.3},
    4096: {"sampling": 29.1, "gnn": 1.8},
}

# Figure 3: pipeline-slot breakdown of full-batch GraphSAGE training (DGL).
FIG3_TOPDOWN = {
    "retiring": 0.101,
    "frontend_bound": 0.033,
    "core_bound": 0.236,
    "memory_bound": 0.617,
}

# Table 3: dataset statistics.
TAB3_DATASETS = {
    "products": {"vertices": 2.45e6, "edges": 124e6, "mean_degree": 50.5,
                 "max_degree": 17.5e3, "degree_variance": 9.20e3, "f_input": 100},
    "wikipedia": {"vertices": 3.57e6, "edges": 45.0e6, "mean_degree": 12.6,
                  "max_degree": 7.06e3, "degree_variance": 1.09e3, "f_input": 128},
    "papers": {"vertices": 111e6, "edges": 1.62e9, "mean_degree": 14.5,
               "max_degree": 26.7e3, "degree_variance": 927, "f_input": 256},
    "twitter": {"vertices": 61.6e6, "edges": 1.47e9, "mean_degree": 23.8,
                "max_degree": 3.00e6, "degree_variance": 3.96e6, "f_input": 256},
}

# Figure 11a: inference speedup over DistGNN (GCN / GraphSAGE per dataset).
FIG11A_INFERENCE = {
    "gcn": {
        "products": {"mkl": 0.98, "basic": 1.02, "fusion": 1.18,
                     "compression": 1.48, "combined": 1.72},
        "wikipedia": {"mkl": 0.95, "basic": 1.11, "fusion": 1.56,
                      "compression": 1.37, "combined": 1.85},
        "papers": {"mkl": 0.98, "basic": 1.07, "fusion": 1.38,
                   "compression": 1.45, "combined": 1.90},
        "twitter": {"mkl": 0.89, "basic": 1.03, "fusion": 1.25,
                    "compression": 1.43, "combined": 1.72},
    },
    "sage": {
        "products": {"mkl": 0.98, "basic": 1.05, "fusion": 1.20,
                     "compression": 1.52, "combined": 1.74},
        "wikipedia": {"mkl": 0.95, "basic": 1.13, "fusion": 1.61,
                      "compression": 1.40, "combined": 1.88},
        "papers": {"mkl": 0.99, "basic": 1.08, "fusion": 1.41,
                   "compression": 1.49, "combined": 1.94},
        "twitter": {"mkl": 0.88, "basic": 1.06, "fusion": 1.27,
                    "compression": 1.46, "combined": 1.75},
    },
}

# Figure 11b: training speedup over DistGNN.
FIG11B_TRAINING = {
    "gcn": {
        "products": {"mkl": 0.98, "basic": 1.02, "fusion": 1.11,
                     "compression": 1.46, "combined": 1.58, "c-locality": 2.57},
        "wikipedia": {"mkl": 0.96, "basic": 1.10, "fusion": 1.25,
                      "compression": 1.31, "combined": 1.50, "c-locality": 1.80},
        "papers": {"mkl": 0.98, "basic": 1.06, "fusion": 1.19,
                   "compression": 1.40, "combined": 1.56, "c-locality": 1.83},
        "twitter": {"mkl": 0.89, "basic": 1.03, "fusion": 1.12,
                    "compression": 1.39, "combined": 1.50, "c-locality": 1.60},
    },
    "sage": {
        "products": {"mkl": 0.98, "basic": 1.03, "fusion": 1.13,
                     "compression": 1.48, "combined": 1.62, "c-locality": 2.64},
        "wikipedia": {"mkl": 0.95, "basic": 1.11, "fusion": 1.27,
                      "compression": 1.34, "combined": 1.54, "c-locality": 1.83},
        "papers": {"mkl": 0.99, "basic": 1.09, "fusion": 1.22,
                   "compression": 1.44, "combined": 1.60, "c-locality": 1.87},
        "twitter": {"mkl": 0.89, "basic": 1.04, "fusion": 1.15,
                    "compression": 1.42, "combined": 1.53, "c-locality": 1.63},
    },
}

# Figure 12a: simulated inference speedup over DistGNN.
FIG12A_DMA_INFERENCE = {
    "gcn": {
        "products": {"fusion": 1.25, "fusion+DMA": 1.63},
        "wikipedia": {"fusion": 1.36, "fusion+DMA": 1.97},
    },
    "sage": {
        "products": {"fusion": 1.26, "fusion+DMA": 1.63},
        "wikipedia": {"fusion": 1.36, "fusion+DMA": 1.98},
    },
}

# Figure 12b: simulated training speedup over DistGNN.
FIG12B_DMA_TRAINING = {
    "gcn": {
        "products": {"fusion": 1.22, "fusion+DMA": 1.55,
                     "fusion+locality": 2.38, "fusion+DMA+locality": 3.11},
        "wikipedia": {"fusion": 1.25, "fusion+DMA": 1.70,
                      "fusion+locality": 1.40, "fusion+DMA+locality": 1.89},
    },
    "sage": {
        "products": {"fusion": 1.23, "fusion+DMA": 1.55,
                     "fusion+locality": 2.39, "fusion+DMA+locality": 3.14},
        "wikipedia": {"fusion": 1.24, "fusion+DMA": 1.69,
                      "fusion+locality": 1.39, "fusion+DMA+locality": 1.90},
    },
}

# Figure 13: normalized basic execution split and fused time, GCN hidden
# layers (aggregation share, update share, fused-inference, fused-forward-
# training — all normalized to basic = 1.0).
FIG13_FUSION_BREAKDOWN = {
    "products": {"aggregation": 0.93, "update": 0.07,
                 "fused_inference": 0.87, "fused_training": 0.92},
    "wikipedia": {"aggregation": 0.69, "update": 0.31,
                  "fused_inference": 0.71, "fused_training": 0.86},
    "papers": {"aggregation": 0.81, "update": 0.19,
               "fused_inference": 0.78, "fused_training": 0.88},
    "twitter": {"aggregation": 0.84, "update": 0.16,
                "fused_inference": 0.83, "fused_training": 0.91},
}

# Figure 14: compression speedup over basic at feature sparsities.
FIG14_COMPRESSION = {
    "inference": {
        "products": {0.1: 0.88, 0.3: 1.16, 0.5: 1.45, 0.7: 1.78, 0.9: 2.95},
        "wikipedia": {0.1: 0.91, 0.3: 1.06, 0.5: 1.19, 0.7: 1.27, 0.9: 1.63},
        "papers": {0.1: 0.93, 0.3: 1.16, 0.5: 1.38, 0.7: 1.61, 0.9: 2.29},
        "twitter": {0.1: 0.87, 0.3: 1.14, 0.5: 1.38, 0.7: 1.61, 0.9: 2.40},
    },
    "training": {
        "products": {0.1: 0.90, 0.3: 1.16, 0.5: 1.43, 0.7: 1.74, 0.9: 2.74},
        "wikipedia": {0.1: 0.94, 0.3: 1.08, 0.5: 1.20, 0.7: 1.31, 0.9: 1.58},
        "papers": {0.1: 0.95, 0.3: 1.14, 0.5: 1.31, 0.7: 1.51, 0.9: 2.00},
        "twitter": {0.1: 0.90, 0.3: 1.14, 0.5: 1.34, 0.7: 1.56, 0.9: 2.16},
    },
}

# Figure 15: speedup over the 5-run randomized average, GCN training.
FIG15_LOCALITY = {
    "products": {"combined": 1.01, "locality": 1.64},
    "wikipedia": {"combined": 1.06, "locality": 1.27},
    "papers": {"combined": 1.00, "locality": 1.17},
    "twitter": {"combined": 1.13, "locality": 1.21},
}

# Figure 16: DMA-aggregation time on wikipedia vs tracking-table entries,
# normalized to 8 entries.
FIG16_TRACKING_TABLE = {8: 1.00, 16: 0.72, 32: 0.49, 64: 0.46}

# Table 4: GCN training characterization (selected columns).
TAB4_CHARACTERIZATION = {
    "products": {
        "distgnn": {"retiring": 0.098, "memory_bound": 0.752,
                    "dram_bw": 0.788, "dram_lat": 0.053, "fill_full": 1.00},
        "mkl": {"retiring": 0.112, "memory_bound": 0.718,
                "dram_bw": 0.744, "dram_lat": 0.052, "fill_full": 1.00},
        "combined": {"retiring": 0.188, "memory_bound": 0.581,
                     "dram_bw": 0.628, "dram_lat": 0.134, "fill_full": 1.00},
        "c-locality": {"retiring": 0.287, "memory_bound": 0.393,
                       "dram_bw": 0.408, "dram_lat": 0.191, "fill_full": 0.313},
    },
    "wikipedia": {
        "distgnn": {"retiring": 0.232, "memory_bound": 0.490,
                    "dram_bw": 0.479, "dram_lat": 0.085, "fill_full": 1.00},
        "mkl": {"retiring": 0.231, "memory_bound": 0.477,
                "dram_bw": 0.454, "dram_lat": 0.100, "fill_full": 1.00},
        "combined": {"retiring": 0.339, "memory_bound": 0.306,
                     "dram_bw": 0.298, "dram_lat": 0.126, "fill_full": 0.427},
        "c-locality": {"retiring": 0.341, "memory_bound": 0.303,
                       "dram_bw": 0.283, "dram_lat": 0.096, "fill_full": 0.391},
    },
    "papers": {
        "distgnn": {"retiring": 0.135, "memory_bound": 0.757,
                    "dram_bw": 0.771, "dram_lat": 0.072, "fill_full": 1.00},
        "mkl": {"retiring": 0.134, "memory_bound": 0.767,
                "dram_bw": 0.771, "dram_lat": 0.070, "fill_full": 1.00},
        "combined": {"retiring": 0.245, "memory_bound": 0.589,
                     "dram_bw": 0.606, "dram_lat": 0.131, "fill_full": 1.00},
        "c-locality": {"retiring": 0.289, "memory_bound": 0.520,
                       "dram_bw": 0.534, "dram_lat": 0.153, "fill_full": 0.936},
    },
    "twitter": {
        "distgnn": {"retiring": 0.124, "memory_bound": 0.772,
                    "dram_bw": 0.791, "dram_lat": 0.075, "fill_full": 1.00},
        "mkl": {"retiring": 0.123, "memory_bound": 0.788,
                "dram_bw": 0.792, "dram_lat": 0.085, "fill_full": 1.00},
        "combined": {"retiring": 0.192, "memory_bound": 0.643,
                     "dram_bw": 0.673, "dram_lat": 0.167, "fill_full": 1.00},
        "c-locality": {"retiring": 0.226, "memory_bound": 0.601,
                       "dram_bw": 0.624, "dram_lat": 0.149, "fill_full": 1.00},
    },
}

# Table 5: private-cache access reduction from the DMA engine.
TAB5_CACHE_REDUCTION = {
    "products": {"agg_only": {"l1": 0.98, "l2": 0.97},
                 "fused": {"l1": 0.43, "l2": 0.36}},
    "wikipedia": {"agg_only": {"l1": 0.97, "l2": 0.89},
                  "fused": {"l1": 0.19, "l2": 0.12}},
}

# Section 7.3.2: memory-system improvements from the DMA engine.
SEC732_MEMORY_SYSTEM = {
    "products": {"l2_miss_before": 0.205, "l2_miss_after": 0.028,
                 "stall_before": 0.581, "stall_after": 0.428},
    "wikipedia": {"l2_miss_before": 0.455, "l2_miss_after": 0.028,
                  "stall_before": 0.306, "stall_after": 0.257},
}

# Section 2.2: hidden-feature sparsity during a 3-layer GraphSAGE training.
SEC22_SPARSITY = {
    "layer2_relu": 0.60,  # >60% after ReLU
    "layer2_dropout": 0.80,  # >80% after dropout
    "layer3": 0.90,  # >90%
}
