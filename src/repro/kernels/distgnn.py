"""DistGNN-style kernels (Section 6): the baseline aggregation and the
shard-level primitives of the partition-parallel trainer.

DistGNN provides the paper's single-socket state of the art: a
vertex-parallel gather-reduce with static chunking, no software-prefetch
tuning and no JIT specialization.  This reproduction mirrors that
structure: plain per-vertex reduction over statically partitioned chunks.

The shard helpers below power ``repro.parallel.sharded``: each worker
owns one partition's rows as a local CSR (see ``graphs.partition``) and
aggregates with :func:`shard_segment_reduce` over an input matrix whose
first ``num_local`` rows are owned features and whose tail rows are halo
(ghost) copies of remote vertices.  DistGNN's *delayed aggregation*
(cd-0/cd-r in the paper's terminology) maps onto this layout by simply
refreshing the halo tail less often than every epoch.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.partition import GraphShard
from ..nn.aggregate import normalization_factors
from .base import AggregationKernel, KernelStats, validate_inputs


class DistGNNKernel(AggregationKernel):
    """Baseline vertex-parallel aggregation with static chunks."""

    name = "distgnn"

    def __init__(self, num_threads: int = 28) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        self.num_threads = num_threads

    def aggregate(
        self, graph: CSRGraph, h: np.ndarray, aggregator: str = "gcn"
    ) -> Tuple[np.ndarray, KernelStats]:
        validate_inputs(graph, h)
        edge_factors, self_factors = normalization_factors(graph, aggregator)
        n = graph.num_vertices
        out = np.empty_like(h, dtype=np.float32)
        stats = KernelStats()
        # Static partition: contiguous chunk of vertices per thread.
        chunk = max(1, (n + self.num_threads - 1) // self.num_threads)
        for start in range(0, n, chunk):
            stats.tasks += 1
            for v in range(start, min(start + chunk, n)):
                s, e = graph.indptr[v], graph.indptr[v + 1]
                row = graph.indices[s:e]
                acc = h[v] * self_factors[v]
                if len(row):
                    acc = acc + (h[row] * edge_factors[s:e, None]).sum(axis=0)
                out[v] = acc
                stats.gathers += len(row) + 1
        stats.flops = 2.0 * stats.gathers * h.shape[1]
        return out, stats


# ----------------------------------------------------------------------
# Shard-level primitives for partition-parallel training
# ----------------------------------------------------------------------


def shard_factors(
    edge_factors: np.ndarray, self_factors: np.ndarray, shard: GraphShard
) -> Tuple[np.ndarray, np.ndarray]:
    """Restrict global ψ normalization factors to one shard.

    Edge factors follow the shard's edges via ``edge_positions`` (each
    shard edge keeps its *global*-degree normalization — this is what
    makes sharded aggregation exactly match the serial result); self
    factors restrict to the owned rows.
    """
    return (
        np.ascontiguousarray(edge_factors[shard.edge_positions]),
        np.ascontiguousarray(self_factors[shard.local_vertices]),
    )


def shard_segment_reduce(
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_factors: np.ndarray,
    self_factors: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Per-shard gather-reduce: ``a[v] = ψ_v x[v] + Σ_e ψ_e x[col(e)]``.

    ``x`` has ``num_local + num_halo`` rows (owned features then halo
    copies); the result has ``num_local`` rows.  Mirrors the batched
    engine's pre-scaled gather + ``np.add.reduceat`` ordering so the
    per-row floating-point sums match the serial kernel's.
    """
    n_local = len(indptr) - 1
    out = x[:n_local] * self_factors[:, None]
    if len(indices):
        gathered = x[indices] * edge_factors[:, None]
        degs = np.diff(indptr)
        nonempty = np.flatnonzero(degs)
        if len(nonempty):
            segments = np.add.reduceat(gathered, indptr[:-1][nonempty], axis=0)
            out[nonempty] += segments
    return out.astype(np.float32, copy=False)
