"""Streaming epoch-event log: one JSONL record per training epoch.

The run report (:mod:`repro.obs.report`) is a *post-mortem* — it exists
only after the run finished.  The event log is the *live* counterpart:
``Trainer.train_epoch`` emits one schema-versioned record per epoch, and
the writer flushes each line immediately, so a run that NaNs or is
killed at epoch 37 still leaves 37 readable records on disk.

Each epoch record joins model quality with the architectural quantities
the paper's optimizations trade on:

* ``loss`` / ``train_accuracy`` / ``val_accuracy`` — the model-quality
  curve;
* ``wall_time_s`` — epoch wall time (forward + backward + step);
* ``grad_norms`` / ``weight_norms`` — per-layer L2 norms, the numerics
  trajectory the health guards (:mod:`repro.obs.health`) watch;
* ``sparsity`` — per-layer hidden-feature input sparsity, the Section
  2.2 quantity that determines compression's DRAM savings;
* ``compression`` — the *realized* DRAM bytes the compressed kernels
  actually avoided this epoch next to the *predicted* savings the
  Section 4.3 traffic model assigns to the measured sparsity, so the
  two planes stay auditable epoch by epoch.

File format (one JSON object per line):

* line 1 — header: ``{"kind": "events_header", "schema": 1,
  "created_unix": ..., "run": {...caller meta...}}``;
* every following line — ``{"kind": "epoch", "epoch": N, ...}``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

#: Version of the epoch-event record layout.
EVENTS_SCHEMA_VERSION = 1

#: Fields every epoch record must carry (``validate_epoch_event``).
REQUIRED_EPOCH_FIELDS = (
    "epoch",
    "loss",
    "train_accuracy",
    "wall_time_s",
    "grad_norms",
    "weight_norms",
    "sparsity",
    "compression",
)

#: Keys of the per-epoch compression sub-document.
COMPRESSION_KEYS = ("realized_dram_bytes_saved", "predicted_dram_bytes_saved")


@dataclass
class EpochEvent:
    """One epoch's worth of training telemetry (JSON-serializable)."""

    epoch: int
    loss: float
    train_accuracy: float
    wall_time_s: float
    val_accuracy: Optional[float] = None
    #: layer index (as str, JSON keys are strings) -> {"weight", "bias", "h_in"}
    grad_norms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: layer index -> {"weight", "bias"}
    weight_norms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: layer index -> input-feature zero fraction this epoch
    sparsity: Dict[str, float] = field(default_factory=dict)
    #: realized vs cost-model-predicted compression traffic savings
    compression: Dict[str, float] = field(default_factory=dict)
    #: health-guard findings this epoch (kind strings, empty when clean)
    health_issues: List[str] = field(default_factory=list)

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": "epoch",
            "schema": EVENTS_SCHEMA_VERSION,
            "epoch": self.epoch,
            "loss": self.loss,
            "train_accuracy": self.train_accuracy,
            "val_accuracy": self.val_accuracy,
            "wall_time_s": self.wall_time_s,
            "grad_norms": self.grad_norms,
            "weight_norms": self.weight_norms,
            "sparsity": self.sparsity,
            "compression": self.compression,
            "health_issues": list(self.health_issues),
        }


class EventLog:
    """Streaming JSONL epoch-event writer (and in-memory record buffer).

    The header is written on open; every :meth:`emit` writes and
    *flushes* one line, so the log is valid after any prefix of the run.
    Records are also kept in ``self.events`` so the run report can embed
    them without re-reading the file.  Usable as a context manager.
    """

    def __init__(self, path: Optional[str], meta: Optional[Dict[str, Any]] = None):
        self.path = path
        self.meta = dict(meta or {})
        self.events: List[Dict[str, Any]] = []
        self._handle: Optional[IO[str]] = None
        if path is not None:
            self._handle = open(path, "w")
            self._handle.write(json.dumps(self.header()) + "\n")
            self._handle.flush()

    def header(self) -> Dict[str, Any]:
        return {
            "kind": "events_header",
            "schema": EVENTS_SCHEMA_VERSION,
            "created_unix": time.time(),
            "run": self.meta,
        }

    def emit(self, event: EpochEvent) -> Dict[str, Any]:
        """Append one epoch record (returns the serialized dict)."""
        record = event.to_record()
        self.events.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, allow_nan=True) + "\n")
            self._handle.flush()
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)


def read_events(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load an event log; returns (header, epoch records).

    Python's JSON reader accepts the bare ``NaN``/``Infinity`` tokens a
    NaN'd run writes, so a diverged log stays loadable.

    A *truncated final line* — the partially flushed write of a run
    that is still in flight or was killed mid-``write`` — is tolerated:
    the complete prefix is returned.  A malformed line anywhere *before*
    the end is still an error (real corruption, not a live tail).
    """
    with open(path) as handle:
        raw = [line for line in handle if line.strip()]
    lines: List[Dict[str, Any]] = []
    for index, line in enumerate(raw):
        try:
            lines.append(json.loads(line))
        except json.JSONDecodeError as error:
            if index == len(raw) - 1:
                break  # live run's partial flush — yield the prefix
            raise ValueError(
                f"{path}: malformed JSON on line {index + 1}: {error}"
            ) from error
    if not lines or lines[0].get("kind") != "events_header":
        raise ValueError(f"{path}: not an event log (missing events_header)")
    return lines[0], [rec for rec in lines[1:] if rec.get("kind") == "epoch"]


class EventTail:
    """Incremental reader of a growing epoch-event log.

    Built for the live monitor: each :meth:`read_new` picks up where
    the previous one stopped (byte offset), returns only the *complete*
    new records, and leaves a partially flushed final line on disk for
    the next poll.  The header (once seen) is kept on ``self.header``.
    """

    def __init__(self, path: str):
        self.path = path
        self.header: Optional[Dict[str, Any]] = None
        self._offset = 0

    def read_new(self) -> List[Dict[str, Any]]:
        """Complete epoch records appended since the last call."""
        try:
            # Binary mode: byte offsets stay exact under any encoding,
            # unlike text-mode seek/tell cookies.
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        records: List[Dict[str, Any]] = []
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # incomplete flush — re-read next poll
            consumed += len(line)
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # malformed complete line: skip, don't wedge the tail
            if self.header is None and record.get("kind") == "events_header":
                self.header = record
            elif record.get("kind") == "epoch":
                records.append(record)
        self._offset += consumed
        return records


def _check_norm_map(record: Dict[str, Any], key: str, problems: List[str]) -> None:
    value = record.get(key)
    if not isinstance(value, dict):
        problems.append(f"{key}: expected an object, got {type(value).__name__}")
        return
    for layer, entry in value.items():
        if not isinstance(entry, dict) or not all(
            isinstance(v, (int, float)) for v in entry.values()
        ):
            problems.append(f"{key}[{layer}]: expected an object of numbers")


def validate_epoch_event(record: Dict[str, Any]) -> List[str]:
    """Schema problems of one epoch record (empty list when valid).

    NaN/Inf values are *valid* — a diverged run must still produce a
    schema-conforming log (that is the point of the health guards).
    """
    problems: List[str] = []
    if record.get("kind") != "epoch":
        problems.append(f"kind: expected 'epoch', got {record.get('kind')!r}")
    if record.get("schema") != EVENTS_SCHEMA_VERSION:
        problems.append(
            f"schema: expected {EVENTS_SCHEMA_VERSION}, got {record.get('schema')!r}"
        )
    for key in REQUIRED_EPOCH_FIELDS:
        if key not in record:
            problems.append(f"missing field {key!r}")
    if problems:
        return problems
    if not isinstance(record["epoch"], int) or record["epoch"] < 0:
        problems.append(f"epoch: expected a non-negative int, got {record['epoch']!r}")
    for key in ("loss", "train_accuracy", "wall_time_s"):
        if not isinstance(record[key], (int, float)):
            problems.append(f"{key}: expected a number, got {record[key]!r}")
    val = record.get("val_accuracy")
    if val is not None and not isinstance(val, (int, float)):
        problems.append(f"val_accuracy: expected a number or null, got {val!r}")
    _check_norm_map(record, "grad_norms", problems)
    _check_norm_map(record, "weight_norms", problems)
    sparsity = record["sparsity"]
    if not isinstance(sparsity, dict):
        problems.append("sparsity: expected an object")
    else:
        for layer, value in sparsity.items():
            if not isinstance(value, (int, float)) or (
                not math.isnan(value) and not 0.0 <= value <= 1.0
            ):
                problems.append(f"sparsity[{layer}]: expected a fraction in [0, 1]")
    compression = record["compression"]
    if not isinstance(compression, dict):
        problems.append("compression: expected an object")
    else:
        for key in COMPRESSION_KEYS:
            if not isinstance(compression.get(key), (int, float)):
                problems.append(f"compression.{key}: expected a number")
    return problems


def validate_events(
    records: List[Dict[str, Any]], header: Optional[Dict[str, Any]] = None
) -> None:
    """Raise ``ValueError`` listing every schema problem in the log."""
    problems: List[str] = []
    if header is not None:
        if header.get("kind") != "events_header":
            problems.append("header: kind != 'events_header'")
        if header.get("schema") != EVENTS_SCHEMA_VERSION:
            problems.append(
                f"header: schema {header.get('schema')!r} != {EVENTS_SCHEMA_VERSION}"
            )
    for idx, record in enumerate(records):
        for problem in validate_epoch_event(record):
            problems.append(f"record {idx}: {problem}")
    if problems:
        raise ValueError("invalid event log:\n  " + "\n  ".join(problems))


def validate_events_file(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read and validate an event log; returns (header, records)."""
    header, records = read_events(path)
    validate_events(records, header)
    return header, records
