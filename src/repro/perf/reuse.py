"""Reuse-distance analysis of the aggregation access stream.

Aggregation touches one feature vector per gathered neighbor.  Whether a
touch hits in cache is governed by its *LRU stack distance*: the number of
distinct vectors touched since the previous touch of the same vector.
With capacity for C vectors, an access hits iff its distance is < C.

This module computes the exact stack-distance histogram of the stream

    for v in processing_order:  for u in N(v) ∪ {v}:  touch(u)

using the classic Bennett-Kruskal algorithm (Fenwick tree over access
times), O(T log T).  Section 4.4's locality ordering exists precisely to
shift this histogram left; Figure 15's randomized/combined/locality
comparison falls out of evaluating the histogram at the machine's scaled
cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graphs.csr import CSRGraph

#: Distance assigned to cold (first-touch) accesses.
COLD = np.iinfo(np.int64).max


class _Fenwick:
    """Fenwick tree of 0/1 marks over access times."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self.tree
        while i <= self.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of marks in [0, index]."""
        i = index + 1
        total = 0
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)


def access_stream(graph: CSRGraph, order: Optional[np.ndarray] = None) -> np.ndarray:
    """The vertex-id sequence touched by aggregation in the given order.

    Each processed vertex touches its neighbors then itself (the self
    contribution of N(v) ∪ {v}).
    """
    if order is None:
        order = np.arange(graph.num_vertices, dtype=np.int64)
    pieces = []
    for v in order:
        pieces.append(graph.neighbors(int(v)))
        pieces.append(np.array([v], dtype=np.int64))
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces).astype(np.int64)


def stack_distances(stream: np.ndarray, num_vertices: int) -> np.ndarray:
    """Exact LRU stack distance of every access (COLD for first touches)."""
    t = len(stream)
    out = np.empty(t, dtype=np.int64)
    last_seen = np.full(num_vertices, -1, dtype=np.int64)
    fen = _Fenwick(t)
    for time, vertex in enumerate(stream):
        prev = last_seen[vertex]
        if prev < 0:
            out[time] = COLD
        else:
            # Distinct elements touched in (prev, time) = marks in range,
            # excluding the element itself (whose mark sits at prev).
            out[time] = fen.prefix_sum(time - 1) - fen.prefix_sum(prev)
            fen.add(prev, -1)
        fen.add(time, 1)
        last_seen[vertex] = time
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Stack-distance histogram of one (graph, order) aggregation stream."""

    distances: np.ndarray  # per-access stack distance, COLD for cold
    num_vertices: int
    num_accesses: int

    def hit_rate(self, capacity_vectors: float) -> float:
        """Fraction of accesses that hit with capacity for C vectors.

        Cold misses never hit regardless of capacity.
        """
        if self.num_accesses == 0:
            return 0.0
        capacity = max(0.0, capacity_vectors)
        hits = int(np.count_nonzero(self.distances < capacity))
        return hits / self.num_accesses

    def miss_rate(self, capacity_vectors: float) -> float:
        return 1.0 - self.hit_rate(capacity_vectors)

    def cold_fraction(self) -> float:
        if self.num_accesses == 0:
            return 0.0
        return float(np.count_nonzero(self.distances == COLD) / self.num_accesses)

    def mean_finite_distance(self) -> float:
        finite = self.distances[self.distances != COLD]
        return float(finite.mean()) if len(finite) else float("inf")


def reuse_profile(graph: CSRGraph, order: Optional[np.ndarray] = None) -> ReuseProfile:
    """Compute the reuse profile of aggregating ``graph`` in ``order``."""
    stream = access_stream(graph, order)
    distances = stack_distances(stream, graph.num_vertices)
    return ReuseProfile(
        distances=distances,
        num_vertices=graph.num_vertices,
        num_accesses=len(stream),
    )


def hit_rate_for_order(
    graph: CSRGraph,
    order: Optional[np.ndarray],
    capacity_bytes: float,
    vector_bytes: float,
) -> float:
    """Convenience: hit rate at a byte capacity for a given vector size."""
    if vector_bytes <= 0:
        raise ValueError("vector_bytes must be positive")
    profile = reuse_profile(graph, order)
    return profile.hit_rate(capacity_bytes / vector_bytes)
