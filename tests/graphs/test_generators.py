"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    chain_graph,
    community_graph,
    grid_graph,
    planted_partition_graph,
    power_law_graph,
    star_graph,
    uniform_graph,
)
from repro.graphs.stats import skew


class TestUniform:
    def test_size_and_degree(self):
        graph = uniform_graph(500, avg_degree=8.0, seed=0)
        assert graph.num_vertices == 500
        assert 5.0 < graph.num_edges / 500 <= 8.0  # dedup trims a little

    def test_deterministic(self):
        a = uniform_graph(100, 4.0, seed=5)
        b = uniform_graph(100, 4.0, seed=5)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_different_seeds_differ(self):
        a = uniform_graph(100, 4.0, seed=1)
        b = uniform_graph(100, 4.0, seed=2)
        assert not np.array_equal(a.indices, b.indices)


class TestPowerLaw:
    def test_skew_exceeds_uniform(self):
        plaw = power_law_graph(600, avg_degree=10.0, exponent=2.0, seed=0)
        unif = uniform_graph(600, avg_degree=10.0, seed=0)
        assert skew(plaw) > skew(unif)

    def test_max_degree_cap(self):
        graph = power_law_graph(300, 8.0, max_degree=20, seed=0)
        assert graph.degrees().max() <= 20


class TestGrid:
    def test_interior_degree_four(self):
        graph = grid_graph(5)
        assert graph.degree(12) == 4  # center vertex

    def test_corner_degree_two(self):
        graph = grid_graph(5)
        assert graph.degree(0) == 2

    def test_edge_count(self):
        graph = grid_graph(4)
        # 2 * 2 * side * (side-1) directed edges.
        assert graph.num_edges == 2 * 2 * 4 * 3


class TestStarChain:
    def test_star_hub_gathers_all_leaves(self, star10):
        assert star10.degree(0) == 10

    def test_star_leaves_gather_hub(self, star10):
        for leaf in range(1, 11):
            assert list(star10.neighbors(leaf)) == [0]

    def test_chain_degrees(self, chain20):
        assert chain20.degree(0) == 0
        assert all(chain20.degree(v) == 1 for v in range(1, 20))


class TestPlantedPartition:
    def test_labels_shape(self):
        graph, labels = planted_partition_graph(200, 4, p_in=0.1, p_out=0.005, seed=0)
        assert labels.shape == (200,)
        assert labels.max() < 4

    def test_within_class_edges_dominate(self):
        graph, labels = planted_partition_graph(300, 3, p_in=0.08, p_out=0.004, seed=1)
        within = 0
        for v in range(graph.num_vertices):
            for u in graph.neighbors(v):
                within += labels[v] == labels[u]
        assert within / graph.num_edges > 0.6

    def test_symmetric(self):
        graph, _ = planted_partition_graph(100, 2, 0.1, 0.01, seed=2)
        for v in range(graph.num_vertices):
            for u in graph.neighbors(v):
                assert v in graph.neighbors(int(u))


class TestCommunityGraph:
    def test_degree_targeting(self):
        graph = community_graph(1024, avg_degree=20.0, community_size=32, seed=0)
        achieved = graph.num_edges / graph.num_vertices
        assert 0.75 * 20 <= achieved <= 1.35 * 20

    def test_deterministic(self):
        a = community_graph(256, 10.0, 16, seed=9)
        b = community_graph(256, 10.0, 16, seed=9)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_contiguous_communities_share_neighbors(self):
        """Without scattering, adjacent vertex ids share many sources."""
        graph = community_graph(
            512, 16.0, community_size=32, within_fraction=0.9,
            scatter_ids=False, seed=0,
        )
        overlaps = []
        for v in range(0, 200):
            a = set(graph.neighbors(v).tolist())
            b = set(graph.neighbors(v + 1).tolist())
            if a and b:
                overlaps.append(len(a & b) / min(len(a), len(b)))
        assert np.mean(overlaps) > 0.3

    def test_scattering_destroys_id_locality(self):
        kwargs = dict(
            num_vertices=512, avg_degree=16.0, community_size=32,
            within_fraction=0.9, seed=0,
        )
        contiguous = community_graph(scatter_ids=False, **kwargs)
        scattered = community_graph(scatter_ids=True, **kwargs)

        def adjacent_overlap(graph):
            vals = []
            for v in range(200):
                a = set(graph.neighbors(v).tolist())
                b = set(graph.neighbors(v + 1).tolist())
                if a and b:
                    vals.append(len(a & b) / min(len(a), len(b)))
            return np.mean(vals)

        assert adjacent_overlap(contiguous) > 2 * adjacent_overlap(scattered)

    def test_partial_scatter_in_between(self):
        kwargs = dict(
            num_vertices=512, avg_degree=16.0, community_size=32,
            within_fraction=0.9, seed=0,
        )

        def adjacent_overlap(graph):
            vals = []
            for v in range(200):
                a = set(graph.neighbors(v).tolist())
                b = set(graph.neighbors(v + 1).tolist())
                if a and b:
                    vals.append(len(a & b) / min(len(a), len(b)))
            return float(np.mean(vals))

        full = adjacent_overlap(community_graph(scatter_ids=True, **kwargs))
        none = adjacent_overlap(community_graph(scatter_ids=False, **kwargs))
        partial = adjacent_overlap(
            community_graph(scatter_ids=True, scatter_fraction=0.3, **kwargs)
        )
        assert full < partial < none

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            community_graph(64, 4.0, community_size=1)
        with pytest.raises(ValueError):
            community_graph(64, 4.0, community_size=8, within_fraction=1.5)
        with pytest.raises(ValueError):
            community_graph(64, 4.0, community_size=8, scatter_fraction=-0.1)

    def test_no_self_edges_within_communities(self):
        graph = community_graph(256, 12.0, 16, within_fraction=1.0, seed=0)
        assert not graph.has_self_loops()


class TestRmat:
    def test_size_is_power_of_two(self):
        from repro.graphs import rmat_graph

        graph = rmat_graph(8, 6.0, seed=0)
        assert graph.num_vertices == 256

    def test_skewed_degrees(self):
        from repro.graphs import rmat_graph, uniform_graph

        rmat = rmat_graph(9, 8.0, seed=0)
        unif = uniform_graph(512, 8.0, seed=0)
        assert skew(rmat) > skew(unif)

    def test_deterministic(self):
        from repro.graphs import rmat_graph

        a = rmat_graph(7, 4.0, seed=2)
        b = rmat_graph(7, 4.0, seed=2)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_validation(self):
        from repro.graphs import rmat_graph

        with pytest.raises(ValueError):
            rmat_graph(0, 4.0)
        with pytest.raises(ValueError):
            rmat_graph(4, 4.0, a=0.9, b=0.2, c=0.2)
