"""Figure 11: software-technique speedups over DistGNN.

One test per panel (inference / training) and per GNN model; the GCN and
GraphSAGE panels are near-identical in the paper too ("performance is
determined primarily by memory behavior, which is the same for the two
GNNs" — Section 7.1.1).
"""

import pytest
from conftest import run_experiment

from repro.bench.figures import fig11_software_speedups


@pytest.mark.parametrize("gnn", ["gcn", "sage"])
def test_fig11a_inference(benchmark, ctx, gnn):
    exp = run_experiment(benchmark, fig11_software_speedups, ctx, False, gnn)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia", "papers", "twitter"):
        assert values[f"{name} mkl"] < 1.0 < values[f"{name} basic"]
        assert values[f"{name} combined"] == max(
            values[f"{name} {v}"]
            for v in ("mkl", "basic", "fusion", "compression", "combined")
        )
    assert exp.max_paper_deviation() < 0.45


@pytest.mark.parametrize("gnn", ["gcn", "sage"])
def test_fig11b_training(benchmark, ctx, gnn):
    exp = run_experiment(benchmark, fig11_software_speedups, ctx, True, gnn)
    values = {r.label: r.measured for r in exp.rows}
    gains = {
        name: values[f"{name} c-locality"] / values[f"{name} combined"]
        for name in ("products", "wikipedia", "papers", "twitter")
    }
    assert gains["products"] == max(gains.values())  # Fig. 11b's headline
    assert values["products c-locality"] > 1.9
