#!/usr/bin/env python
"""Compare every Graphite execution strategy on one layer.

Runs the six Figure-11 variants (plus the DMA offload) on the same
layer, verifies they all produce identical results, and prints what each
one changed structurally: traffic saved, buffer footprint, prefetches,
cache accesses avoided.

Run:  python examples/kernel_comparison.py
"""

import numpy as np

from repro.dma import DmaOffloadRunner
from repro.graphs import load_dataset, locality_order, synthetic_features
from repro.kernels import (
    BasicKernel,
    CompressedFusedKernel,
    CompressedKernel,
    DistGNNKernel,
    FusedKernel,
    SpMMKernel,
    UpdateParams,
)
from repro.nn import aggregate


def main() -> None:
    graph = load_dataset("products", scale=0.1, seed=0)
    f_in, f_out = 64, 32
    h = synthetic_features(graph, f_in, seed=0, sparsity=0.5)
    rng = np.random.default_rng(0)
    params = UpdateParams(
        weight=(rng.standard_normal((f_in, f_out)) * 0.2).astype(np.float32),
        bias=np.zeros(f_out, dtype=np.float32),
    )
    reference_a = aggregate(graph, h, "gcn")
    reference_h = params.apply(reference_a)
    print(f"graph |V|={graph.num_vertices} |E|={graph.num_edges}, "
          f"features {f_in}->{f_out}, 50% sparse\n")

    print(f"{'variant':<14} {'max err':>9} {'notes'}")

    # Unfused aggregation kernels + a separate GEMM update.
    for kernel in (DistGNNKernel(), SpMMKernel(), BasicKernel()):
        a, stats = kernel.aggregate(graph, h, "gcn")
        err = np.abs(params.apply(a) - reference_h).max()
        note = f"{stats.gathers} gathers"
        if stats.prefetches:
            note += f", {stats.prefetches} prefetch hints"
        print(f"{kernel.name:<14} {err:9.2e} {note}")

    # Compression: same numerics, less DRAM traffic.
    compressed = CompressedKernel()
    a, stats = compressed.aggregate(graph, h, "gcn")
    err = np.abs(params.apply(a) - reference_h).max()
    print(f"{compressed.name:<14} {err:9.2e} "
          f"{stats.dram_bytes_saved / 1e6:.1f} MB traffic saved")

    # Fusion: overlapped phases, one-block buffer in inference.
    for kernel in (FusedKernel(), CompressedFusedKernel()):
        h_out, _, stats = kernel.run_layer(
            graph, h, params, "gcn", keep_aggregation=False
        )
        err = np.abs(h_out - reference_h).max()
        note = f"buffer {stats.peak_buffer_bytes / 1024:.0f} KiB"
        if stats.dram_bytes_saved:
            note += f", {stats.dram_bytes_saved / 1e6:.1f} MB saved"
        print(f"{kernel.name:<14} {err:9.2e} {note}")

    # Locality order: different schedule, same answer.
    order = locality_order(graph)
    a, _ = BasicKernel().aggregate(graph, h, "gcn", order=order)
    err = np.abs(params.apply(a) - reference_h).max()
    print(f"{'c-locality':<14} {err:9.2e} Algorithm 3 processing order")

    # DMA offload: the hardware path.
    runner = DmaOffloadRunner(cache_scale=0.02)
    h_out, _, report = runner.run_layer(graph, h, params=params)
    err = np.abs(h_out - reference_h).max()
    print(f"{'fusion+DMA':<14} {err:9.2e} "
          f"{report.descriptors_issued} descriptors, "
          f"core L1 accesses {report.core_l1_accesses}")

    print("\nall variants agree — Graphite's optimizations are "
          "semantics-preserving")


if __name__ == "__main__":
    main()
