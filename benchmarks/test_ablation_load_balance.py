"""Ablation: static vs dynamic task scheduling (Section 4.1).

"The degrees can vary significantly and sometimes follow a power law
distribution.  To balance the load among threads, we schedule the
parallel tasks with OpenMP's dynamic scheduler."  This quantifies the
choice on every twin.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.graphs import balance_comparison


def _sweep(ctx):
    exp = Experiment("ablation-sched", "Static vs dynamic schedule imbalance")
    for name in ("products", "wikipedia", "papers", "twitter"):
        graph = ctx.graph(name)
        static, dynamic = balance_comparison(graph, task_size=16, threads=28)
        exp.add(f"{name} static imbalance", static.imbalance)
        exp.add(f"{name} dynamic imbalance", dynamic.imbalance)
    return exp


def test_load_balance_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia", "papers", "twitter"):
        assert (
            values[f"{name} dynamic imbalance"]
            <= values[f"{name} static imbalance"] + 1e-9
        )
        # A single hub-heavy task bounds what any scheduler can do;
        # dynamic stays within ~1.7x of perfect balance on every twin.
        assert values[f"{name} dynamic imbalance"] < 1.7
    # twitter's extreme skew makes static scheduling the worst.
    statics = {
        name: values[f"{name} static imbalance"]
        for name in ("products", "wikipedia", "papers", "twitter")
    }
    assert statics["twitter"] >= statics["wikipedia"] * 0.9
