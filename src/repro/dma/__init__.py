"""The Graphite DMA engine: descriptors, engine, and Algorithm-5 offload."""

from .descriptor import (
    DESCRIPTOR_BYTES,
    AggregationDescriptor,
    BinOp,
    IdxType,
    RedOp,
    ValType,
)
from .extensions import (
    AggressivePrefetchEstimate,
    CompressedDmaEstimate,
    aggressive_prefetch_estimate,
    compressed_dma_estimate,
)
from .engine import (
    ENGINE_ISSUE_CYCLES_PER_LINE,
    STATUS_ERROR,
    STATUS_OK,
    DmaAddressSpace,
    DmaEngine,
    DmaEngineStats,
    DmaError,
)
from .offload import DmaOffloadRunner, DmaRunReport, GatherList
from .timeline import (
    DescriptorJob,
    DmaRequestTimeline,
    TimelineEvent,
    TimelineResult,
    figure10_example,
)

__all__ = [
    "DESCRIPTOR_BYTES",
    "AggregationDescriptor",
    "BinOp",
    "IdxType",
    "RedOp",
    "ValType",
    "ENGINE_ISSUE_CYCLES_PER_LINE",
    "STATUS_ERROR",
    "STATUS_OK",
    "DmaAddressSpace",
    "DmaEngine",
    "DmaEngineStats",
    "DmaError",
    "AggressivePrefetchEstimate",
    "CompressedDmaEstimate",
    "aggressive_prefetch_estimate",
    "compressed_dma_estimate",
    "DmaOffloadRunner",
    "DmaRunReport",
    "GatherList",
    "DescriptorJob",
    "DmaRequestTimeline",
    "TimelineEvent",
    "TimelineResult",
    "figure10_example",
]
