"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``datasets`` — print the Table-3 twin statistics.
* ``speedup`` — Figure-11-style speedup column for one dataset.
* ``characterize`` — the full Table-4 layout for one or more datasets.
* ``train`` — full-batch training demo on a twin (``--workers N
  --backend {serial,thread,process}`` runs aggregation on real workers;
  ``--trace FILE`` / ``--json FILE`` emit run telemetry; ``--events
  FILE`` streams per-epoch JSONL events, ``--health`` guards numerics,
  ``--sample-proc`` samples process RSS/CPU, ``--serve-metrics PORT``
  exposes the live registry over HTTP, ``--rules FILE`` evaluates
  declarative SLO rules each epoch).
* ``top`` — live terminal view of an in-progress run: tails the
  epoch-event JSONL, optionally scrapes a ``--serve-metrics`` endpoint,
  and gates on SLO rules (``--check``).
* ``dashboard`` — render an epoch-event log (plus optional run report
  and bench history) into one self-contained offline HTML page.
* ``bench-parallel`` — worker-count sweep of the chunk executor
  (also accepts ``--trace`` / ``--json``).
* ``profile`` — trace one tiny synthetic training run end to end and
  print the span tree, counters, and environment (``--sampling HZ``
  additionally runs the statistical sampling profiler and prints the
  per-phase sampled-time table; ``--flame FILE`` writes collapsed
  stacks for flamegraph tooling).
* ``profile diff`` — compare the sampled profiles of two run reports
  and exit nonzero when a phase regressed past the threshold.
* ``serve`` — train briefly, then answer per-vertex / per-batch
  classification and embedding queries over HTTP (request batcher +
  LRU embedding cache + admission control; every request carries a
  trace id and the ``serve.*`` metric families feed ``--serve-metrics``
  / ``repro top`` / the built-in serving SLO rules).
* ``loadgen`` — drive a running serving endpoint: open-loop Poisson
  arrivals (``--rate``) or closed-loop concurrency, with client-side
  latency percentiles.
* ``bench-serve`` — in-process serving benchmark; records qps +
  p50/p95/p99 latency as a ``bench-serve`` perf-history row.
* ``experiment`` — run one named paper artifact (fig2 ... tab5).

Global flags: ``-v/--verbose`` (repeatable), ``-q/--quiet``, and
``--version``.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys
from typing import List, Optional

import numpy as np

logger = logging.getLogger(__name__)


def _configure_logging(verbosity: int) -> None:
    """Map -v/-q counts to the ``repro`` logger level.

    Default WARNING; ``-v`` INFO; ``-vv`` DEBUG; ``-q`` ERROR.
    """
    if verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    elif verbosity == 0:
        level = logging.WARNING
    else:
        level = logging.ERROR
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace, meta: dict, extras: Optional[dict] = None):
    """Enable run telemetry when ``--trace``/``--json``/``--perfetto``/
    ``--sample-proc``/``--serve-metrics`` was given.

    Yields the live tracer (or None when telemetry stays off) and, on
    exit, writes the JSONL trace, the run-report JSON, and/or the
    Perfetto (Chrome trace-event) file.  ``--sample-proc`` additionally
    runs the background resource sampler for the block and prints a
    peak-RSS / mean-CPU summary.  ``--serve-metrics PORT`` activates
    telemetry on its own and serves the live registry over HTTP
    (``/metrics`` Prometheus text, ``/snapshot.json`` deltas) for the
    duration of the block; port 0 binds an ephemeral port.

    ``extras`` is a mutable dict the caller may fill *inside* the block
    (keys ``events``, ``sparsity``, and ``alerts``); it is read on exit
    so the run report can embed the epoch-event records, sparsity
    profile, and SLO rule-engine verdict.  When ``--history FILE`` is
    given (bench commands that append a perf-history row), telemetry
    activates even without an output flag and the built run report is
    stashed back into ``extras["report"]`` so the caller can derive a
    :class:`~repro.obs.history.HistoryEntry` from it.
    """
    from . import obs

    trace_path = getattr(args, "trace", None)
    json_path = getattr(args, "json", None)
    perfetto_path = getattr(args, "perfetto", None)
    sample_proc = getattr(args, "sample_proc", False)
    history_path = getattr(args, "history", None)
    serve_port = getattr(args, "serve_metrics", None)
    sampling_hz = getattr(args, "sampling", None)
    flame_path = getattr(args, "flame", None)
    if (
        not trace_path
        and not json_path
        and not perfetto_path
        and not sample_proc
        and not history_path
        and serve_port is None
        and sampling_hz is None
        and not flame_path
    ):
        yield None
        return
    tracer, metrics = obs.enable()
    # --flame alone implies sampling at the default rate; the profiler
    # joins sampled stacks against the tracer's live span stacks so each
    # tick lands in a phase (aggregate/update/backward/compress).
    profiler = obs.NULL_PROFILER
    if sampling_hz is not None or flame_path:
        profiler = obs.SamplingProfiler(
            tracer=tracer,
            hz=sampling_hz or obs.DEFAULT_SAMPLING_HZ,
            registry=metrics,
        )
        obs.set_profiler(profiler)
        profiler.start()
    # --serve-metrics implies --sample-proc: a scrape without proc.*
    # gauges answers none of the questions a live watcher asks.
    sampler = (
        obs.ResourceSampler(metrics)
        if sample_proc or serve_port is not None
        else obs.NULL_SAMPLER
    )
    sampler.start()
    server = obs.NULL_SERVER
    if serve_port is not None:
        server = obs.MetricsServer(metrics, port=serve_port)
        server.start()
        print(
            f"serving live metrics on {server.url} "
            "(/metrics, /snapshot.json)"
        )
    try:
        yield tracer
    finally:
        server.stop()
        sampler.stop()
        profile_data = profiler.stop()
        obs.disable()
        # ``extras`` may arrive as an (empty, falsy) dict the caller will
        # read after the block — never replace it, fill it in place.
        extras = {} if extras is None else extras
        records = [
            span.to_record()
            for span in sorted(tracer.spans(), key=lambda s: s.span_id)
        ]
        if profile_data is not None:
            print("\n== sampled profile ==")
            print(
                obs.render_profile(
                    profile_data, obs.span_phase_seconds(records)
                )
            )
        if flame_path and profile_data is not None:
            count = obs.write_collapsed(flame_path, profile_data)
            print(f"wrote {count} folded stacks to {flame_path}")
        if sample_proc:
            snap = metrics.snapshot()
            rss = snap.get("proc.rss_bytes.samples", {})
            cpu = snap.get("proc.cpu_percent.samples", {})
            print(
                f"sampled process {sampler.samples} times: "
                f"peak RSS {rss.get('max', 0.0) / 2**20:.1f} MiB, "
                f"mean CPU {cpu.get('mean', 0.0):.0f}%"
            )
        if trace_path:
            count = tracer.export_jsonl(trace_path)
            print(f"wrote {count} spans to {trace_path}")
        if json_path or history_path:
            report = obs.build_run_report(
                tracer,
                metrics,
                meta=meta,
                events=extras.get("events"),
                sparsity=extras.get("sparsity"),
                alerts=extras.get("alerts"),
                profile=profile_data,
            )
            extras["report"] = report
            if json_path:
                obs.write_json(json_path, report)
                print(f"wrote run report to {json_path}")
        if perfetto_path:
            count = obs.export_perfetto(
                perfetto_path, tracer, metrics, meta=meta, profile=profile_data
            )
            print(f"wrote {count} span events to {perfetto_path} (Perfetto)")


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .graphs import DATASET_NAMES, graph_stats, load_dataset, paper_row

    for name in DATASET_NAMES:
        stats = graph_stats(load_dataset(name, scale=args.scale))
        vertices_m, edges_m, degree, f_input = paper_row(name)
        print(stats.as_row())
        print(
            f"{'':<13}paper: |V|={vertices_m}M |E|={edges_m}M "
            f"deg={degree} F_input={f_input}"
        )
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from .graphs import input_feature_size, load_dataset
    from .perf import CostModel, VARIANTS

    graph = load_dataset(args.dataset, scale=args.scale)
    model = CostModel(graph)
    f_input = input_feature_size(args.dataset, 1.0)
    mode = "training" if args.training else "inference"
    print(
        f"{args.dataset} (twin scale {args.scale}), {mode}, "
        f"{args.sparsity:.0%} feature sparsity — speedup over distgnn:"
    )
    variants = [v for v in VARIANTS if v not in ("randomized", "f-locality")]
    if not args.training:
        variants = [v for v in variants if v != "c-locality"]
    for variant in variants:
        if variant == "distgnn":
            continue
        speedup = model.speedup(
            variant, f_input, args.hidden,
            training=args.training, sparsity=args.sparsity,
        )
        print(f"  {variant:<12} {speedup:5.2f}x")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .graphs import input_feature_size, load_dataset
    from .perf.report import characterization_table

    names = args.datasets or ["products"]
    graphs = {name: load_dataset(name, scale=args.scale) for name in names}
    f_input = {name: input_feature_size(name, 1.0) for name in names}
    table = characterization_table(graphs, f_input, sparsity=args.sparsity)
    print(table.render())
    return 0


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {value!r}")
    return parsed


def _make_aggregation_kernel(
    backend: str, workers: int, task_size: int = 64, engine: str = None
):
    """Optional BasicKernel for the --workers/--backend/--engine flags.

    Returns None (the SpMM oracle) only for the all-default single
    serial worker with no explicit engine choice.
    """
    if backend == "serial" and workers == 1 and engine is None:
        return None
    from .kernels import BasicKernel
    from .parallel import ChunkExecutor

    return BasicKernel(
        task_size=task_size, executor=ChunkExecutor(backend, workers),
        engine=engine,
    )


def _cmd_train(args: argparse.Namespace) -> int:
    from .graphs import load_dataset, synthetic_features
    from .nn import Adam, Trainer, build_model
    from .obs.health import HealthError, HealthMonitor

    # Trainer.fit(verbose=True) reports epochs through this logger at
    # INFO; raise it so `repro train` shows the lines without -v.
    logging.getLogger("repro.nn.training").setLevel(logging.INFO)

    graph = load_dataset(args.dataset, scale=args.scale)
    features = synthetic_features(graph, args.features, seed=args.seed)
    labels = np.random.default_rng(args.seed).integers(
        0, args.classes, graph.num_vertices
    )
    model = build_model(
        args.model, args.features, args.hidden, args.classes,
        num_layers=args.layers, dropout=args.dropout, seed=args.seed,
    )
    if args.shards > 1:
        return _train_sharded(args, graph, features, labels, model)
    kernel = _make_aggregation_kernel(args.backend, args.workers, engine=args.engine)
    if kernel is not None:
        print(
            f"aggregation: basic kernel ({kernel.engine} engine), "
            f"{args.backend} x{args.workers}"
        )
    meta = {
        "command": "train",
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "epochs": args.epochs,
        "workers": args.workers,
        "backend": args.backend,
        "engine": kernel.engine if kernel is not None else "spmm",
    }
    event_log = None
    if args.events:
        from .obs.events import EventLog

        event_log = EventLog(args.events, meta=meta)
    health = HealthMonitor() if args.health else None
    rules = None
    if args.rules:
        from .obs.rules import RuleEngine, RuleParseError, load_rules

        try:
            rules = RuleEngine(load_rules(args.rules))
        except (OSError, RuleParseError) as error:
            print(f"{args.rules}: {error}", file=sys.stderr)
            return 2
        print(f"slo: loaded {len(rules.rules)} rule(s) from {args.rules}")
    trainer = Trainer(
        model, Adam(model, lr=args.lr), profile_sparsity=True,
        aggregation_kernel=kernel, event_log=event_log, health=health,
        rules=rules,
    )
    extras: dict = {}
    status = 0
    try:
        with _telemetry(args, meta, extras=extras):
            try:
                trainer.fit(
                    graph, features, labels, epochs=args.epochs, verbose=True
                )
            finally:
                extras["events"] = event_log
                extras["sparsity"] = trainer.history.sparsity
                extras["alerts"] = rules
    except HealthError as error:
        print(f"\ntraining aborted by health monitor:\n{error}", file=sys.stderr)
        status = 1
    finally:
        if event_log is not None:
            event_log.close()
            print(f"wrote {len(event_log)} epoch events to {args.events}")
    history = trainer.history
    if history.epochs:
        print("\nhidden-feature sparsity (Section 2.2):")
        print(history.sparsity.summary())
    if health is not None:
        print(health.summary())
    if rules is not None:
        print(rules.summary())
    return status


def _train_sharded(args, graph, features, labels, model) -> int:
    """The ``--shards N`` path of ``repro train``: partition-parallel
    training on the sharded shared-memory trainer."""
    from .nn import Adam
    from .parallel.sharded import ShardedTrainer

    if args.dropout:
        print("sharded training requires --dropout 0", file=sys.stderr)
        return 2
    for flag, name in ((args.events, "--events"), (args.health, "--health"),
                       (args.rules, "--rules")):
        if flag:
            print(
                f"note: {name} is not supported with --shards; ignoring",
                file=sys.stderr,
            )
    delayed = tuple(args.delay_aggregation or ())
    meta = {
        "command": "train",
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "epochs": args.epochs,
        "shards": args.shards,
        "partition": args.partition,
        "backend": args.backend,
        "delayed_layers": list(delayed),
        "halo_refresh": args.halo_refresh,
    }
    trainer = ShardedTrainer(
        graph, model, Adam(model, lr=args.lr),
        num_shards=args.shards,
        partition_method=args.partition,
        backend=args.backend,
        delayed_layers=delayed,
        halo_refresh=args.halo_refresh,
    )
    extras: dict = {}
    with _telemetry(args, meta, extras=extras):
        with trainer:
            trainer.fit(features, labels, epochs=0)  # partition + attach
            part = trainer.partition
            print(
                f"partition: {args.partition} x{args.shards} "
                f"(edge cut {part.edge_cut(graph)} = "
                f"{part.cut_fraction(graph):.1%}, "
                f"balance {part.balance:.3f}), "
                f"worker payload {max(trainer.setup_bytes)} B"
            )
            halo = sum(shard.num_halo for shard in trainer.shards)
            print(
                f"halo vertices: {halo} total "
                f"({halo / max(1, graph.num_vertices):.2f}x of |V|)"
                + (f", delayed layers {list(delayed)} "
                   f"refresh every {args.halo_refresh}" if delayed else "")
            )
            for _ in range(args.epochs):
                result = trainer.train_epoch()
                print(
                    f"epoch {result.epoch:>3}  loss {result.loss:.4f}  "
                    f"train-acc {result.train_accuracy:.3f}  "
                    f"halo {trainer.last_halo_bytes / 2**20:.2f} MiB"
                )
    return 0


def _bench_training_epochs(args, graph, engine) -> dict:
    """Time full training epochs: batched backward vs the SpMM fallback.

    Returns ``train.*`` history metrics.  The batched configuration is
    the production path (``Trainer(backward_engine=True)``); the
    oracle-backward configuration keeps the transpose-SpMM fallback that
    rebuilds Â per layer per epoch — the pre-batched-backward engine,
    measured as the speedup baseline.  One warmup epoch per
    configuration amortizes JIT specialization and the cached-transpose
    build; each configuration is then timed ``--train-trials`` times and
    the *minimum* per-epoch time is reported — the standard noise-robust
    statistic for a deterministic workload, since scheduling jitter only
    ever adds time.
    """
    import time as time_module

    from .graphs import synthetic_features
    from .kernels import BasicKernel
    from .nn import Adam, Trainer, build_model

    classes = 8
    features = synthetic_features(
        graph, args.train_features, seed=args.seed, sparsity=0.5
    )
    labels = np.random.default_rng(args.seed).integers(
        0, classes, graph.num_vertices
    )
    # The sweep's --task-size is tuned for the forward microbenchmark and
    # must stay comparable to earlier history rows; training defaults to
    # one chunk per epoch pass (no chunking overhead) unless overridden.
    task_size = args.train_task_size or graph.num_vertices

    def epoch_seconds(backward_engine: bool) -> float:
        model = build_model(
            "gcn", args.train_features, args.train_hidden, classes,
            num_layers=args.train_layers, seed=args.seed,
        )
        kernel = BasicKernel(task_size=task_size, engine=engine)
        trainer = Trainer(
            model, Adam(model, lr=0.01),
            aggregation_kernel=kernel, backward_engine=backward_engine,
        )
        trainer.train_epoch(graph, features, labels)  # warmup
        best = float("inf")
        for _ in range(max(1, args.train_trials)):
            start = time_module.perf_counter()
            for _ in range(args.train_epochs):
                trainer.train_epoch(graph, features, labels)
            elapsed = time_module.perf_counter() - start
            best = min(best, elapsed / args.train_epochs)
        return best

    oracle_s = epoch_seconds(backward_engine=False)
    batched_s = epoch_seconds(backward_engine=True)
    return {
        "train.epoch_oracle_backward_s": oracle_s,
        "train.epoch_batched_s": batched_s,
        "train.backward_speedup_x": oracle_s / batched_s if batched_s else 0.0,
    }


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    from .bench.harness import Experiment
    from .graphs import load_dataset, synthetic_features
    from .kernels import (
        BasicKernel,
        CompressedFusedKernel,
        CompressedKernel,
        FusedKernel,
        UpdateParams,
    )
    from .parallel import ChunkExecutor

    graph = load_dataset(args.dataset, scale=args.scale)
    h = synthetic_features(graph, args.features, seed=args.seed, sparsity=0.5)
    rng = np.random.default_rng(args.seed)
    params = UpdateParams(
        weight=(rng.standard_normal((args.features, args.hidden)) * 0.1).astype(
            np.float32
        ),
        bias=np.zeros(args.hidden, dtype=np.float32),
    )
    from .kernels import resolve_engine

    engine = resolve_engine(args.engine)
    exp = Experiment(
        "bench-parallel",
        f"{args.kernel} kernel on {args.dataset} "
        f"({args.backend} backend, {engine} engine)",
        )
    meta = {
        "command": "bench-parallel",
        "dataset": args.dataset,
        "scale": args.scale,
        "kernel": args.kernel,
        "backend": args.backend,
        "workers": list(args.workers),
        "engine": engine,
    }
    extras: dict = {}
    with _telemetry(args, meta, extras=extras):
        for workers in args.workers:
            if args.backend == "serial" and workers != 1:
                exp.note(f"skipping workers={workers}: serial backend runs one worker")
                continue
            executor = ChunkExecutor(args.backend, workers)
            if args.kernel == "basic":
                kernel = BasicKernel(
                    task_size=args.task_size, executor=executor, engine=engine
                )
                _, stats = kernel.aggregate(graph, h, args.aggregator)
            elif args.kernel == "compression":
                kernel = CompressedKernel(
                    task_size=args.task_size, executor=executor, engine=engine
                )
                _, stats = kernel.aggregate(graph, h, args.aggregator)
            elif args.kernel == "fusion":
                kernel = FusedKernel(executor=executor, engine=engine)
                _, _, stats = kernel.run_layer(graph, h, params, args.aggregator)
            else:  # combined
                kernel = CompressedFusedKernel(executor=executor, engine=engine)
                _, _, stats = kernel.run_layer(graph, h, params, args.aggregator)
            report = kernel.last_report
            exp.add(f"{workers} workers wall time", report.wall_time_s, unit="s")
            exp.add(f"{workers} workers imbalance", report.imbalance, unit="x")
            chunks = ",".join(str(c) for c in report.chunks_per_worker)
            exp.note(
                f"{workers} workers: {stats.tasks} tasks -> [{chunks}] chunks/worker"
            )
    print(exp.render())

    # Training-epoch bench runs *outside* the telemetry block: its spans
    # must not pollute the sweep's span.* totals, which the perf gate
    # compares like-for-like against earlier history rows.
    train_metrics: dict = {}
    if args.train_epochs:
        train_metrics = _bench_training_epochs(args, graph, engine)
        print(
            f"training ({args.train_epochs} epochs, "
            f"{args.train_layers} layers, F={args.train_features}): "
            f"oracle-backward {train_metrics['train.epoch_oracle_backward_s']*1e3:.1f} ms/epoch, "
            f"batched {train_metrics['train.epoch_batched_s']*1e3:.1f} ms/epoch "
            f"({train_metrics['train.backward_speedup_x']:.2f}x)"
        )

    if args.history:
        from .obs import history as hist

        report = extras.get("report")
        if report is None:  # pragma: no cover - _telemetry always builds it
            print("no run report captured; history row skipped", file=sys.stderr)
            return 2
        label = args.history_label or f"bench-parallel-{engine}"
        entry = hist.entry_from_run_report(report, label=label)
        entry.metrics.update(train_metrics)
        hist.append_history(args.history, entry)
        print(f"appended history entry {label!r} to {args.history}")
    return 0


def _cmd_bench_sharded(args: argparse.Namespace) -> int:
    """Scaling-efficiency benchmark of the sharded trainer.

    Sweeps shard counts on a synthetic twin (``--scale 10`` ≈ 10× the
    usual dataset sizes), reporting epochs/s, parallel efficiency
    relative to the smallest swept count, and halo traffic — the
    ``bench-parallel-sharded`` history row.
    """
    import time as time_module

    from .bench.harness import Experiment
    from .graphs import load_dataset, synthetic_features
    from .nn import Adam, build_model
    from .parallel.sharded import ShardedTrainer

    print(f"generating {args.dataset} twin at scale {args.scale}x ...")
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    features = synthetic_features(graph, args.features, seed=args.seed)
    labels = np.random.default_rng(args.seed).integers(
        0, args.classes, graph.num_vertices
    )
    delayed = tuple(args.delay_aggregation or ())
    exp = Experiment(
        "bench-sharded",
        f"sharded {args.partition}-partition training on {args.dataset} "
        f"{args.scale}x ({graph.num_vertices} vertices, "
        f"{graph.num_edges} edges; {args.backend} backend)",
    )
    meta = {
        "command": "bench-sharded",
        "dataset": args.dataset,
        "scale": args.scale,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "shards": list(args.shards),
        "partition": args.partition,
        "backend": args.backend,
        "epochs": args.epochs,
        "delayed_layers": list(delayed),
        "halo_refresh": args.halo_refresh,
    }
    sharded_metrics: dict = {}
    extras: dict = {}
    base_rate: Optional[float] = None
    base_shards: Optional[int] = None
    with _telemetry(args, meta, extras=extras):
        for shards in args.shards:
            model = build_model(
                "gcn", args.features, args.hidden, args.classes,
                num_layers=args.layers, dropout=0.0, seed=args.seed,
            )
            trainer = ShardedTrainer(
                graph, model, Adam(model, lr=args.lr),
                num_shards=shards,
                partition_method=args.partition,
                backend=args.backend,
                delayed_layers=delayed,
                halo_refresh=args.halo_refresh,
            )
            with trainer:
                trainer.fit(features, labels, epochs=1)  # setup + warmup
                start = time_module.perf_counter()
                for _ in range(args.epochs):
                    trainer.train_epoch()
                elapsed = time_module.perf_counter() - start
                epoch_s = elapsed / args.epochs
                rate = 1.0 / epoch_s
                halo_mb = trainer.last_halo_bytes / 2**20
                cut = trainer.partition.cut_fraction(graph)
                setup_max = max(trainer.setup_bytes)
            if base_rate is None:
                base_rate, base_shards = rate, shards
            efficiency = (rate / shards) / (base_rate / base_shards)
            exp.add(f"{shards} shards epoch time", epoch_s, unit="s")
            exp.add(f"{shards} shards throughput", rate, unit="epochs/s")
            exp.add(f"{shards} shards efficiency", efficiency, unit="x")
            exp.note(
                f"{shards} shards: cut {cut:.1%}, halo {halo_mb:.2f} MiB/epoch,"
                f" worker payload {setup_max} B"
            )
            prefix = f"sharded.shards{shards}"
            sharded_metrics[f"{prefix}.epoch_s"] = epoch_s
            sharded_metrics[f"{prefix}.epochs_per_s"] = rate
            sharded_metrics[f"{prefix}.efficiency"] = efficiency
            sharded_metrics[f"{prefix}.halo_mb_per_epoch"] = halo_mb
            sharded_metrics[f"{prefix}.setup_bytes"] = float(setup_max)
            sharded_metrics["sharded.partition.cut_fraction"] = cut
    print(exp.render())

    if args.history:
        from .obs import history as hist

        report = extras.get("report")
        if report is None:  # pragma: no cover - _telemetry always builds it
            print("no run report captured; history row skipped", file=sys.stderr)
            return 2
        label = args.history_label or "bench-parallel-sharded"
        entry = hist.entry_from_run_report(report, label=label, meta=meta)
        entry.metrics.update(sharded_metrics)
        hist.append_history(args.history, entry)
        print(f"appended history entry {label!r} to {args.history}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Trace one tiny synthetic training run and print the telemetry."""
    from . import obs
    from .graphs import power_law_graph, synthetic_features
    from .kernels import BasicKernel, CompressedKernel
    from .nn import Adam, Trainer, build_model
    from .parallel import ChunkExecutor

    graph = power_law_graph(
        args.vertices, args.degree, seed=args.seed, name="synthetic"
    )
    features = synthetic_features(
        graph, args.features, seed=args.seed, sparsity=0.5
    )
    labels = np.random.default_rng(args.seed).integers(
        0, args.classes, graph.num_vertices
    )
    model = build_model(
        "gcn", args.features, args.hidden, args.classes, seed=args.seed
    )
    executor = ChunkExecutor(args.backend, args.workers)
    if args.kernel == "basic":
        kernel = BasicKernel(executor=executor, engine=args.engine)
    else:
        kernel = CompressedKernel(executor=executor, engine=args.engine)
    trainer = Trainer(model, Adam(model, lr=0.01), aggregation_kernel=kernel)

    tracer, metrics = obs.enable()
    profiler = obs.NULL_PROFILER
    if args.sampling is not None or args.flame:
        profiler = obs.SamplingProfiler(
            tracer=tracer,
            hz=args.sampling or obs.DEFAULT_SAMPLING_HZ,
            registry=metrics,
        )
        obs.set_profiler(profiler)
        profiler.start()
    server = obs.NULL_SERVER
    if args.serve_metrics is not None:
        server = obs.MetricsServer(metrics, port=args.serve_metrics).start()
        print(
            f"serving live metrics on {server.url} "
            "(/metrics, /snapshot.json)"
        )
    try:
        history = trainer.fit(graph, features, labels, epochs=args.epochs)
    finally:
        server.stop()
        profile_data = profiler.stop()
        obs.disable()

    records = [
        span.to_record()
        for span in sorted(tracer.spans(), key=lambda s: s.span_id)
    ]
    print(
        f"profiled {args.epochs} epoch(s) on {graph.num_vertices} vertices, "
        f"{args.kernel} kernel ({kernel.engine} engine), "
        f"{args.backend} x{args.workers} "
        f"(final loss {history.final_loss:.4f})"
    )
    print("\n== span tree ==")
    print(obs.render_span_tree(records))
    print("\n== aggregation counters (all kernel spans) ==")
    for key, value in sorted(tracer.aggregate_counters("kernel.*").items()):
        print(f"  {key:<24} {value:g}")
    print("\n== environment ==")
    for key, value in obs.environment_info().items():
        print(f"  {key:<16} {value}")

    from .perf import CostModel

    attribution = obs.attribute_run(
        records,
        cost_model=CostModel(graph),
        sparsity=0.5,
        metrics_snapshot=metrics.snapshot(),
    )
    print("\n== bottleneck attribution ==")
    print(attribution.render())

    if profile_data is not None:
        print("\n== sampled profile ==")
        print(obs.render_profile(profile_data, obs.span_phase_seconds(records)))

    meta = {
        "command": "profile",
        "vertices": args.vertices,
        "kernel": args.kernel,
        "engine": kernel.engine,
        "workers": args.workers,
        "backend": args.backend,
        "epochs": args.epochs,
    }
    if profile_data is not None:
        meta["sampling_hz"] = profile_data.hz
    if args.trace:
        count = tracer.export_jsonl(args.trace)
        print(f"\nwrote {count} spans to {args.trace}")
    if args.json:
        obs.write_json(
            args.json,
            obs.build_run_report(
                tracer, metrics, meta=meta, profile=profile_data
            ),
        )
        print(f"wrote run report to {args.json}")
    if args.perfetto:
        count = obs.export_perfetto(
            args.perfetto, tracer, metrics, meta=meta, profile=profile_data
        )
        print(f"wrote {count} span events to {args.perfetto} (Perfetto)")
    if args.attrib:
        attribution.write_json(args.attrib)
        print(f"wrote attribution report to {args.attrib}")
    if args.flame:
        if profile_data is None:  # pragma: no cover - flame implies sampling
            print("no sampled profile captured; flame output skipped")
        else:
            count = obs.write_collapsed(args.flame, profile_data)
            print(f"wrote {count} folded stacks to {args.flame}")
    return 0


def _cmd_profile_diff(args: argparse.Namespace) -> int:
    """Compare two sampled-profile captures; exit 1 on phase regression."""
    import json as json_module

    from .obs import load_profile_document, profile_diff

    try:
        baseline = load_profile_document(args.baseline)
        candidate = load_profile_document(args.candidate)
    except (OSError, ValueError, json_module.JSONDecodeError) as error:
        print(f"profile diff: {error}", file=sys.stderr)
        return 2
    diff = profile_diff(
        baseline,
        candidate,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    print(diff.render())
    return 0 if diff.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    """Gate a run against the perf history: exit 1 on regression."""
    import json as json_module

    from .obs import history as hist

    entries = hist.load_history(args.history, label=args.label)
    if args.current:
        with open(args.current) as handle:
            doc = json_module.load(handle)
        if "experiments" in doc:
            current = hist.entry_from_bench_results(doc, label=args.label or "bench")
        elif "spans" in doc:
            current = hist.entry_from_run_report(doc, label=args.label or "run")
        else:
            print(f"{args.current}: neither a BENCH results nor a run-report JSON")
            return 2
        baseline = entries
    else:
        if len(entries) < 2:
            print(
                f"{args.history}: need >= 2 entries"
                + (f" with label {args.label!r}" if args.label else "")
                + " to compare (gate passes trivially)"
            )
            return 0
        current = entries[-1]
        baseline = entries[:-1]
    if not baseline:
        print("no baseline entries yet — gate passes trivially")
        return 0
    report = hist.compare_entries(
        baseline,
        current,
        threshold=args.threshold,
        baseline_runs=args.baseline_runs,
        higher_is_better=hist.default_higher_is_better(current.metrics),
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_dashboard(args: argparse.Namespace) -> int:
    """Render the epoch-event log (+ report, + history) into one HTML file."""
    from .obs import validate_events_file
    from .obs.dashboard import write_dashboard

    if not args.events and not args.report and not args.history:
        print(
            "dashboard: need an events file, --report, or --history",
            file=sys.stderr,
        )
        return 2
    if args.events:
        try:
            validate_events_file(args.events)
        except ValueError as error:
            print(f"{args.events}: {error}", file=sys.stderr)
            return 2
    write_dashboard(
        args.output,
        events_path=args.events,
        report_path=args.report,
        history_path=args.history,
        title=args.title,
    )
    print(f"wrote dashboard to {args.output}")
    return 0


def _resolve_events_path(path: Optional[str]) -> Optional[str]:
    """Map a ``repro top`` PATH operand onto an epoch-event file.

    A file path is used as-is (it may not exist yet — the tail waits for
    it).  A directory is searched for ``*events*.jsonl`` first, then any
    ``*.jsonl``, taking the most recently modified match.
    """
    import glob
    import os

    if path is None or not os.path.isdir(path):
        return path
    for pattern in ("*events*.jsonl", "*.jsonl"):
        matches = glob.glob(os.path.join(path, pattern))
        if matches:
            return max(matches, key=os.path.getmtime)
    return None


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a training run (events tail + metrics scrape)."""
    from .obs.live import LiveRunMonitor
    from .obs.rules import RuleEngine, RuleParseError, load_rules

    events_path = _resolve_events_path(args.path)
    if events_path is None and not args.metrics_url:
        print(
            f"top: no epoch-event JSONL found under {args.path!r} and no "
            "--metrics-url; nothing to watch",
            file=sys.stderr,
        )
        return 2
    rules = None
    if args.rules:
        try:
            rules = RuleEngine(load_rules(args.rules))
        except (OSError, RuleParseError) as error:
            print(f"{args.rules}: {error}", file=sys.stderr)
            return 2
    if args.check and rules is None:
        print("top: --check needs --rules FILE", file=sys.stderr)
        return 2
    monitor = LiveRunMonitor(
        events_path or "", metrics_url=args.metrics_url, rules=rules
    )
    if args.follow:
        monitor.follow(
            interval_s=args.interval, refresh_limit=args.refresh_limit
        )
    else:  # --once (the default): one poll, one frame
        monitor.poll()
        print(monitor.render())
    if args.check and not rules.ok:
        print(rules.summary(), file=sys.stderr)
        return 1
    return 0


def _build_serving_service(args) -> tuple:
    """Train a small model and wrap it in an InferenceService.

    Shared by ``repro serve`` and ``repro bench-serve``: dataset twin +
    synthetic features/labels, a short training run (the service answers
    from whatever the model learned), then the serving pipeline with the
    cache/batcher knobs from the command line.
    """
    from .graphs import load_dataset, synthetic_features
    from .nn import Adam, Trainer, build_model
    from .serve import InferenceService

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    features = synthetic_features(graph, args.features, seed=args.seed)
    labels = np.random.default_rng(args.seed).integers(
        0, args.classes, graph.num_vertices
    )
    model = build_model(
        args.model, args.features, args.hidden, args.classes,
        num_layers=args.layers, seed=args.seed,
    )
    if args.epochs:
        print(
            f"training {args.model} x{args.layers} on {args.dataset} "
            f"{args.scale}x for {args.epochs} epoch(s) ..."
        )
        trainer = Trainer(model, Adam(model, lr=args.lr))
        trainer.fit(graph, features, labels, epochs=args.epochs)
    service = InferenceService(
        graph,
        features,
        model,
        cache_capacity=args.cache_capacity,
        cache_max_age_s=args.cache_max_age,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue=args.max_queue,
        fanouts=args.fanout or None,
        seed=args.seed,
    )
    return graph, service


def _cmd_serve(args: argparse.Namespace) -> int:
    """Train briefly, then answer inference queries over HTTP."""
    import time as time_module

    from .obs.rules import RuleEngine, RuleParseError, default_serve_rules, load_rules
    from .serve import ServingServer

    rules = None
    if args.rules:
        try:
            rules = RuleEngine(load_rules(args.rules))
        except (OSError, RuleParseError) as error:
            print(f"{args.rules}: {error}", file=sys.stderr)
            return 2
        print(f"slo: loaded {len(rules.rules)} rule(s) from {args.rules}")
    elif not args.no_rules:
        rules = RuleEngine(default_serve_rules())
    graph, service = _build_serving_service(args)
    meta = {
        "command": "serve",
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "epochs": args.epochs,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "assembly": "sampled" if args.fanout else "exact",
    }
    from .obs import get_metrics

    extras: dict = {}
    status = 0
    with _telemetry(args, meta, extras=extras):
        registry = get_metrics()
        with ServingServer(service, port=args.port, host=args.host) as server:
            print(
                f"serving inference on {server.url} "
                "(/v1/predict, /healthz, /stats.json)"
            )
            deadline = (
                time_module.monotonic() + args.duration
                if args.duration is not None
                else None
            )
            try:
                while deadline is None or time_module.monotonic() < deadline:
                    step = 1.0
                    if deadline is not None:
                        step = min(step, max(0.0, deadline - time_module.monotonic()))
                    time_module.sleep(step)
                    if rules is not None:
                        rules.evaluate(registry.snapshot())
            except KeyboardInterrupt:
                print("\nshutting down")
        extras["alerts"] = rules
        stats = service.stats()
        print(
            f"served {stats['requests']} request(s), "
            f"{stats['errors']} error(s); cache hit rate "
            f"{stats['cache']['hit_rate']:.0%}; "
            f"{stats['batcher']['batches']} batch(es)"
        )
    if rules is not None:
        print(rules.summary())
        if args.check and not rules.ok:
            return 1
    return status


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running serving endpoint and print client-side latency."""
    from .serve import concurrency_sweep, run_loadgen, write_results

    if args.sweep:
        results = concurrency_sweep(
            args.url,
            levels=args.sweep,
            duration_s=args.duration,
            num_vertices=args.vertices,
            mode=args.mode,
            seed=args.seed,
        )
    else:
        results = [
            run_loadgen(
                args.url,
                duration_s=args.duration,
                rate=args.rate,
                concurrency=args.concurrency,
                num_vertices=args.vertices,
                mode=args.mode,
                seed=args.seed,
                timeout_s=args.timeout,
            )
        ]
    for result in results:
        print(result.render())
    if args.out:
        write_results(args.out, results)
        print(f"wrote {len(results)} result(s) to {args.out}")
    total = sum(r.requests for r in results)
    completed = total - sum(r.errors for r in results)
    return 0 if total and completed else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Serving benchmark: in-process server + closed-loop load, one
    ``bench-serve`` history row (qps + latency percentiles)."""
    from .bench.harness import Experiment
    from .serve import ServingServer, run_loadgen

    graph, service = _build_serving_service(args)
    meta = {
        "command": "bench-serve",
        "dataset": args.dataset,
        "scale": args.scale,
        "model": args.model,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "concurrency": args.concurrency,
        "duration_s": args.duration,
        "query_vertices": args.vertices,
        "max_batch": args.max_batch,
        "assembly": "sampled" if args.fanout else "exact",
    }
    extras: dict = {}
    with _telemetry(args, meta, extras=extras):
        with ServingServer(service, port=0, host=args.host) as server:
            print(f"serving inference on {server.url}")
            if args.warmup > 0:
                run_loadgen(
                    server.url,
                    duration_s=args.warmup,
                    concurrency=args.concurrency,
                    num_vertices=args.vertices,
                    mode=args.mode,
                    seed=args.seed + 1,
                )
            result = run_loadgen(
                server.url,
                duration_s=args.duration,
                concurrency=args.concurrency,
                num_vertices=args.vertices,
                mode=args.mode,
                seed=args.seed,
            )
        stats = service.stats()
    print(result.render())
    print(
        f"server: cache hit rate {stats['cache']['hit_rate']:.0%}, "
        f"{stats['batcher']['batches']} batch(es), "
        f"{stats['batcher']['rejected']} rejected"
    )
    exp = Experiment(
        "bench-serve",
        f"closed-loop x{args.concurrency} serving bench on {args.dataset} "
        f"{args.scale}x ({graph.num_vertices} vertices)",
    )
    exp.add("throughput", result.qps, unit="qps")
    exp.add("latency p50", result.latency.percentile(50.0) * 1e3, unit="ms")
    exp.add("latency p95", result.latency.percentile(95.0) * 1e3, unit="ms")
    exp.add("latency p99", result.latency.percentile(99.0) * 1e3, unit="ms")
    print(exp.render())
    if result.requests == 0 or result.errors == result.requests:
        print("bench-serve: no successful requests", file=sys.stderr)
        return 1
    if args.history:
        from .obs import history as hist

        report = extras.get("report")
        if report is None:  # pragma: no cover - _telemetry always builds it
            print("no run report captured; history row skipped", file=sys.stderr)
            return 2
        label = args.history_label or "bench-serve"
        entry = hist.entry_from_run_report(report, label=label, meta=meta)
        entry.metrics.update(result.metrics())
        entry.metrics["serve.cache_hit_rate"] = stats["cache"]["hit_rate"]
        hist.append_history(args.history, entry)
        print(f"appended history entry {label!r} to {args.history}")
    return 0


_EXPERIMENTS = {
    "fig2": ("fig2_gpu_sampling", True),
    "fig3": ("fig3_topdown", True),
    "tab3": ("tab3_datasets", True),
    "fig11a": ("fig11_software_speedups", True),
    "fig11b": ("fig11_software_speedups", True),
    "fig13": ("fig13_fusion_breakdown", True),
    "fig14": ("fig14_compression_sweep", True),
    "fig15": ("fig15_locality", True),
    "tab4": ("tab4_characterization", True),
    "fig12a": ("fig12_dma_speedups", False),
    "fig12b": ("fig12_dma_speedups", False),
    "fig16": ("fig16_tracking_table", False),
    "tab5": ("tab5_cache_reduction", False),
    "sec732": ("sec732_memory_system", False),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .bench import figures

    key = args.name
    if key not in _EXPERIMENTS:
        print(f"unknown experiment {key!r}; choose from {sorted(_EXPERIMENTS)}")
        return 2
    fn_name, takes_ctx = _EXPERIMENTS[key]
    fn = getattr(figures, fn_name)
    kwargs = {}
    if key == "fig11b":
        kwargs["training"] = True
    if key == "fig12b":
        kwargs["training"] = True
    if key == "fig14":
        kwargs["training"] = args.training
    if takes_ctx:
        experiment = fn(figures.BenchContext(scale=args.scale), **kwargs)
    else:
        experiment = fn(**kwargs)
    print(experiment.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graphite (ISCA 2022) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="decrease log verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="Table-3 twin statistics")
    p.add_argument("--scale", type=float, default=0.5)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("speedup", help="Figure-11 speedup column")
    p.add_argument("dataset", choices=["products", "wikipedia", "papers", "twitter"])
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--sparsity", type=float, default=0.5)
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=_cmd_speedup)

    p = sub.add_parser("characterize", help="Table-4 characterization")
    p.add_argument("datasets", nargs="*", default=None)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--sparsity", type=float, default=0.5)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("train", help="full-batch training demo")
    p.add_argument("dataset", choices=["products", "wikipedia", "papers", "twitter"])
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--model", choices=["gcn", "sage"], default="gcn")
    p.add_argument("--features", type=int, default=64)
    p.add_argument("--hidden", type=int, default=64)
    p.add_argument("--classes", type=int, default=8)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--dropout", type=float, default=0.0)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--lr", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=_positive_int, default=1)
    p.add_argument(
        "--backend", choices=["serial", "thread", "process"], default="serial"
    )
    p.add_argument(
        "--engine", choices=["loop", "batched"], default=None,
        help="chunk-execution engine (default: batched, or $REPRO_ENGINE); "
        "forces the basic kernel even for serial x1",
    )
    p.add_argument(
        "--shards", type=_positive_int, default=1,
        help="partition-parallel sharded training with N shard workers "
        "(--backend picks serial/thread/process; process runs the "
        "zero-copy shared-memory pool); 1 = classic full-graph trainer",
    )
    p.add_argument(
        "--partition", choices=["contiguous", "bfs", "greedy"],
        default="greedy",
        help="edge-cut partition method for --shards > 1",
    )
    p.add_argument(
        "--delay-aggregation", type=int, nargs="*", default=[],
        metavar="LAYER",
        help="layers (>= 1) running DistGNN-style delayed aggregation: "
        "their halo refreshes only every --halo-refresh epochs",
    )
    p.add_argument(
        "--halo-refresh", type=_positive_int, default=8,
        help="refresh period (epochs) for --delay-aggregation layers",
    )
    p.add_argument("--trace", metavar="FILE", help="write a JSONL span trace")
    p.add_argument("--json", metavar="FILE", help="write a run-report JSON")
    p.add_argument(
        "--perfetto", metavar="FILE",
        help="write a Perfetto/chrome://tracing trace JSON",
    )
    p.add_argument(
        "--events", metavar="FILE", default=None,
        help="stream one JSONL epoch event per epoch (loss, accuracies, "
        "per-layer grad/weight norms, sparsity, compression savings)",
    )
    p.add_argument(
        "--health", action="store_true",
        help="guard numerics each epoch (NaN/Inf, loss divergence, "
        "stall); fatal issues abort the run with a diagnostic",
    )
    p.add_argument(
        "--sample-proc", action="store_true",
        help="sample process RSS / CPU%% / threads in the background "
        "and publish proc.* metrics",
    )
    p.add_argument(
        "--serve-metrics", metavar="PORT", type=int, default=None,
        help="serve the live metrics registry over HTTP for the run "
        "(GET /metrics Prometheus text, GET /snapshot.json deltas); "
        "0 binds an ephemeral port; implies --sample-proc",
    )
    p.add_argument(
        "--rules", metavar="FILE", default=None,
        help="evaluate declarative SLO rules each epoch "
        "('[name:] metric [stat] op threshold [for K]' per line); "
        "violations surface as alerts.* metrics, slo: event issues, "
        "and run-report entries",
    )
    p.add_argument(
        "--sampling", metavar="HZ", type=_positive_float, default=None,
        help="run the sampling profiler at HZ: walk the interpreter "
        "stacks, attribute samples to span phases, print the per-phase "
        "table, and embed the profile in --json/--perfetto outputs",
    )
    p.add_argument(
        "--flame", metavar="FILE", default=None,
        help="write the sampled profile as collapsed stacks "
        "(flamegraph.pl / speedscope input); implies --sampling "
        "at the default 97 Hz",
    )
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "bench-parallel", help="worker-count sweep of the chunk executor"
    )
    p.add_argument("dataset", choices=["products", "wikipedia", "papers", "twitter"])
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument(
        "--kernel",
        choices=["basic", "fusion", "compression", "combined"],
        default="basic",
    )
    p.add_argument(
        "--aggregator", choices=["gcn", "sage-mean", "mean"], default="gcn"
    )
    p.add_argument("--features", type=int, default=32)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--task-size", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=_positive_int, nargs="+", default=[1, 2, 4])
    p.add_argument(
        "--backend", choices=["serial", "thread", "process"], default="thread"
    )
    p.add_argument(
        "--engine", choices=["loop", "batched"], default=None,
        help="chunk-execution engine (default: batched, or $REPRO_ENGINE)",
    )
    p.add_argument(
        "--train-epochs", type=int, default=0, metavar="N",
        help="additionally time N full training epochs per backward "
        "configuration (batched backward vs the transpose-SpMM fallback) "
        "and report the epoch speedup",
    )
    p.add_argument(
        "--train-features", type=_positive_int, default=16,
        help="input feature width of the training bench (default: %(default)s)",
    )
    p.add_argument(
        "--train-hidden", type=_positive_int, default=16,
        help="hidden width of the training bench (default: %(default)s)",
    )
    p.add_argument(
        "--train-layers", type=_positive_int, default=3,
        help="layer count of the training bench (default: %(default)s)",
    )
    p.add_argument(
        "--train-trials", type=_positive_int, default=3,
        help="timed repetitions per configuration; the minimum per-epoch "
        "time is reported (default: %(default)s)",
    )
    p.add_argument(
        "--train-task-size", type=int, default=0, metavar="T",
        help="chunk size for the training bench kernels "
        "(default: 0 = one chunk covering the whole graph)",
    )
    p.add_argument(
        "--history", metavar="FILE", default=None,
        help="append one history entry (sweep span totals + train.* "
        "metrics) to this JSONL perf history",
    )
    p.add_argument(
        "--history-label", default=None,
        help="history entry label (default: bench-parallel-<engine>)",
    )
    p.add_argument("--trace", metavar="FILE", help="write a JSONL span trace")
    p.add_argument("--json", metavar="FILE", help="write a run-report JSON")
    p.add_argument(
        "--perfetto", metavar="FILE",
        help="write a Perfetto/chrome://tracing trace JSON",
    )
    p.add_argument(
        "--serve-metrics", metavar="PORT", type=int, default=None,
        help="serve the live metrics registry over HTTP during the sweep "
        "(0 = ephemeral port); implies --sample-proc",
    )
    p.set_defaults(func=_cmd_bench_parallel)

    p = sub.add_parser(
        "bench-sharded",
        help="scaling-efficiency benchmark of the sharded trainer "
        "(synthetic twins 10-100x via --scale)",
    )
    p.add_argument(
        "dataset", nargs="?", default="products",
        choices=["products", "wikipedia", "papers", "twitter"],
    )
    p.add_argument("--scale", type=float, default=10.0)
    p.add_argument("--shards", type=_positive_int, nargs="+", default=[1, 2, 4])
    p.add_argument(
        "--partition", choices=["contiguous", "bfs", "greedy"],
        default="greedy",
    )
    p.add_argument(
        "--backend", choices=["serial", "thread", "process"],
        default="process",
    )
    p.add_argument("--epochs", type=_positive_int, default=3)
    p.add_argument("--features", type=int, default=32)
    p.add_argument("--hidden", type=int, default=32)
    p.add_argument("--classes", type=int, default=8)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--lr", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--delay-aggregation", type=int, nargs="*", default=[],
        metavar="LAYER",
    )
    p.add_argument("--halo-refresh", type=_positive_int, default=8)
    p.add_argument("--trace", metavar="FILE", help="write a JSONL span trace")
    p.add_argument("--json", metavar="FILE", help="write a run-report JSON")
    p.add_argument(
        "--history", metavar="FILE", default=None,
        help="append this run's metrics as a JSONL perf-history row",
    )
    p.add_argument(
        "--history-label", default=None,
        help="history row label (default bench-parallel-sharded)",
    )
    p.set_defaults(func=_cmd_bench_sharded)

    p = sub.add_parser(
        "profile",
        help="trace a tiny synthetic training run; print spans + counters",
    )
    p.add_argument("--vertices", type=_positive_int, default=2000)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--features", type=int, default=32)
    p.add_argument("--hidden", type=int, default=32)
    p.add_argument("--classes", type=int, default=8)
    p.add_argument("--epochs", type=_positive_int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kernel", choices=["basic", "compression"], default="basic")
    p.add_argument(
        "--engine", choices=["loop", "batched"], default=None,
        help="chunk-execution engine (default: batched, or $REPRO_ENGINE)",
    )
    p.add_argument("--workers", type=_positive_int, default=2)
    p.add_argument(
        "--backend", choices=["serial", "thread", "process"], default="thread"
    )
    p.add_argument("--trace", metavar="FILE", help="write a JSONL span trace")
    p.add_argument("--json", metavar="FILE", help="write a run-report JSON")
    p.add_argument(
        "--perfetto", metavar="FILE",
        help="write a Perfetto/chrome://tracing trace JSON",
    )
    p.add_argument(
        "--attrib", metavar="FILE",
        help="write the bottleneck-attribution report JSON",
    )
    p.add_argument(
        "--serve-metrics", metavar="PORT", type=int, default=None,
        help="serve the live metrics registry over HTTP during the "
        "profiled run (0 = ephemeral port)",
    )
    p.add_argument(
        "--sampling", metavar="HZ", type=_positive_float, default=None,
        help="run the sampling profiler at HZ: walk the interpreter "
        "stacks, attribute samples to span phases "
        "(aggregate/update/backward/compress), and print the per-phase "
        "and top-function tables",
    )
    p.add_argument(
        "--flame", metavar="FILE", default=None,
        help="write the sampled profile as collapsed stacks "
        "(flamegraph.pl / speedscope input); implies --sampling "
        "at the default 97 Hz",
    )
    p.set_defaults(func=_cmd_profile)
    psub = p.add_subparsers(
        dest="profile_command", metavar="{diff}",
        help="profile subcommands (omit to trace a run)",
    )
    pd = psub.add_parser(
        "diff",
        help="compare two sampled-profile captures "
        "(run reports or profile dicts); exit 1 on phase regression",
    )
    pd.add_argument(
        "baseline",
        help="baseline run-report JSON (from --sampling --json FILE)",
    )
    pd.add_argument(
        "candidate", help="candidate run-report JSON to judge"
    )
    pd.add_argument(
        "--threshold", type=_positive_float, default=0.25,
        help="relative per-phase regression tolerance "
        "(default: %(default)s)",
    )
    pd.add_argument(
        "--min-seconds", type=_positive_float, default=0.02,
        help="absolute per-phase slack in seconds — deltas below this "
        "never gate (default: %(default)s)",
    )
    pd.set_defaults(func=_cmd_profile_diff)

    p = sub.add_parser(
        "compare",
        help="gate a run against BENCH_history.jsonl (exit 1 on regression)",
    )
    p.add_argument(
        "--history", metavar="FILE", default="BENCH_history.jsonl",
        help="JSONL perf history (default: %(default)s)",
    )
    p.add_argument(
        "--label", default=None,
        help="only compare entries with this label",
    )
    p.add_argument(
        "--current", metavar="FILE", default=None,
        help="judge this BENCH_results.json / run-report JSON against the "
        "whole history (default: last history entry vs the rest)",
    )
    p.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative regression tolerance (default: %(default)s)",
    )
    p.add_argument(
        "--baseline-runs", type=_positive_int, default=5,
        help="median window size (default: %(default)s)",
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "dashboard",
        help="render an epoch-event log into a self-contained HTML page",
    )
    p.add_argument(
        "events", nargs="?", default=None,
        help="epoch-event JSONL from `train --events` (validated first)",
    )
    p.add_argument(
        "-o", "--output", metavar="FILE", default="run_dashboard.html",
        help="output HTML path (default: %(default)s)",
    )
    p.add_argument(
        "--report", metavar="FILE", default=None,
        help="run-report JSON (adds span + per-technique sections)",
    )
    p.add_argument(
        "--history", metavar="FILE", default=None,
        help="BENCH_history.jsonl (adds the wall-time trend chart)",
    )
    p.add_argument("--title", default=None, help="page title")
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "top",
        help="live terminal view of a training run "
        "(tails the epoch-event JSONL, scrapes a metrics endpoint)",
    )
    p.add_argument(
        "path", nargs="?", default=None,
        help="epoch-event JSONL from `train --events` (or a directory "
        "containing one); may still be growing",
    )
    p.add_argument(
        "--follow", action="store_true",
        help="refresh continuously until interrupted (default: one frame)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render exactly one frame and exit (the default)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="--follow refresh interval in seconds (default: %(default)s)",
    )
    p.add_argument(
        "--refresh-limit", type=_positive_int, default=None, metavar="N",
        help="stop --follow after N frames (default: until interrupted)",
    )
    p.add_argument(
        "--metrics-url", metavar="URL", default=None,
        help="scrape proc.*/executor.*/alerts.* gauges from a "
        "--serve-metrics endpoint (e.g. http://127.0.0.1:9500)",
    )
    p.add_argument(
        "--rules", metavar="FILE", default=None,
        help="evaluate SLO rules per observed epoch; firing rules show "
        "in the view",
    )
    p.add_argument(
        "--check", action="store_true",
        help="with --rules: exit 1 if any rule fired (CI gate)",
    )
    p.set_defaults(func=_cmd_top)

    def _serving_model_args(p: argparse.ArgumentParser) -> None:
        """Flags ``serve`` and ``bench-serve`` share: the model to train
        and the cache/batcher knobs of the serving pipeline."""
        p.add_argument(
            "dataset", nargs="?", default="products",
            choices=["products", "wikipedia", "papers", "twitter"],
        )
        p.add_argument("--scale", type=float, default=0.1)
        p.add_argument("--model", choices=["gcn", "sage"], default="gcn")
        p.add_argument("--features", type=int, default=32)
        p.add_argument("--hidden", type=int, default=32)
        p.add_argument("--classes", type=int, default=8)
        p.add_argument("--layers", type=int, default=2)
        p.add_argument("--epochs", type=int, default=2,
                       help="training epochs before serving (0 = random init)")
        p.add_argument("--lr", type=float, default=0.01)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument(
            "--fanout", type=_positive_int, nargs="*", default=[],
            metavar="F",
            help="per-layer neighbor-sampling fanouts (input layer first); "
            "empty = exact full-neighborhood assembly",
        )
        p.add_argument(
            "--cache-capacity", type=_positive_int, default=4096,
            help="LRU embedding-cache entries (default: %(default)s)",
        )
        p.add_argument(
            "--cache-max-age", type=_positive_float, default=None,
            metavar="S",
            help="staleness bound: cached rows older than S seconds are "
            "recomputed (default: never stale)",
        )
        p.add_argument(
            "--max-batch", type=_positive_int, default=32,
            help="request-coalescing batch size cap (default: %(default)s)",
        )
        p.add_argument(
            "--max-wait-ms", type=float, default=2.0,
            help="max time a lone request waits for batch company "
            "(default: %(default)s ms)",
        )
        p.add_argument(
            "--max-queue", type=_positive_int, default=128,
            help="admission-queue bound; beyond it requests shed with 503 "
            "(default: %(default)s)",
        )

    p = sub.add_parser(
        "serve",
        help="online inference service over a freshly trained model",
    )
    _serving_model_args(p)
    p.add_argument(
        "--port", type=int, default=8099,
        help="inference HTTP port (0 = ephemeral; default: %(default)s)",
    )
    p.add_argument(
        "--duration", type=_positive_float, default=None, metavar="S",
        help="serve for S seconds then exit (default: until Ctrl-C)",
    )
    p.add_argument(
        "--rules", metavar="FILE", default=None,
        help="SLO rules evaluated once per second against the live "
        "registry (default: the built-in serve.* rule set)",
    )
    p.add_argument(
        "--no-rules", action="store_true",
        help="disable the built-in serving SLO rules",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit 1 when any SLO rule fired during the run",
    )
    p.add_argument("--trace", metavar="FILE", help="write a JSONL span trace")
    p.add_argument("--json", metavar="FILE", help="write a run-report JSON")
    p.add_argument(
        "--perfetto", metavar="FILE",
        help="write a Perfetto/chrome://tracing trace JSON",
    )
    p.add_argument(
        "--serve-metrics", metavar="PORT", type=int, default=None,
        help="additionally serve the live metrics registry over HTTP "
        "(0 = ephemeral); implies --sample-proc",
    )
    p.add_argument("--sample-proc", action="store_true",
                   help="sample process RSS/CPU and publish proc.* metrics")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a serving endpoint: open-loop arrivals or "
        "closed-loop concurrency",
    )
    p.add_argument("url", help="base URL of a running `repro serve`")
    p.add_argument("--duration", type=_positive_float, default=3.0)
    p.add_argument(
        "--rate", type=_positive_float, default=None, metavar="QPS",
        help="open-loop Poisson arrival rate (default: closed loop)",
    )
    p.add_argument(
        "--concurrency", type=_positive_int, default=4,
        help="worker threads (closed loop) / dispatch pool size (open loop)",
    )
    p.add_argument(
        "--sweep", type=_positive_int, nargs="+", default=None,
        metavar="C",
        help="closed-loop sweep over these concurrency levels",
    )
    p.add_argument(
        "--vertices", type=_positive_int, default=64,
        help="query-vertex id range [0, N) (default: %(default)s)",
    )
    p.add_argument("--mode", choices=["classify", "embedding"],
                   default="classify")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=_positive_float, default=10.0)
    p.add_argument("--out", metavar="FILE",
                   help="write the result rows as JSON")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "bench-serve",
        help="serving benchmark: in-process server + closed-loop load; "
        "records qps + latency percentiles as a history row",
    )
    _serving_model_args(p)
    p.add_argument("--duration", type=_positive_float, default=3.0)
    p.add_argument("--warmup", type=float, default=0.5,
                   help="untimed warmup seconds (default: %(default)s)")
    p.add_argument("--concurrency", type=_positive_int, default=4)
    p.add_argument(
        "--vertices", type=_positive_int, default=64,
        help="query-vertex id range [0, N) (default: %(default)s)",
    )
    p.add_argument("--mode", choices=["classify", "embedding"],
                   default="classify")
    p.add_argument("--trace", metavar="FILE", help="write a JSONL span trace")
    p.add_argument("--json", metavar="FILE", help="write a run-report JSON")
    p.add_argument(
        "--history", metavar="FILE", default=None,
        help="append qps + latency percentiles as a JSONL perf-history row",
    )
    p.add_argument(
        "--history-label", default=None,
        help="history row label (default bench-serve)",
    )
    p.set_defaults(func=_cmd_bench_serve)

    p = sub.add_parser("experiment", help="run one paper artifact")
    p.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose - args.quiet)
    logger.info("running %s", args.command)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
