"""Exact DRAM-traffic and FLOP accounting per kernel variant.

Every speedup in the paper's software evaluation is a story about bytes
that do or do not cross the memory bus:

* the ``a_k`` round trip that fusion removes (Figure 5),
* the zero elements that compression strips (Section 4.3),
* the gathered vectors that a better order keeps in cache (Section 4.4).

This module counts those bytes from first principles, given the graph's
shape, the layer widths, the gather hit rate, and the feature sparsity.
The cost model then converts byte counts into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..tensors.compression import traffic_ratio

BYTES_PER_FEATURE = 4  # fp32
BYTES_PER_INDEX = 4  # 32-bit column indices (idx_t in the descriptor)
BYTES_PER_FACTOR = 4  # fp32 normalization factors


@dataclass(frozen=True)
class LayerShape:
    """Static shape of one GNN layer's work.

    Attributes:
        num_vertices: |V|.
        num_edges: |E| (without self loops).
        f_in: input feature vector length.
        f_out: output feature vector length.
    """

    num_vertices: int
    num_edges: int
    f_in: int
    f_out: int

    @property
    def num_gathers(self) -> int:
        """Feature-vector gathers per aggregation: one per edge + self."""
        return self.num_edges + self.num_vertices

    @property
    def in_vector_bytes(self) -> int:
        return self.f_in * BYTES_PER_FEATURE

    @property
    def feature_matrix_bytes(self) -> int:
        return self.num_vertices * self.in_vector_bytes


@dataclass
class PhaseTraffic:
    """Bytes and FLOPs of one execution phase."""

    dram_read: float = 0.0
    dram_write: float = 0.0
    flops: float = 0.0
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def dram_total(self) -> float:
        return self.dram_read + self.dram_write

    def scaled(self, factor: float) -> "PhaseTraffic":
        return PhaseTraffic(
            dram_read=self.dram_read * factor,
            dram_write=self.dram_write * factor,
            flops=self.flops * factor,
            notes=dict(self.notes),
        )

    def merged(self, other: "PhaseTraffic") -> "PhaseTraffic":
        notes = dict(self.notes)
        for key, value in other.notes.items():
            notes[key] = notes.get(key, 0.0) + value
        return PhaseTraffic(
            dram_read=self.dram_read + other.dram_read,
            dram_write=self.dram_write + other.dram_write,
            flops=self.flops + other.flops,
            notes=notes,
        )


def aggregation_traffic(
    shape: LayerShape,
    gather_hit_rate: float,
    feature_sparsity: float = 0.0,
    compressed: bool = False,
    write_a: bool = True,
) -> PhaseTraffic:
    """Traffic of the aggregation phase.

    Args:
        shape: layer shape.
        gather_hit_rate: fraction of gathered feature vectors served from
            cache (from :mod:`repro.perf.reuse`).
        feature_sparsity: zero fraction of the input feature matrix.
        compressed: apply Section 4.3 mask compression to feature traffic.
        write_a: whether the aggregation output goes to DRAM.  True for
            the unfused kernels and fused training; False for fused
            inference, whose ``a`` block lives in a reusable cache buffer
            (Figure 5c).
    """
    if not 0.0 <= gather_hit_rate <= 1.0:
        raise ValueError(f"hit rate must be in [0, 1], got {gather_hit_rate}")
    gathers = shape.num_gathers
    feature_read = gathers * (1.0 - gather_hit_rate) * shape.in_vector_bytes
    if compressed:
        feature_read *= traffic_ratio(feature_sparsity)
    index_read = shape.num_edges * BYTES_PER_INDEX
    factor_read = gathers * BYTES_PER_FACTOR
    a_bytes = shape.num_vertices * shape.in_vector_bytes
    # ψ multiply + reduction add per gathered element.
    flops = 2.0 * gathers * shape.f_in
    traffic = PhaseTraffic(
        dram_read=feature_read + index_read + factor_read,
        dram_write=a_bytes if write_a else 0.0,
        flops=flops,
    )
    traffic.notes.update(
        feature_read=feature_read,
        index_read=index_read,
        factor_read=factor_read,
        a_write=float(a_bytes if write_a else 0.0),
    )
    return traffic


def update_traffic(
    shape: LayerShape,
    feature_sparsity: float = 0.0,
    compressed: bool = False,
    fused: bool = False,
) -> PhaseTraffic:
    """Traffic of the update phase: ``h_out = ReLU(W a + b)``.

    Fused execution consumes ``a`` straight from cache, so the ``a`` read
    disappears (Figure 5b/5c).  The output ``h_out`` feeds the next
    layer's aggregation and is compressible when sparse.
    """
    a_read = 0.0 if fused else shape.num_vertices * shape.in_vector_bytes
    h_out_write = shape.num_vertices * shape.f_out * BYTES_PER_FEATURE
    if compressed:
        h_out_write *= traffic_ratio(feature_sparsity)
    flops = 2.0 * shape.num_vertices * shape.f_in * shape.f_out
    traffic = PhaseTraffic(dram_read=a_read, dram_write=h_out_write, flops=flops)
    traffic.notes.update(a_read=a_read, h_out_write=h_out_write)
    return traffic


def backward_traffic(
    shape: LayerShape,
    gather_hit_rate: float,
    feature_sparsity: float = 0.0,
    compressed: bool = False,
) -> PhaseTraffic:
    """Traffic of one layer's backward pass.

    Computes grads of ``h_{k-1}``, ``a_k``, ``W_k``, ``b_k`` (Section
    7.1.1): ReLU mask apply, two GEMMs (one more than forward), and a
    transposed aggregation that scatters ``grad_a`` back along edges.

    ReLU backward masks ``grad_pre`` with the same zeros as the forward
    activation, so the gradient streams through the GEMMs carry the
    feature sparsity and compress like the features do; ``a`` and
    ``grad_a`` are reduction outputs and stay dense.
    """
    n, f_in, f_out = shape.num_vertices, shape.f_in, shape.f_out
    bpf = BYTES_PER_FEATURE
    ratio = traffic_ratio(feature_sparsity) if compressed else 1.0
    # grad_W = a^T grad_pre : read a (dense) + grad_pre (sparse, streamed).
    gemm_reads = n * f_in * bpf + n * f_out * bpf * ratio
    # grad_a = grad_pre W^T : write grad_a (dense reduction output).
    grad_a_write = n * f_in * bpf
    # Transposed aggregation: gather grad_a along reverse edges.
    gathers = shape.num_gathers
    grad_gather = gathers * (1.0 - gather_hit_rate) * f_in * bpf
    index_read = shape.num_edges * BYTES_PER_INDEX
    factor_read = gathers * BYTES_PER_FACTOR
    grad_h_write = n * f_in * bpf * ratio
    flops = 2.0 * (2.0 * n * f_in * f_out) + 2.0 * gathers * f_in + n * f_out
    elementwise_read = 2.0 * n * f_out * bpf
    elementwise_write = ratio * n * f_out * bpf
    traffic = PhaseTraffic(
        dram_read=elementwise_read + gemm_reads + grad_gather + index_read + factor_read,
        dram_write=elementwise_write + grad_a_write + grad_h_write,
        flops=flops,
    )
    traffic.notes.update(
        grad_gather=grad_gather,
        gemm_reads=gemm_reads,
        grad_a_write=grad_a_write,
        grad_h_write=grad_h_write,
    )
    return traffic


def decompress_elements(shape: LayerShape, compressed: bool) -> float:
    """Feature elements run through mask expand/compress per aggregation.

    Every gathered vector is decompressed lane-by-lane regardless of its
    sparsity (the expand instruction touches all lanes), which is why
    compression *costs* time at low sparsity (Figure 14's 10% points).
    """
    if not compressed:
        return 0.0
    return float(shape.num_gathers) * shape.f_in
