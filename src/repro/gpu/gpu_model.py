"""GPU epoch-time model for the Figure 2 motivation experiment.

The paper trains a sampled GraphSAGE on a Titan V with the sampling on a
12-core CPU and finds sampling + mini-batching take over 80% of epoch
time.  We run the real sampler of :mod:`repro.gpu.sampler` on the twin
graph to obtain the epoch's sampling *work*, then price both sides:

* CPU sampling: per-sampled-edge and per-batch costs calibrated to the
  published breakdown (53.7 s sampling / 7.0 s layers at batch 1024 on
  full ogbn-products);
* GPU layers: transfer of the gathered input features over PCIe plus
  layer compute at sustained GPU throughput, with a fixed per-batch
  launch/sync overhead — the term that makes small batches
  disproportionally expensive (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..graphs.csr import CSRGraph
from .sampler import EpochSamplingStats

#: CPU-side cost per sampled edge (random neighbor pick + dedup hashing),
#: calibrated so the full-scale products run lands near Figure 2.
SAMPLING_NS_PER_EDGE = 24.0

#: Fixed CPU cost per mini-batch (batch assembly, tensor slicing).
SAMPLING_US_PER_BATCH = 2500.0

#: PCIe 3.0 x16 effective host-to-device bandwidth.
PCIE_BYTES_PER_S = 12e9

#: Titan V sustained fp32 throughput on GNN layers.
GPU_FLOPS = 14.9e12 * 0.30

#: Per-batch kernel launch + synchronization overhead on the GPU side.
GPU_US_PER_BATCH = 250.0


@dataclass(frozen=True)
class GpuEpochBreakdown:
    """Figure 2's two bars for one batch size."""

    batch_size: int
    sampling_seconds: float
    gnn_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.sampling_seconds + self.gnn_seconds

    @property
    def sampling_share(self) -> float:
        return self.sampling_seconds / self.total_seconds


def epoch_breakdown(
    graph: CSRGraph,
    batch_size: int,
    fanouts: Sequence[int] = (15, 10, 5),
    feature_len: int = 100,
    hidden_len: int = 256,
    seed: int = 0,
) -> GpuEpochBreakdown:
    """Measure sampling work on the twin and price the epoch.

    Training is priced as forward + backward (~2.5x forward FLOPs).
    """
    stats = EpochSamplingStats.collect(graph, batch_size, fanouts, seed=seed)

    sampling = (
        stats.sampled_edges * SAMPLING_NS_PER_EDGE * 1e-9
        + stats.num_batches * SAMPLING_US_PER_BATCH * 1e-6
    )

    # Device-side: input feature transfer + layer compute.
    transfer_bytes = stats.input_vertices * feature_len * 4.0
    widths = [feature_len] + [hidden_len] * len(fanouts)
    flops = 0.0
    # Per layer: aggregation (2 flops/edge/feature) + update GEMM.
    flops += 2.0 * stats.sampled_edges * feature_len  # first-layer gathers
    flops += 2.0 * stats.frontier_vertices * widths[0] * widths[1]
    for k in range(1, len(fanouts)):
        flops += 2.0 * stats.sampled_edges / len(fanouts) * widths[k]
        flops += 2.0 * stats.frontier_vertices / len(fanouts) * widths[k] * widths[k + 1]
    flops *= 2.5  # forward + backward
    gnn = (
        transfer_bytes / PCIE_BYTES_PER_S
        + flops / GPU_FLOPS
        + stats.num_batches * GPU_US_PER_BATCH * 1e-6
    )
    return GpuEpochBreakdown(
        batch_size=batch_size,
        sampling_seconds=sampling,
        gnn_seconds=gnn,
    )
