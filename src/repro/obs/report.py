"""Run-report builder: spans + metrics + environment in one JSON doc.

A *run report* is the machine-readable record of one invocation —
``repro train --json run.json`` or ``repro profile`` — joining:

* ``environment`` — git SHA, Python / NumPy versions, platform, CPU
  count, package version;
* ``meta`` — what was run (command, dataset, workers, backend, ...),
  supplied by the caller;
* ``spans`` — the tracer's flat span records plus the nested tree;
* ``metrics`` — the registry snapshot;
* ``counter_totals`` — counters summed over all spans, for quick diffs
  between runs without walking the tree.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

from .metrics import MetricsRegistry
from .trace import Tracer, span_tree

#: Version of the run-report document layout.
REPORT_SCHEMA_VERSION = 1


def _git_sha() -> Optional[str]:
    """HEAD commit of the repo containing this package, if any."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_info() -> Dict[str, Any]:
    """The reproducibility metadata attached to every run report."""
    import numpy

    from .. import __version__

    return {
        "repro_version": __version__,
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def build_run_report(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    events: Optional[Any] = None,
    sparsity: Optional[Any] = None,
    alerts: Optional[Any] = None,
    profile: Optional[Any] = None,
) -> Dict[str, Any]:
    """Assemble the run-report document (plain dict, JSON-serializable).

    ``events`` embeds a training run's epoch records — either an
    :class:`~repro.obs.events.EventLog` (its buffered records are taken)
    or a plain list of record dicts.  ``sparsity`` embeds a
    :class:`~repro.tensors.sparsity.SparsityProfile` (or its
    ``to_dict()``), so a single report joins model quality, the §2.2
    sparsity trajectory, and the span/metric telemetry.  ``alerts``
    embeds the SLO verdict — either a
    :class:`~repro.obs.rules.RuleEngine` (its ``to_dict()`` is taken) or
    a pre-built dict — so a report alone answers "did the run stay
    inside its envelope".  ``profile`` embeds a sampling-profiler capture
    (a :class:`~repro.obs.profiler.ProfileData` or its ``to_dict()``)
    together with ``span_phase_seconds``, the kernel-span wall time per
    phase the sampled table is sanity-checked against.
    """
    records = (
        [span.to_record() for span in sorted(tracer.spans(), key=lambda s: s.span_id)]
        if tracer is not None
        else []
    )
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "environment": environment_info(),
        "meta": dict(meta or {}),
        "spans": records,
        "span_tree": span_tree(records),
        "metrics": metrics.snapshot() if metrics is not None else {},
        "counter_totals": tracer.aggregate_counters() if tracer is not None else {},
    }
    if tracer is not None:
        report["trace_epoch_unix"] = tracer.epoch_unix
    if events is not None:
        report["epoch_events"] = list(getattr(events, "events", events))
    if sparsity is not None:
        report["sparsity"] = (
            sparsity.to_dict() if hasattr(sparsity, "to_dict") else dict(sparsity)
        )
    if alerts is not None:
        report["alerts"] = (
            alerts.to_dict() if hasattr(alerts, "to_dict") else dict(alerts)
        )
    if profile is not None:
        from .profiler import span_phase_seconds

        report["profile"] = (
            profile.to_dict() if hasattr(profile, "to_dict") else dict(profile)
        )
        report["span_phase_seconds"] = span_phase_seconds(records)
    return report


def write_json(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
