"""Cross-process worker telemetry: real spans, merged metrics, profiles.

Process-backend workers run their own tracer/registry (and optionally a
sampling profiler) inside the worker process and ship the results home
with the chunk outputs; the executor adopts the spans under its own
span, merges the metrics under a ``worker{k}.`` prefix, and absorbs the
folded stacks.  Thread/serial backends keep the synthesized worker
spans (marked ``synthesized``) since their work already runs under the
parent tracer.
"""

import numpy as np
import pytest

from repro import obs
from repro.graphs import power_law_graph, synthetic_features
from repro.parallel import (
    BasicAggregationWorkload,
    ChunkExecutor,
    build_chunk_plan,
)


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(240, avg_degree=8.0, seed=11)


@pytest.fixture(scope="module")
def inputs(graph):
    h = synthetic_features(graph, 12, seed=3, sparsity=0.3)
    order = np.arange(graph.num_vertices, dtype=np.int64)
    return h, order


def _run(graph, inputs, backend, workers, task_size=32):
    h, order = inputs
    workload = BasicAggregationWorkload(graph, h, "gcn", order)
    plan = build_chunk_plan(graph, task_size, order)
    return ChunkExecutor(backend, workers).run(workload, plan)


def _worker_spans(tracer):
    return [s.to_record() for s in tracer.spans() if s.name == "worker"]


class TestProcessWorkerSpans:
    def test_real_spans_replace_synthesized_ones(self, graph, inputs):
        tracer, _ = obs.enable()
        try:
            with tracer.span("kernel.basic") as kernel_span:
                _run(graph, inputs, "process", 2)
        finally:
            obs.disable()
        workers = _worker_spans(tracer)
        assert len(workers) == 2
        for record in workers:
            attrs = record["attrs"]
            # A real in-worker span carries the worker process's pid and
            # no synthesized marker.
            assert attrs.get("pid") not in (None, 0)
            assert "synthesized" not in attrs
            assert attrs["backend"] == "process"
            assert record["parent_id"] == kernel_span.span.span_id
            assert record["duration_s"] > 0.0

    def test_worker_pids_differ_from_parent(self, graph, inputs):
        import os

        tracer, _ = obs.enable()
        try:
            _run(graph, inputs, "process", 2)
        finally:
            obs.disable()
        pids = {r["attrs"]["pid"] for r in _worker_spans(tracer)}
        assert os.getpid() not in pids

    def test_thread_backend_spans_stay_synthesized(self, graph, inputs):
        tracer, _ = obs.enable()
        try:
            _run(graph, inputs, "thread", 2)
        finally:
            obs.disable()
        workers = _worker_spans(tracer)
        assert len(workers) == 2
        assert all(r["attrs"].get("synthesized") is True for r in workers)


class TestProcessWorkerMetrics:
    def test_metrics_merge_under_worker_prefix(self, graph, inputs):
        _, metrics = obs.enable()
        try:
            _run(graph, inputs, "process", 2)
            snap = metrics.snapshot()
        finally:
            obs.disable()
        for worker_id in (0, 1):
            assert f"worker{worker_id}.work.gathers" in snap
            assert f"worker{worker_id}.work.tasks" in snap

    def test_counter_sum_parity_with_serial_run(self, graph, inputs):
        # The acceptance bar: per-worker merged counters must sum to
        # exactly the serial run's totals — no double counting, no loss.
        _, serial_stats, _ = _run(graph, inputs, "serial", 1)
        _, metrics = obs.enable()
        try:
            _, stats, _ = _run(graph, inputs, "process", 2)
            snap = metrics.snapshot()
        finally:
            obs.disable()
        merged_gathers = sum(
            snap[f"worker{k}.work.gathers"]["value"] for k in (0, 1)
        )
        assert merged_gathers == serial_stats.gathers == stats.gathers
        merged_tasks = sum(
            snap[f"worker{k}.work.tasks"]["value"] for k in (0, 1)
        )
        assert merged_tasks == serial_stats.tasks


class TestProcessWorkerProfiles:
    def test_worker_profiles_absorbed_into_parent(self, graph, inputs):
        tracer, metrics = obs.enable()
        profiler = obs.SamplingProfiler(tracer=tracer, hz=400.0, registry=metrics)
        obs.set_profiler(profiler)
        try:
            _run(graph, inputs, "process", 2, task_size=8)
        finally:
            data = profiler.stop()
            obs.disable()
        # Each worker payload that carried samples registered its source;
        # with a tiny workload a worker may finish between ticks, so only
        # the *shape* of absorbed stacks is asserted, not a minimum count.
        for source in data.sources:
            assert source in ("worker-0", "worker-1")
        for (_, frames) in data.stacks:
            if frames and frames[0].startswith("worker-"):
                assert frames[0] in ("worker-0", "worker-1")

    def test_disabled_profiler_ships_nothing(self, graph, inputs):
        tracer, _ = obs.enable()
        try:
            _, _, report = _run(graph, inputs, "process", 2)
        finally:
            obs.disable()
        for worker_report in report.worker_reports:
            payload = worker_report.telemetry
            assert payload is not None  # tracer was live: spans shipped
            assert payload["profile"] is None

    def test_no_telemetry_payload_when_obs_disabled(self, graph, inputs):
        _, _, report = _run(graph, inputs, "process", 2)
        assert all(r.telemetry is None for r in report.worker_reports)
