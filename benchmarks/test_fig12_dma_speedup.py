"""Figure 12: simulated speedups with the DMA engine.

Trace-driven: products and wikipedia twins only, mirroring the paper's
"hardware evaluation is limited to products and wikipedia due to very
long simulation times" (Section 6).
"""

from conftest import run_experiment

from repro.bench.figures import fig12_dma_speedups


def test_fig12a_inference(benchmark):
    exp = run_experiment(benchmark, fig12_dma_speedups, False)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia"):
        assert values[f"{name} fusion"] > 1.0
        assert values[f"{name} fusion+DMA"] > values[f"{name} fusion"]


def test_fig12b_training(benchmark):
    exp = run_experiment(benchmark, fig12_dma_speedups, True)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia"):
        assert values[f"{name} fusion+DMA"] > values[f"{name} fusion"]
        assert (
            values[f"{name} fusion+DMA+locality"]
            > values[f"{name} fusion+locality"]
        )
    # products gains the most from locality (consistent with Fig. 11b).
    assert (
        values["products fusion+DMA+locality"]
        > values["wikipedia fusion+DMA+locality"]
    )
