"""Degree statistics — the columns of Table 3 in the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 3: |V|, |E|, mean/max/variance of degree."""

    name: str
    num_vertices: int
    num_edges: int
    mean_degree: float
    max_degree: int
    degree_variance: float

    def as_row(self) -> str:
        return (
            f"{self.name:<12} |V|={self.num_vertices:<9} |E|={self.num_edges:<10} "
            f"deg={self.mean_degree:7.1f} max={self.max_degree:<8} "
            f"var={self.degree_variance:.3g}"
        )


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute the Table-3 statistics for a graph."""
    degs = graph.degrees()
    if len(degs) == 0:
        return GraphStats(graph.name, 0, 0, 0.0, 0, 0.0)
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        mean_degree=float(degs.mean()),
        max_degree=int(degs.max()),
        degree_variance=float(degs.var()),
    )


def degree_histogram(graph: CSRGraph, bins: int = 32) -> np.ndarray:
    """Histogram of in-degrees (log-spaced bins above 1)."""
    degs = graph.degrees()
    if degs.max() <= 1:
        return np.bincount(degs, minlength=2)
    edges = np.unique(
        np.concatenate(
            [[0, 1], np.logspace(0, np.log10(degs.max() + 1), bins).astype(np.int64)]
        )
    )
    hist, _ = np.histogram(degs, bins=edges)
    return hist


def skew(graph: CSRGraph) -> float:
    """Coefficient of variation of the degree distribution.

    The paper's locality optimization pays off most on skewed graphs
    (products: mean degree 50.5, variance 9.2K).
    """
    degs = graph.degrees().astype(np.float64)
    mean = degs.mean()
    if mean == 0:
        return 0.0
    return float(degs.std() / mean)
