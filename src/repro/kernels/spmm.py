"""The MKL baseline: SpMM aggregation + GEMM update (Section 6).

The linear aggregators of Table 2 factor as ``a = Â h`` with Â the
ψ-scaled self-loop-augmented adjacency, so MKL's sparse-dense matrix
multiply computes the whole aggregation in one call.  The paper finds
this slightly *slower* than DistGNN (Figure 11: 0.88-0.99x) — SpMM
libraries pay an extra CSR traversal pass and lack the gather-specific
prefetch tuning.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.aggregate import normalized_adjacency
from .base import AggregationKernel, KernelStats, UpdateParams, validate_inputs


class SpMMKernel(AggregationKernel):
    """MKL-style aggregation: one sparse-dense matrix product."""

    name = "mkl"

    def aggregate(
        self, graph: CSRGraph, h: np.ndarray, aggregator: str = "gcn"
    ) -> Tuple[np.ndarray, KernelStats]:
        validate_inputs(graph, h)
        a_hat = normalized_adjacency(graph, aggregator)
        out = (a_hat @ h).astype(np.float32)
        stats = KernelStats(
            gathers=graph.num_edges + graph.num_vertices,
            flops=2.0 * (graph.num_edges + graph.num_vertices) * h.shape[1],
            tasks=1,
        )
        return out, stats


def spmm_layer(
    graph: CSRGraph,
    h: np.ndarray,
    params: UpdateParams,
    aggregator: str = "gcn",
) -> Tuple[np.ndarray, np.ndarray, KernelStats]:
    """Unfused MKL layer: SpMM aggregation then one large GEMM update."""
    kernel = SpMMKernel()
    a, stats = kernel.aggregate(graph, h, aggregator)
    h_out = params.apply(a)
    stats.flops += 2.0 * a.shape[0] * params.weight.shape[0] * params.weight.shape[1]
    return h_out, a, stats
