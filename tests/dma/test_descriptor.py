"""Unit + property tests for the 64-byte aggregation descriptor (Fig. 8)."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dma import (
    DESCRIPTOR_BYTES,
    AggregationDescriptor,
    BinOp,
    IdxType,
    RedOp,
    ValType,
)


def _descriptor(**overrides):
    base = dict(
        num_values=64,
        num_blocks=10,
        padded_block_bytes=256,
        idx_addr=0x1000,
        in_addr=0x2000,
        out_addr=0x3000,
        factor_addr=0x4000,
        status_addr=0x5000,
    )
    base.update(overrides)
    return AggregationDescriptor(**base)


class TestWireFormat:
    def test_packed_size_is_64_bytes(self):
        assert len(_descriptor().pack()) == DESCRIPTOR_BYTES

    def test_round_trip(self):
        desc = _descriptor(red_op=RedOp.MAX, bin_op=BinOp.ADD, idx_type=IdxType.U64)
        assert AggregationDescriptor.unpack(desc.pack()) == desc

    def test_field_offsets_match_figure8(self):
        """E at bytes 0-3; red_op at byte 7; N at 8-11; S at 12-15;
        addresses at 16/24/32/40/48."""
        desc = _descriptor(red_op=RedOp.MAX, bin_op=BinOp.MUL)
        raw = desc.pack()
        assert struct.unpack_from("<I", raw, 0)[0] == 64  # E
        assert raw[7] == RedOp.MAX  # red_op
        assert raw[6] == BinOp.MUL  # bin_op
        assert struct.unpack_from("<I", raw, 8)[0] == 10  # N
        assert struct.unpack_from("<I", raw, 12)[0] == 256  # S
        assert struct.unpack_from("<Q", raw, 16)[0] == 0x1000  # IDX
        assert struct.unpack_from("<Q", raw, 24)[0] == 0x2000  # IN
        assert struct.unpack_from("<Q", raw, 32)[0] == 0x3000  # OUT
        assert struct.unpack_from("<Q", raw, 40)[0] == 0x4000  # FACTOR
        assert struct.unpack_from("<Q", raw, 48)[0] == 0x5000  # STATUS

    def test_reserved_bytes_zero(self):
        raw = _descriptor().pack()
        assert raw[56:64] == b"\x00" * 8

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            AggregationDescriptor.unpack(b"\x00" * 32)


class TestValidation:
    def test_e_positive(self):
        with pytest.raises(ValueError):
            _descriptor(num_values=0)

    def test_padding_covers_payload(self):
        with pytest.raises(ValueError):
            _descriptor(num_values=128, padded_block_bytes=256)  # needs 512

    def test_negative_address(self):
        with pytest.raises(ValueError):
            _descriptor(in_addr=-1)

    def test_zero_blocks_allowed(self):
        assert _descriptor(num_blocks=0).num_blocks == 0


class TestDerived:
    def test_byte_accounting(self):
        desc = _descriptor()
        assert desc.input_bytes == 10 * 64 * 4
        assert desc.output_bytes == 64 * 4
        assert desc.index_bytes == 10 * 4

    def test_u64_indices(self):
        desc = _descriptor(idx_type=IdxType.U64)
        assert desc.index_bytes == 10 * 8

    def test_type_sizes(self):
        assert IdxType.U32.bytes == 4
        assert IdxType.U64.bytes == 8
        assert ValType.F32.bytes == 4
        assert ValType.F64.bytes == 8


@settings(max_examples=60, deadline=None)
@given(
    num_values=st.integers(1, 1 << 20),
    num_blocks=st.integers(0, 1 << 20),
    addresses=st.tuples(*[st.integers(0, (1 << 60) - 1)] * 5),
    red_op=st.sampled_from(list(RedOp)),
    bin_op=st.sampled_from(list(BinOp)),
    idx_type=st.sampled_from(list(IdxType)),
    val_type=st.sampled_from(list(ValType)),
)
def test_pack_unpack_property(
    num_values, num_blocks, addresses, red_op, bin_op, idx_type, val_type
):
    desc = AggregationDescriptor(
        num_values=num_values,
        num_blocks=num_blocks,
        padded_block_bytes=num_values * val_type.bytes,
        idx_addr=addresses[0],
        in_addr=addresses[1],
        out_addr=addresses[2],
        factor_addr=addresses[3],
        status_addr=addresses[4],
        red_op=red_op,
        bin_op=bin_op,
        idx_type=idx_type,
        val_type=val_type,
    )
    assert AggregationDescriptor.unpack(desc.pack()) == desc
