"""Tests for the consolidated benchmark artifact (BENCH_results.json)."""

import importlib.util
import json
import pathlib

import pytest

from repro.bench import Experiment

_RUN_ALL = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "run_all.py"


@pytest.fixture(scope="module")
def run_all():
    spec = importlib.util.spec_from_file_location("run_all", _RUN_ALL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBuildResultsDoc:
    def _results(self):
        a = Experiment("fig0", "demo a")
        a.add("x", 1.1, paper=1.0)
        b = Experiment("fig1", "demo b")
        b.add("y", 2.0)
        return [("fig0", "run a", a), ("fig1", "run b", b)]

    def test_document_layout(self, run_all):
        doc = run_all.build_results_doc(
            self._results(), timestamp=1234.5, elapsed_s=0.5, scale=0.5
        )
        assert doc["schema"] == run_all.RESULTS_SCHEMA_VERSION
        assert doc["generated_unix"] == 1234.5
        assert doc["scale"] == 0.5
        assert "repro_version" in doc["environment"]
        assert [e["key"] for e in doc["experiments"]] == ["fig0", "fig1"]
        assert doc["experiments"][0]["run_title"] == "run a"
        summary = doc["summary"]
        assert summary["experiments"] == 2
        assert summary["rows"] == 2
        assert summary["rows_with_paper"] == 1
        assert summary["max_paper_deviation"] == pytest.approx(0.1)

    def test_json_serializable(self, run_all):
        json.dumps(
            run_all.build_results_doc(self._results(), 0.0, 0.0, 1.0)
        )

    def test_plan_keys_unique(self, run_all):
        from repro.bench.figures import BenchContext

        keys = [key for key, _, _ in run_all.experiment_plan(BenchContext())]
        assert len(keys) == len(set(keys))


class TestMain:
    def test_only_subset_writes_both_artifacts(
        self, run_all, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = run_all.main([
            "out.md", "--json", "results.json",
            "--scale", "0.1", "--only", "tab3",
            "--timestamp", "42.0",
        ])
        assert code == 0
        assert (tmp_path / "out.md").exists()
        doc = json.loads((tmp_path / "results.json").read_text())
        assert doc["generated_unix"] == 42.0
        assert [e["key"] for e in doc["experiments"]] == ["tab3"]

    def test_unknown_key_rejected(self, run_all, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["out.md", "--only", "nope"])

    def test_empty_json_flag_skips(self, run_all, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert run_all.main(["out.md", "--json", "", "--scale", "0.1",
                             "--only", "tab3"]) == 0
        assert not (tmp_path / "BENCH_results.json").exists()

    def test_history_appends_compact_row(
        self, run_all, tmp_path, monkeypatch, capsys
    ):
        from repro.obs import load_history

        monkeypatch.chdir(tmp_path)
        for _ in range(2):
            assert run_all.main([
                "out.md", "--json", "", "--scale", "0.1", "--only", "tab3",
                "--timestamp", "42.0",
                "--history", "hist.jsonl", "--history-label", "quick",
            ]) == 0
        entries = load_history(str(tmp_path / "hist.jsonl"), label="quick")
        assert len(entries) == 2
        assert entries[0].timestamp == 42.0
        assert "elapsed_s" in entries[0].metrics
        assert "deviation.tab3" in entries[0].metrics
        assert entries[0].meta["scale"] == 0.1
