"""Unit tests for the hierarchical span tracer."""

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_trace,
    render_span_tree,
    span_tree,
)


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.span.parent_id == outer.span.span_id
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # close order

    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.spans("root")[0].parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.spans("a")[0], tracer.spans("b")[0]
        assert a.parent_id == b.parent_id == parent.span.span_id

    def test_duration_positive(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        assert tracer.spans("timed")[0].duration_s >= 0.0

    def test_attrs_and_counters(self):
        tracer = Tracer()
        with tracer.span("k", backend="thread") as span:
            span.set_attr("vertices", 10)
            span.add_counters({"gathers": 5})
            span.add_counters({"gathers": 2, "flops": 1.0})
        done = tracer.spans("k")[0]
        assert done.attrs == {"backend": "thread", "vertices": 10}
        assert done.counters == {"gathers": 7.0, "flops": 1.0}

    def test_record_attaches_to_current(self):
        tracer = Tracer()
        with tracer.span("kernel") as kspan:
            tracer.record("worker", duration_s=0.5, counters={"gathers": 3})
        worker = tracer.spans("worker")[0]
        assert worker.parent_id == kspan.span.span_id
        assert worker.duration_s == 0.5
        assert worker.counters == {"gathers": 3.0}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer.spans("boom")) == 1
        assert tracer.current() is None

    def test_thread_local_stacks(self):
        tracer = Tracer()
        seen = {}

        def body():
            with tracer.span("thread-root") as span:
                seen["parent"] = span.span.parent_id

        with tracer.span("main-root"):
            t = threading.Thread(target=body)
            t.start()
            t.join()
        # The other thread's span is a root, not a child of main-root.
        assert seen["parent"] is None


class TestFilteringAndAggregation:
    def test_prefix_filter(self):
        tracer = Tracer()
        with tracer.span("kernel.basic"):
            pass
        with tracer.span("kernel.fusion"):
            pass
        with tracer.span("epoch"):
            pass
        assert len(tracer.spans("kernel.*")) == 2
        assert len(tracer.spans("kernel.basic")) == 1

    def test_aggregate_counters(self):
        tracer = Tracer()
        with tracer.span("a") as sa:
            sa.add_counters({"gathers": 1, "flops": 2})
        with tracer.span("b") as sb:
            sb.add_counters({"gathers": 10})
        totals = tracer.aggregate_counters()
        assert totals == {"gathers": 11.0, "flops": 2.0}
        assert tracer.aggregate_counters("b") == {"gathers": 10.0}


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", kind="demo") as outer:
            outer.add_counters({"n": 1})
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        header, records = read_trace(str(path))
        assert header["schema"] == 1
        assert header["spans"] == 2
        assert [r["name"] for r in records] == ["outer", "inner"]  # id order
        assert records[0]["counters"] == {"n": 1.0}

    def test_read_trace_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\n")
        with pytest.raises(ValueError):
            read_trace(str(path))

    def test_span_tree_nesting(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                tracer.record("grandchild", duration_s=0.0)
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(str(path))
        _, records = read_trace(str(path))
        roots = span_tree(records)
        assert len(roots) == 1
        assert roots[0]["name"] == "root"
        assert roots[0]["children"][0]["name"] == "child"
        assert roots[0]["children"][0]["children"][0]["name"] == "grandchild"

    def test_render_span_tree(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            span.add_counters({"gathers": 5, "zero": 0})
        text = render_span_tree([s.to_record() for s in tracer.spans()])
        assert "root" in text
        assert "gathers=5" in text
        assert "zero" not in text  # zero counters are elided


class TestNullTracer:
    def test_disabled_flag(self):
        assert NullTracer.enabled is False
        assert Tracer.enabled is True

    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        a = tracer.span("x", attr=1)
        b = tracer.span("y")
        assert a is b  # one shared object: no allocation per call
        with a as span:
            span.set_attr("k", "v")
            span.add_counters({"n": 1})

    def test_record_noop(self):
        NULL_TRACER.record("w", duration_s=1.0, counters={"n": 1})
