"""Unit tests for the zero-copy shared-memory array bundle."""

import pickle

import numpy as np
import pytest

from repro.parallel import ArrayBundle, BundleSpec


@pytest.fixture
def arrays():
    rng = np.random.default_rng(0)
    return {
        "x": rng.standard_normal((37, 8)).astype(np.float32),
        "labels": rng.integers(0, 5, size=37).astype(np.int64),
        "mask": np.array([True, False, True]),
        "empty": np.zeros((0, 4), dtype=np.float32),
    }


class TestPrivateBundle:
    def test_round_trips_contents(self, arrays):
        bundle = ArrayBundle.create(arrays, shared=False)
        for name, arr in arrays.items():
            view = bundle.view(name)
            np.testing.assert_array_equal(view, arr)
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape

    def test_views_are_aliases_not_copies(self, arrays):
        bundle = ArrayBundle.create(arrays, shared=False)
        a = bundle.view("x")
        b = bundle.view("x")
        a[0, 0] = 99.0
        assert b[0, 0] == 99.0

    def test_no_spec_for_private(self, arrays):
        bundle = ArrayBundle.create(arrays, shared=False)
        assert not bundle.is_shared
        with pytest.raises(ValueError):
            bundle.spec()

    def test_create_copies_inputs(self, arrays):
        bundle = ArrayBundle.create(arrays, shared=False)
        arrays["x"][0, 0] = -123.0
        assert bundle.view("x")[0, 0] != -123.0


class TestSharedBundle:
    def test_attach_sees_owner_writes(self, arrays):
        with ArrayBundle.create(arrays, shared=True) as owner:
            attached = ArrayBundle.attach(owner.spec())
            try:
                np.testing.assert_array_equal(attached.view("x"), arrays["x"])
                owner.view("x")[3, 3] = 7.5
                assert attached.view("x")[3, 3] == 7.5  # same physical pages
                attached.view("labels")[0] = 42
                assert owner.view("labels")[0] == 42
            finally:
                attached.close()

    def test_spec_is_tiny_and_graph_size_independent(self):
        small = {"x": np.zeros((10, 4), dtype=np.float32)}
        big = {"x": np.zeros((100_000, 4), dtype=np.float32)}
        with ArrayBundle.create(small, shared=True) as a, ArrayBundle.create(
            big, shared=True
        ) as b:
            small_spec = len(pickle.dumps(a.spec()))
            big_spec = len(pickle.dumps(b.spec()))
        # The spec carries offsets/shapes/dtypes, never array bytes.
        assert big_spec < 1024
        assert abs(big_spec - small_spec) < 64

    def test_views_are_cache_line_aligned(self, arrays):
        with ArrayBundle.create(arrays, shared=True) as bundle:
            for offset, _, _ in bundle.spec().entries.values():
                assert offset % 64 == 0

    def test_spec_pickles_and_reattaches(self, arrays):
        with ArrayBundle.create(arrays, shared=True) as bundle:
            spec = pickle.loads(pickle.dumps(bundle.spec()))
            assert isinstance(spec, BundleSpec)
            attached = ArrayBundle.attach(spec)
            try:
                np.testing.assert_array_equal(
                    attached.view("labels"), arrays["labels"]
                )
            finally:
                attached.close()

    def test_close_is_idempotent(self, arrays):
        bundle = ArrayBundle.create(arrays, shared=True)
        bundle.close()
        bundle.close()
        bundle.unlink()

    def test_nbytes_covers_all_entries(self, arrays):
        with ArrayBundle.create(arrays, shared=True) as bundle:
            total = sum(arr.nbytes for arr in arrays.values())
            assert bundle.nbytes >= total
