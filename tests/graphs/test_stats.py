"""Unit tests for graph statistics (Table 3 columns)."""

import numpy as np

from repro.graphs import (
    CSRGraph,
    degree_histogram,
    graph_stats,
    skew,
    star_graph,
    uniform_graph,
)


class TestGraphStats:
    def test_tiny_graph_values(self, tiny_graph):
        stats = graph_stats(tiny_graph)
        assert stats.num_vertices == 5
        assert stats.num_edges == 7
        assert stats.mean_degree == 7 / 5
        assert stats.max_degree == 3
        expected_var = np.var([2, 1, 1, 3, 0])
        assert abs(stats.degree_variance - expected_var) < 1e-9

    def test_empty_graph(self):
        stats = graph_stats(CSRGraph.from_edges(0, []))
        assert stats.num_vertices == 0
        assert stats.mean_degree == 0.0

    def test_as_row_contains_name(self, tiny_graph):
        assert "tiny" in graph_stats(tiny_graph).as_row()


class TestSkew:
    def test_star_is_highly_skewed(self, star10):
        assert skew(star10) > 1.2

    def test_regular_graph_low_skew(self, grid16):
        assert skew(grid16) < 0.5

    def test_zero_degree_graph(self):
        assert skew(CSRGraph.from_edges(3, [])) == 0.0


class TestDegreeHistogram:
    def test_total_count(self, small_uniform):
        hist = degree_histogram(small_uniform)
        assert hist.sum() == small_uniform.num_vertices

    def test_degenerate_degrees(self, chain20):
        hist = degree_histogram(chain20)
        assert hist.sum() == 20
