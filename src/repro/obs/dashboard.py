"""Self-contained HTML run dashboard with inline SVG charts.

One offline file joins everything a training run emitted — the epoch
event log (:mod:`repro.obs.events`), an optional run report (metrics
snapshot + span summary), and an optional ``BENCH_history.jsonl`` trend
— into charts a reviewer can open without a server, a network fetch, or
JavaScript:

* loss and accuracy curves (two charts — different scales never share
  an axis);
* the per-layer hidden-feature sparsity trajectory (the Section 2.2
  profile that sizes compression's DRAM savings);
* per-layer gradient norms (the numerics trajectory the health guards
  watch);
* realized vs cost-model-predicted compression traffic savings;
* per-technique DRAM bytes from the attribution of the run report's
  kernel spans, when a report is supplied;
* the bench-history wall-time trend, when a history file is supplied.

Every chart carries a ``<details>`` data table (the accessibility /
no-SVG fallback), colors follow one fixed categorical order validated
for color-vision deficiency, and light/dark render from the same CSS
custom properties.
"""

from __future__ import annotations

import html
import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import read_events

#: Fixed categorical slot order (validated palette; assign in order,
#: never cycle a 9th hue — extra layers fold into the table view).
_SERIES_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_SERIES_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root {
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --good: #0ca30c; --critical: #d03b3b;
%(light_series)s
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
%(dark_series)s
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 8px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 24px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 120px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .value.bad { color: var(--critical); }
.tile .value.good { color: var(--good); }
.grid-2 { display: flex; flex-wrap: wrap; gap: 16px; }
figure.chart {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 0 0 16px;
}
figure.chart figcaption { font-weight: 600; margin-bottom: 8px; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 4px 0 8px;
  color: var(--ink-2); font-size: 12px; }
.legend .key { display: inline-flex; align-items: center; gap: 5px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 3px;
  display: inline-block; }
svg text { fill: var(--muted); font-size: 11px;
  font-family: system-ui, sans-serif; }
svg .tick { font-variant-numeric: tabular-nums; }
details { margin-top: 8px; color: var(--ink-2); font-size: 12px; }
details table { border-collapse: collapse; margin-top: 6px; }
details th, details td { padding: 2px 10px 2px 0; text-align: right;
  font-variant-numeric: tabular-nums; }
details th { color: var(--muted); font-weight: 500; }
ul.issues { margin: 0; padding-left: 20px; }
ul.issues li { color: var(--critical); }
footer { color: var(--muted); font-size: 12px; margin-top: 24px; }
"""


# ----------------------------------------------------------------------
# Formatting helpers
def _fmt(value: float, digits: int = 3) -> str:
    """Compact human number: 1234 -> 1.23K, 0.000012 -> 1.2e-05."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "Inf"
    magnitude = abs(value)
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= cut:
            return f"{value / cut:.{digits - 1}f}{suffix}"
    if magnitude != 0 and magnitude < 1e-3:
        return f"{value:.1e}"
    return f"{value:.{digits}g}"


def _fmt_bytes(value: float) -> str:
    if value is None or not math.isfinite(value):
        return "NaN"
    magnitude = abs(value)
    for cut, suffix in ((1e9, "GB"), (1e6, "MB"), (1e3, "KB")):
        if magnitude >= cut:
            return f"{value / cut:.2f} {suffix}"
    return f"{value:.0f} B"


def _fmt_pct(value: float) -> str:
    if value is None or not math.isfinite(value):
        return "NaN"
    return f"{value * 100:.0f}%"


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Clean tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(1, count - 1)
    power = 10.0 ** math.floor(math.log10(raw_step))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = power * mult
        if span / step <= count:
            break
    start = math.floor(lo / step) * step
    ticks = []
    tick = start
    while tick <= hi + step * 1e-9:
        if tick >= lo - step * 1e-9:
            ticks.append(round(tick, 10))
        tick += step
    return ticks or [lo, hi]


# ----------------------------------------------------------------------
# Chart builders
class Series:
    """One plotted series: label + (x, y) points, colored by slot order."""

    __slots__ = ("label", "xs", "ys")

    def __init__(self, label: str, xs: Sequence[float], ys: Sequence[float]):
        self.label = label
        self.xs = list(xs)
        self.ys = list(ys)

    def finite_points(self) -> List[Tuple[float, float]]:
        return [
            (x, y)
            for x, y in zip(self.xs, self.ys)
            if y is not None and math.isfinite(y)
        ]


def _data_table(
    columns: List[str], rows: Iterable[Sequence[str]], summary: str = "data table"
) -> str:
    head = "".join(f"<th>{html.escape(col)}</th>" for col in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(cell))}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (
        f"<details><summary>{html.escape(summary)}</summary>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        "</details>"
    )


def line_chart(
    title: str,
    series: List[Series],
    *,
    y_format=_fmt,
    y_domain: Optional[Tuple[float, float]] = None,
    x_label: str = "epoch",
    width: int = 520,
    height: int = 240,
) -> str:
    """One line chart as an HTML <figure> with inline SVG + data table."""
    margin_l, margin_r, margin_t, margin_b = 52, 14, 10, 26
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    finite = [p for s in series for p in s.finite_points()]
    all_x = [x for s in series for x in s.xs]
    x_lo, x_hi = (min(all_x), max(all_x)) if all_x else (0.0, 1.0)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_domain is not None:
        y_lo, y_hi = y_domain
    else:
        ys = [y for _, y in finite]
        y_lo = min(0.0, min(ys)) if ys else 0.0
        y_hi = max(ys) if ys else 1.0
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0
        y_hi *= 1.05

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_t + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" xmlns="http://www.w3.org/2000/svg" '
        f'aria-label="{html.escape(title)}">'
    ]
    # Gridlines + y ticks (hairline, recessive).
    for tick in _nice_ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="tick" x="{margin_l - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{html.escape(y_format(tick))}</text>'
        )
    # Baseline + x ticks (integers for epochs).
    base_y = margin_t + plot_h
    parts.append(
        f'<line x1="{margin_l}" y1="{base_y}" x2="{margin_l + plot_w}" '
        f'y2="{base_y}" stroke="var(--axis)" stroke-width="1"/>'
    )
    for tick in _nice_ticks(x_lo, x_hi):
        if tick != int(tick):
            continue
        x = sx(tick)
        parts.append(
            f'<text class="tick" x="{x:.1f}" y="{base_y + 16}" '
            f'text-anchor="middle">{int(tick)}</text>'
        )
    parts.append(
        f'<text x="{margin_l + plot_w}" y="{height - 2}" text-anchor="end">'
        f"{html.escape(x_label)}</text>"
    )
    # Series: 2px lines, ringed >=8px markers, <title> tooltips.
    show_markers = all(len(s.xs) <= 40 for s in series)
    for idx, s in enumerate(series):
        color = f"var(--s{(idx % 8) + 1})"
        points = s.finite_points()
        if len(points) > 1:
            path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
            )
        marked = points if show_markers else points[-1:]
        for x, y in marked:
            tooltip = f"{s.label} — {x_label} {int(x)}: {y_format(y)}"
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" fill="{color}" '
                f'stroke="var(--surface)" stroke-width="2">'
                f"<title>{html.escape(tooltip)}</title></circle>"
            )
    parts.append("</svg>")

    legend = ""
    if len(series) > 1:  # a single series is named by the title
        keys = "".join(
            '<span class="key"><span class="swatch" '
            f'style="background:var(--s{(idx % 8) + 1})"></span>'
            f"{html.escape(s.label)}</span>"
            for idx, s in enumerate(series)
        )
        legend = f'<div class="legend">{keys}</div>'

    columns = [x_label] + [s.label for s in series]
    by_x: Dict[float, List[str]] = {}
    for idx, s in enumerate(series):
        for x, y in zip(s.xs, s.ys):
            by_x.setdefault(x, ["" for _ in series])[idx] = y_format(y)
    rows = [[str(int(x))] + cells for x, cells in sorted(by_x.items())]
    return (
        '<figure class="chart">'
        f"<figcaption>{html.escape(title)}</figcaption>"
        f"{legend}{''.join(parts)}{_data_table(columns, rows)}"
        "</figure>"
    )


def bar_chart(
    title: str,
    items: List[Tuple[str, float]],
    *,
    y_format=_fmt_bytes,
    width: int = 520,
    height: int = 240,
) -> str:
    """Vertical bar chart: rounded data-end, square baseline, 2px gaps."""
    if not items:
        return ""
    margin_l, margin_r, margin_t, margin_b = 64, 14, 10, 26
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    values = [v for _, v in items if math.isfinite(v)]
    y_hi = max(values) * 1.05 if values and max(values) > 0 else 1.0

    def sy(y: float) -> float:
        return margin_t + (1.0 - y / y_hi) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" xmlns="http://www.w3.org/2000/svg" '
        f'aria-label="{html.escape(title)}">'
    ]
    for tick in _nice_ticks(0.0, y_hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text class="tick" x="{margin_l - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{html.escape(y_format(tick))}</text>'
        )
    base_y = margin_t + plot_h
    parts.append(
        f'<line x1="{margin_l}" y1="{base_y}" x2="{margin_l + plot_w}" '
        f'y2="{base_y}" stroke="var(--axis)" stroke-width="1"/>'
    )
    slot_w = plot_w / max(1, len(items))
    bar_w = min(24.0, slot_w - 2.0)  # <=24px thick, 2px surface gap minimum
    radius = min(4.0, bar_w / 2.0)
    for idx, (label, value) in enumerate(items):
        color = f"var(--s{(idx % 8) + 1})"
        x = margin_l + slot_w * idx + (slot_w - bar_w) / 2.0
        if math.isfinite(value) and value > 0:
            top = sy(value)
            bar_h = base_y - top
            r = min(radius, bar_h)  # rounded data-end, square at baseline
            path = (
                f"M{x:.1f},{base_y:.1f} "
                f"L{x:.1f},{top + r:.1f} Q{x:.1f},{top:.1f} {x + r:.1f},{top:.1f} "
                f"L{x + bar_w - r:.1f},{top:.1f} "
                f"Q{x + bar_w:.1f},{top:.1f} {x + bar_w:.1f},{top + r:.1f} "
                f"L{x + bar_w:.1f},{base_y:.1f} Z"
            )
            parts.append(
                f'<path d="{path}" fill="{color}">'
                f"<title>{html.escape(f'{label}: {y_format(value)}')}</title></path>"
            )
            parts.append(
                f'<text class="tick" x="{x + bar_w / 2:.1f}" y="{top - 5:.1f}" '
                f'text-anchor="middle">{html.escape(y_format(value))}</text>'
            )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{base_y + 16}" '
            f'text-anchor="middle">{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    rows = [[label, y_format(value)] for label, value in items]
    return (
        '<figure class="chart">'
        f"<figcaption>{html.escape(title)}</figcaption>"
        f"{''.join(parts)}{_data_table(['technique', 'value'], rows)}"
        "</figure>"
    )


# ----------------------------------------------------------------------
# Section builders
def _tile(label: str, value: str, state: str = "") -> str:
    cls = f"value {state}".strip()
    return (
        '<div class="tile">'
        f'<div class="label">{html.escape(label)}</div>'
        f'<div class="{cls}">{html.escape(value)}</div></div>'
    )


def _stat_tiles(
    events: List[Dict[str, Any]], report: Optional[Dict[str, Any]]
) -> str:
    tiles: List[str] = []
    if events:
        last = events[-1]
        tiles.append(_tile("Epochs", str(len(events))))
        tiles.append(_tile("Final loss", _fmt(last.get("loss"))))
        tiles.append(_tile("Final train acc", _fmt_pct(last.get("train_accuracy"))))
        if last.get("val_accuracy") is not None:
            tiles.append(_tile("Final val acc", _fmt_pct(last.get("val_accuracy"))))
        total_s = sum(e.get("wall_time_s", 0.0) for e in events)
        tiles.append(_tile("Train wall time", f"{total_s:.2f} s"))
        issues = sum(len(e.get("health_issues") or []) for e in events)
        tiles.append(
            _tile(
                "Health issues",
                str(issues),
                state="bad" if issues else "good",
            )
        )
    metrics = (report or {}).get("metrics") or {}
    rss = metrics.get("proc.rss_bytes.samples")
    if rss and rss.get("max"):
        tiles.append(_tile("Peak RSS", _fmt_bytes(rss["max"])))
    cpu = metrics.get("proc.cpu_percent.samples")
    if cpu and cpu.get("count"):
        tiles.append(_tile("Mean CPU", f"{cpu.get('mean', 0.0):.0f}%"))
    return f'<div class="tiles">{"".join(tiles)}</div>' if tiles else ""


def _alerts_section(
    events: List[Dict[str, Any]], report: Optional[Dict[str, Any]]
) -> str:
    """SLO verdict: the rule set, what fired, and when (by epoch).

    Reads the run report's ``alerts`` entry (a
    :class:`~repro.obs.rules.RuleEngine` dump) when present, and falls
    back to the ``slo:<rule>`` markers the trainer folds into each
    epoch's ``health_issues`` when only an event log is available.
    """
    doc = (report or {}).get("alerts")
    parts: List[str] = []
    if doc:
        rules = doc.get("rules") or []
        fired = doc.get("alerts") or []
        verdict = "ok" if doc.get("ok") else f"{len(fired)} alert(s)"
        parts.append(
            "<h2>SLO rules</h2>"
            f"<p class='sub'>{len(rules)} rule(s), "
            f"{doc.get('evaluations', 0)} evaluation(s) — "
            f"{html.escape(verdict)}</p>"
        )
        rows = []
        fired_by_rule: Dict[str, int] = {}
        for alert in fired:
            fired_by_rule[alert.get("rule", "?")] = (
                fired_by_rule.get(alert.get("rule", "?"), 0) + 1
            )
        for rule in rules:
            stat = rule.get("stat", "value")
            condition = " ".join(
                [rule.get("metric", "?")]
                + ([stat] if stat != "value" else [])
                + [rule.get("op", "?"), _fmt(rule.get("threshold", 0.0))]
            )
            rows.append(
                [
                    rule.get("name", "?"),
                    condition,
                    str(rule.get("for_count", 1)),
                    str(fired_by_rule.get(rule.get("name"), 0)),
                ]
            )
        parts.append(
            _data_table(
                ["rule", "condition", "for", "fired"], rows, summary="rule set"
            )
        )
        if fired:
            items = "".join(
                "<li>"
                + html.escape(
                    f"{a.get('rule')}: {a.get('metric')} = "
                    f"{_fmt(a.get('value', 0.0))} violates "
                    f"{a.get('op')} {_fmt(a.get('threshold', 0.0))} "
                    f"(evaluation {a.get('evaluation')})"
                )
                + "</li>"
                for a in fired
            )
            parts.append(f"<ul class='issues'>{items}</ul>")
        return "".join(parts)
    # Event-log-only fallback: the slo:<rule> health markers.
    lines = []
    for event in events:
        for kind in event.get("health_issues") or []:
            if isinstance(kind, str) and kind.startswith("slo:"):
                lines.append(f"epoch {event.get('epoch')}: {kind[4:]}")
    if not lines:
        return ""
    items = "".join(f"<li>{html.escape(line)}</li>" for line in lines)
    return f"<h2>SLO alerts</h2><ul class='issues'>{items}</ul>"


def _health_section(events: List[Dict[str, Any]]) -> str:
    lines = []
    for event in events:
        for kind in event.get("health_issues") or []:
            if isinstance(kind, str) and kind.startswith("slo:"):
                continue  # shown in the SLO section instead
            lines.append(f"epoch {event.get('epoch')}: {kind}")
    if not lines:
        return ""
    items = "".join(f"<li>{html.escape(line)}</li>" for line in lines)
    return f"<h2>Health findings</h2><ul class='issues'>{items}</ul>"


def _layer_series(
    events: List[Dict[str, Any]], field: str, pick
) -> List[Series]:
    """Per-layer series over epochs from a nested event field."""
    layers: Dict[str, Tuple[List[float], List[float]]] = {}
    for event in events:
        for layer, entry in (event.get(field) or {}).items():
            value = pick(entry)
            if value is None:
                continue
            xs, ys = layers.setdefault(str(layer), ([], []))
            xs.append(float(event["epoch"]))
            ys.append(float(value))
    return [
        Series(f"layer {layer}", xs, ys)
        for layer, (xs, ys) in sorted(layers.items(), key=lambda kv: kv[0])
    ]


def _event_charts(events: List[Dict[str, Any]]) -> List[str]:
    epochs = [float(e["epoch"]) for e in events]
    charts: List[str] = []
    charts.append(
        line_chart("Training loss", [Series("loss", epochs, [e["loss"] for e in events])])
    )
    acc_series = [
        Series("train", epochs, [e.get("train_accuracy") for e in events])
    ]
    if any(e.get("val_accuracy") is not None for e in events):
        acc_series.append(
            Series("val", epochs, [e.get("val_accuracy") for e in events])
        )
    charts.append(
        line_chart("Accuracy", acc_series, y_format=_fmt_pct, y_domain=(0.0, 1.0))
    )
    sparsity = _layer_series(events, "sparsity", lambda v: v)
    if sparsity:
        charts.append(
            line_chart(
                "Hidden-feature sparsity by layer (§2.2)",
                sparsity,
                y_format=_fmt_pct,
                y_domain=(0.0, 1.0),
            )
        )
    grads = _layer_series(
        events, "grad_norms", lambda entry: entry.get("weight")
    )
    if grads:
        charts.append(line_chart("Weight-gradient L2 norm by layer", grads))
    realized = [
        (e.get("compression") or {}).get("realized_dram_bytes_saved") for e in events
    ]
    predicted = [
        (e.get("compression") or {}).get("predicted_dram_bytes_saved") for e in events
    ]
    if any(v for v in realized) or any(v for v in predicted):
        charts.append(
            line_chart(
                "Compression DRAM bytes saved: realized vs predicted (§4.3)",
                [
                    Series("realized", epochs, realized),
                    Series("model-predicted", epochs, predicted),
                ],
                y_format=_fmt_bytes,
            )
        )
    return charts


def _technique_chart(report: Dict[str, Any]) -> str:
    """Per-technique DRAM bytes from the report's kernel spans."""
    spans = report.get("spans") or []
    try:
        from .attrib import attribute_run

        attribution = attribute_run(spans, metrics_snapshot=report.get("metrics"))
        totals = attribution.technique_totals
    except Exception:  # a foreign/partial report never breaks the dashboard
        return ""
    if not totals:
        return ""
    items = [
        (variant, bucket.get("aggregation_dram_bytes", 0.0))
        for variant, bucket in sorted(totals.items())
    ]
    return bar_chart("Aggregation DRAM bytes per technique (model)", items)


def _history_chart(entries: List[Dict[str, Any]]) -> str:
    xs, ys, labels = [], [], []
    for idx, entry in enumerate(entries):
        metrics = entry.get("metrics") or {}
        if "elapsed_s" in metrics:
            xs.append(float(idx))
            ys.append(float(metrics["elapsed_s"]))
            labels.append(entry.get("label", ""))
    if len(xs) < 2:
        return ""
    chart = line_chart(
        "Bench history: wall time per run",
        [Series("elapsed_s", xs, ys)],
        y_format=lambda v: f"{v:.1f}s" if math.isfinite(v) else "NaN",
        x_label="run",
    )
    return chart


def _profile_section(report: Dict[str, Any]) -> str:
    """Sampled-profile section: per-phase time chart + top-N self time.

    Rendered only when the report carries a ``profile`` block (a run
    captured with ``--sampling``).  The phase chart pairs the sampled
    interpreter seconds with the kernel-span wall seconds
    (``span_phase_seconds``) so a mismatch between the two rankings —
    sampler says update-bound, spans say aggregate-bound — is visible
    at a glance.
    """
    profile = report.get("profile")
    if not profile:
        return ""
    tiles = [
        _tile("Profiler ticks", str(profile.get("samples", 0))),
        _tile("Sampling rate", f"{profile.get('hz', 0.0):g} Hz"),
        _tile(
            "Sampled time",
            f"{profile.get('duration_estimate_s', 0.0):.2f} s",
        ),
    ]
    sources = profile.get("sources") or []
    if sources:
        tiles.append(_tile("Worker captures", str(len(sources))))
    parts = ["<h2>Sampled profile</h2>", f'<div class="tiles">{"".join(tiles)}</div>']

    phases = profile.get("phases") or {}
    items = [
        (phase, float(entry.get("seconds", 0.0)))
        for phase, entry in sorted(
            phases.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
        )
    ]
    if items:
        parts.append(
            bar_chart(
                "Sampled seconds per phase",
                items,
                y_format=lambda v: f"{v:.3f}s",
            )
        )
    span_seconds = report.get("span_phase_seconds") or {}
    if span_seconds:
        rows = [
            [
                phase,
                f"{float((phases.get(phase) or {}).get('seconds', 0.0)):.3f} s",
                f"{wall:.3f} s",
            ]
            for phase, wall in sorted(
                span_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        parts.append(
            _data_table(
                ["phase", "sampled", "span wall"],
                rows,
                summary="sampled vs span wall time per phase",
            )
        )
    top = profile.get("top") or []
    if top:
        rows = [
            [
                str(entry.get("function", "?")),
                f"{float(entry.get('self_samples', 0.0)):.0f}",
                f"{float(entry.get('self_seconds', 0.0)):.3f} s",
            ]
            for entry in top[:15]
        ]
        parts.append(
            _data_table(
                ["function", "self samples", "self time"],
                rows,
                summary="top functions by self time",
            )
        )
    return "".join(parts)


def _serving_section(report: Dict[str, Any]) -> str:
    """Serving-plane latency section, when ``serve.*`` metrics exist.

    Tiles for traffic + cache outcomes, then one bar chart of request
    p50/p95/p99 and a stage-latency table (queue / assemble / forward /
    request) so tail amplification between stages is visible.
    """
    metrics = report.get("metrics") or {}

    def counter(name: str) -> Optional[float]:
        doc = metrics.get(name) or {}
        value = doc.get("value")
        return float(value) if isinstance(value, (int, float)) else None

    requests = counter("serve.requests")
    if requests is None:
        return ""
    parts = ["<h2>Serving</h2>"]
    tiles = [_tile("Requests", _fmt(requests))]
    errors = counter("serve.errors") or 0.0
    rejected = counter("serve.rejected") or 0.0
    tiles.append(_tile("Errors", _fmt(errors), state="bad" if errors else "good"))
    if rejected:
        tiles.append(_tile("Shed (503)", _fmt(rejected), state="bad"))
    hits = counter("serve.cache.hits") or 0.0
    misses = counter("serve.cache.misses") or 0.0
    if hits + misses:
        tiles.append(_tile("Cache hit rate", _fmt_pct(hits / (hits + misses))))
    occupancy = metrics.get("serve.batch.occupancy") or {}
    if occupancy.get("count"):
        tiles.append(
            _tile(
                "Batch occupancy p50",
                _fmt(occupancy.get("p50") or 0.0),
            )
        )
    parts.append(f'<div class="tiles">{"".join(tiles)}</div>')

    request_hist = metrics.get("serve.latency.request_s") or {}
    if request_hist.get("count"):
        items = [
            (quantile, float(request_hist.get(quantile) or 0.0) * 1e3)
            for quantile in ("p50", "p95", "p99")
        ]
        parts.append(
            bar_chart(
                "Request latency percentiles",
                items,
                y_format=lambda v: f"{v:.2f} ms",
            )
        )
    stage_rows = []
    for stage, name in (
        ("queue", "serve.latency.queue_s"),
        ("assemble", "serve.latency.assemble_s"),
        ("forward", "serve.latency.forward_s"),
        ("request", "serve.latency.request_s"),
    ):
        doc = metrics.get(name) or {}
        if not doc.get("count"):
            continue
        stage_rows.append(
            [
                stage,
                f"{float(doc.get('p50') or 0.0) * 1e3:.2f} ms",
                f"{float(doc.get('p95') or 0.0) * 1e3:.2f} ms",
                f"{float(doc.get('p99') or 0.0) * 1e3:.2f} ms",
                str(doc.get("count", 0)),
            ]
        )
    if stage_rows:
        parts.append(
            _data_table(
                ["stage", "p50", "p95", "p99", "samples"],
                stage_rows,
                summary="stage latency breakdown",
            )
        )
    return "".join(parts)


def _span_summary(report: Dict[str, Any]) -> str:
    spans = report.get("spans") or []
    totals: Dict[str, Tuple[int, float]] = {}
    for record in spans:
        name = record.get("name", "?")
        count, duration = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, duration + float(record.get("duration_s", 0.0)))
    if not totals:
        return ""
    rows = [
        [name, str(count), f"{duration * 1e3:.2f} ms"]
        for name, (count, duration) in sorted(
            totals.items(), key=lambda kv: -kv[1][1]
        )
    ]
    return (
        "<h2>Span summary</h2>"
        + _data_table(["span", "count", "total"], rows, summary="per-span totals")
    )


# ----------------------------------------------------------------------
def build_dashboard(
    events: Optional[List[Dict[str, Any]]] = None,
    header: Optional[Dict[str, Any]] = None,
    report: Optional[Dict[str, Any]] = None,
    history: Optional[List[Dict[str, Any]]] = None,
    title: str = "Training run",
) -> str:
    """Render the dashboard HTML string from already-loaded documents."""
    events = events or []
    sections: List[str] = []
    sections.append(_stat_tiles(events, report))
    sections.append(_health_section(events))
    sections.append(_alerts_section(events, report))
    charts = _event_charts(events) if events else []
    if report:
        technique = _technique_chart(report)
        if technique:
            charts.append(technique)
    if history:
        trend = _history_chart(history)
        if trend:
            charts.append(trend)
    sections.append(f'<div class="grid-2">{"".join(charts)}</div>')
    if report:
        sections.append(_serving_section(report))
        sections.append(_profile_section(report))
        sections.append(_span_summary(report))

    meta = dict((header or {}).get("run") or {})
    if report:
        meta.setdefault("git_sha", (report.get("environment") or {}).get("git_sha"))
    subtitle = "  ·  ".join(
        f"{key}={value}" for key, value in meta.items() if value is not None
    )
    light_series = "\n".join(
        f"  --s{i + 1}: {hexcode};" for i, hexcode in enumerate(_SERIES_LIGHT)
    )
    dark_series = "\n".join(
        f"    --s{i + 1}: {hexcode};" for i, hexcode in enumerate(_SERIES_DARK)
    )
    css = _CSS % {"light_series": light_series, "dark_series": dark_series}
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{css}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">{html.escape(subtitle)}</p>\n'
        + "\n".join(section for section in sections if section)
        + "\n<footer>generated offline by <code>repro dashboard</code> — "
        "no scripts, no network fetches</footer>\n"
        "</body></html>\n"
    )


def write_dashboard(
    path: str,
    events_path: Optional[str] = None,
    report_path: Optional[str] = None,
    history_path: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Load the artifacts, render, and write the dashboard file."""
    header = None
    events: List[Dict[str, Any]] = []
    if events_path:
        header, events = read_events(events_path)
    report = None
    if report_path:
        with open(report_path) as handle:
            report = json.load(handle)
    history = None
    if history_path:
        from .history import load_history

        history = [
            {"label": e.label, "timestamp": e.timestamp, "metrics": e.metrics}
            for e in load_history(history_path)
        ]
    if title is None:
        title = "Training run" if events_path else "Bench trend"
    document = build_dashboard(
        events=events, header=header, report=report, history=history, title=title
    )
    with open(path, "w") as handle:
        handle.write(document)
    return path
