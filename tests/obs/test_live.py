"""Unit tests for the live telemetry plane (endpoint + run monitor)."""

import io
import json
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.events import EventLog
from repro.obs.live import (
    NULL_SERVER,
    LiveRunMonitor,
    MetricsServer,
    delta_snapshot,
    prometheus_name,
    render_prometheus,
    scrape_snapshot,
    sparkline,
)
from repro.obs.events import EpochEvent
from repro.obs.rules import RuleEngine


def make_event(epoch=0, **overrides):
    kwargs = dict(
        epoch=epoch,
        loss=1.5,
        train_accuracy=0.4,
        wall_time_s=0.01,
        val_accuracy=0.35,
        grad_norms={"0": {"weight": 0.1, "bias": 0.01, "h_in": 0.2}},
        weight_norms={"0": {"weight": 1.0, "bias": 0.1}},
        sparsity={"0": 0.0, "1": 0.62},
        compression={
            "realized_dram_bytes_saved": 0.0,
            "predicted_dram_bytes_saved": 1024.0,
        },
    )
    kwargs.update(overrides)
    return EpochEvent(**kwargs)


def make_registry():
    reg = MetricsRegistry()
    reg.inc("kernel.basic.gathers", 120)
    reg.set_gauge("proc.rss_bytes", 1e6)
    reg.observe("executor.wall_time_s", 0.5)
    reg.observe("executor.wall_time_s", 1.5)
    return reg


class TestPrometheusRendering:
    def test_name_mapping(self):
        assert prometheus_name("kernel.basic.gathers") == (
            "repro_kernel_basic_gathers"
        )
        assert prometheus_name("weird-name!") == "repro_weird_name_"

    def test_families(self):
        text = render_prometheus(make_registry().snapshot())
        assert "# TYPE repro_kernel_basic_gathers_total counter" in text
        assert "repro_kernel_basic_gathers_total 120.0" in text
        assert "# TYPE repro_proc_rss_bytes gauge" in text
        assert "# TYPE repro_executor_wall_time_s summary" in text
        assert 'repro_executor_wall_time_s{quantile="0.5"}' in text
        assert "repro_executor_wall_time_s_sum 2.0" in text
        assert "repro_executor_wall_time_s_count 2" in text

    def test_every_line_parses(self):
        # Minimal exposition-format check: each non-comment line is
        # "<name or name{labels}> <float>".
        text = render_prometheus(make_registry().snapshot())
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)  # must parse

    def test_nan_and_inf_rendering(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", float("nan"))
        text = render_prometheus(reg.snapshot())
        assert "repro_g NaN" in text


class TestDeltaSnapshot:
    def test_counter_rate_between_scrapes(self):
        before = {"c": {"type": "counter", "value": 10.0}}
        after = {"c": {"type": "counter", "value": 40.0}}
        doc = delta_snapshot(after, before, elapsed_s=2.0, now_monotonic=5.0)
        assert doc["metrics"]["c"]["rate_per_s"] == pytest.approx(15.0)

    def test_first_scrape_has_no_rate(self):
        doc = delta_snapshot(
            {"c": {"type": "counter", "value": 10.0}}, None, None, 5.0
        )
        assert doc["metrics"]["c"]["rate_per_s"] is None

    def test_gauge_age(self):
        doc = delta_snapshot(
            {"g": {"type": "gauge", "value": 1.0, "updated_monotonic": 3.0}},
            None,
            None,
            now_monotonic=10.0,
        )
        assert doc["metrics"]["g"]["age_s"] == pytest.approx(7.0)


class TestMetricsServer:
    def test_serves_metrics_and_snapshot(self):
        reg = make_registry()
        with MetricsServer(reg, port=0) as server:
            assert server.port
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert response.headers["Content-Type"].startswith("text/plain")
                text = response.read().decode()
            assert "repro_kernel_basic_gathers_total 120.0" in text
            reg.inc("kernel.basic.gathers", 30)
            first = scrape_snapshot(server.url)
            assert first["metrics"]["kernel.basic.gathers"]["value"] == 150.0
            reg.inc("kernel.basic.gathers", 10)
            second = scrape_snapshot(server.url)
            rate = second["metrics"]["kernel.basic.gathers"]["rate_per_s"]
            assert rate is not None and rate > 0
        assert server.port is None  # stopped

    def test_unknown_path_404(self):
        with MetricsServer(make_registry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_index_documents_endpoints(self):
        with MetricsServer(make_registry(), port=0) as server:
            with urllib.request.urlopen(f"{server.url}/") as response:
                body = response.read().decode()
            assert "/metrics" in body and "/snapshot.json" in body

    def test_start_is_idempotent(self):
        server = MetricsServer(make_registry(), port=0)
        try:
            assert server.start().port == server.start().port
        finally:
            server.stop()

    def test_null_server_never_binds(self):
        assert NULL_SERVER.enabled is False
        assert NULL_SERVER.start() is NULL_SERVER
        assert NULL_SERVER.port is None and NULL_SERVER.url is None
        NULL_SERVER.stop()
        with NULL_SERVER as server:
            assert server is NULL_SERVER


class TestSparkline:
    def test_shape(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_and_empty(self):
        assert sparkline([5.0, 5.0]) == "▁▁"
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == ""

    def test_width_truncates_to_tail(self):
        assert len(sparkline([float(i) for i in range(100)], width=10)) == 10


class TestLiveRunMonitor:
    def write_events(self, tmp_path, epochs, **overrides):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path, meta={"command": "train", "dataset": "t"}) as log:
            for epoch in range(epochs):
                log.emit(make_event(epoch, loss=2.0 - epoch * 0.5, **overrides))
        return path

    def test_poll_tails_incrementally(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = EventLog(path)
        log.emit(make_event(0))
        monitor = LiveRunMonitor(path)
        assert [e["epoch"] for e in monitor.poll()] == [0]
        assert monitor.poll() == []
        log.emit(make_event(1))
        assert [e["epoch"] for e in monitor.poll()] == [1]
        log.close()

    def test_render_shows_trend_and_grads(self, tmp_path):
        monitor = LiveRunMonitor(self.write_events(tmp_path, 3))
        monitor.poll()
        frame = monitor.render()
        assert "epoch    2" in frame
        assert "loss" in frame and "acc" in frame
        assert "grad|w| L0:" in frame
        assert "dataset=t" in frame

    def test_render_without_events(self, tmp_path):
        monitor = LiveRunMonitor(str(tmp_path / "missing.jsonl"))
        monitor.poll()
        assert "(no epoch events yet)" in monitor.render()

    def test_registry_metrics_in_view(self, tmp_path):
        reg = MetricsRegistry()
        reg.set_gauge("proc.rss_bytes", 2e6)
        reg.set_gauge("proc.cpu_percent", 50.0)
        reg.set_gauge("executor.queue_depth", 7.0)
        monitor = LiveRunMonitor(
            self.write_events(tmp_path, 1), registry=reg
        )
        monitor.poll()
        frame = monitor.render()
        assert "rss 2.0 MB" in frame
        assert "cpu 50%" in frame
        assert "7 chunk(s) queued" in frame

    def test_stale_gauge_flagged(self, tmp_path):
        reg = MetricsRegistry()
        reg.set_gauge("proc.rss_bytes", 2e6)
        monitor = LiveRunMonitor(
            self.write_events(tmp_path, 1), registry=reg, stale_after_s=-1.0
        )
        monitor.poll()
        assert "[STALE]" in monitor.render()

    def test_rules_evaluated_once_per_epoch(self, tmp_path):
        path = self.write_events(tmp_path, 3)
        rules = RuleEngine("loss_cap: train.loss < 0.1")
        monitor = LiveRunMonitor(path, rules=rules)
        monitor.poll()
        assert rules.evaluations == 3  # one per epoch, not per poll
        monitor.poll()  # no new events -> no new evaluations
        assert rules.evaluations == 3
        assert "FIRING" in monitor.render()

    def test_rules_merge_event_over_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.set_gauge("proc.rss_bytes", 5e6)
        rules = RuleEngine("rss: proc.rss_bytes < 1e6\nloss: train.loss < 0.1")
        monitor = LiveRunMonitor(
            self.write_events(tmp_path, 1), registry=reg, rules=rules
        )
        monitor.poll()
        assert set(rules.active) == {"rss", "loss"}

    def test_scrape_failure_is_tolerated(self, tmp_path):
        monitor = LiveRunMonitor(
            self.write_events(tmp_path, 1),
            metrics_url="http://127.0.0.1:1",  # nothing listens there
        )
        monitor.poll()
        assert "epoch    0" in monitor.render()

    def test_follow_renders_frames(self, tmp_path):
        stream = io.StringIO()
        monitor = LiveRunMonitor(self.write_events(tmp_path, 2))
        frames = monitor.follow(
            interval_s=0.0, refresh_limit=2, stream=stream, clear=False
        )
        assert frames == 2
        assert "epoch    1" in stream.getvalue()

    def test_end_to_end_with_server(self, tmp_path):
        reg = MetricsRegistry()
        reg.set_gauge("proc.rss_bytes", 3e6)
        with MetricsServer(reg, port=0) as server:
            monitor = LiveRunMonitor(
                self.write_events(tmp_path, 2), metrics_url=server.url
            )
            monitor.poll()
            frame = monitor.render()
        assert "rss 3.0 MB" in frame
        assert json.loads(json.dumps(monitor.metrics))  # JSON-clean scrape


class TestServingView:
    def serve_registry(self):
        reg = MetricsRegistry()
        reg.inc("serve.requests", 120)
        reg.inc("serve.cache.hits", 90)
        reg.inc("serve.cache.misses", 30)
        reg.set_gauge("serve.cache.size", 30.0)
        reg.set_gauge("serve.queue_depth", 2.0)
        for value in (0.001, 0.002, 0.004):
            reg.observe("serve.latency.request_s", value)
        reg.observe("serve.batch.occupancy", 4.0)
        return reg

    def test_serve_section_rendered(self, tmp_path):
        monitor = LiveRunMonitor(
            str(tmp_path / "none.jsonl"), registry=self.serve_registry()
        )
        monitor.poll()
        frame = monitor.render()
        assert "serve requests 120" in frame
        assert "cache hit 75% (90/120)" in frame
        assert "queue 2" in frame
        assert "lat   p50" in frame
        assert "batch occupancy" in frame

    def test_no_serve_metrics_no_section(self, tmp_path):
        monitor = LiveRunMonitor(
            str(tmp_path / "none.jsonl"), registry=MetricsRegistry()
        )
        monitor.poll()
        assert "serve requests" not in monitor.render()

    def test_unknown_families_render_generically(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("dma.descriptors", 42)
        reg.set_gauge("shard.halo_bytes", 1024.0)
        reg.observe("custom.stage_s", 0.5)
        monitor = LiveRunMonitor(str(tmp_path / "none.jsonl"), registry=reg)
        monitor.poll()
        frame = monitor.render()
        assert "descriptors 42" in frame
        assert "halo_bytes=1024" in frame
        assert "stage_s p50=0.5" in frame

    def test_native_planes_not_duplicated_in_generic_view(self, tmp_path):
        reg = MetricsRegistry()
        reg.set_gauge("proc.rss_bytes", 1e6)
        reg.set_gauge("serve.queue_depth", 1.0)
        reg.inc("serve.requests", 1)
        monitor = LiveRunMonitor(str(tmp_path / "none.jsonl"), registry=reg)
        monitor.poll()
        frame = monitor.render()
        # proc/serve render in their own sections, once
        assert frame.count("rss") == 1
        assert frame.count("queue_depth") == 0
