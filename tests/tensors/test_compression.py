"""Unit + property tests for mask-based feature compression (Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensors import (
    MASK_BITS_PER_ELEMENT,
    compress,
    compress_matrix,
    decompress,
    decompress_matrix,
    decompress_row,
    measured_traffic_ratio,
    traffic_ratio,
    traffic_saved,
)


class TestVectorRoundTrip:
    def test_exact_round_trip(self):
        vec = np.array([10, 7, 0, 43, 0, 0, 0, 22], dtype=np.float32)
        restored = decompress(compress(vec))
        np.testing.assert_array_equal(restored, vec)

    def test_figure6_example(self):
        """The paper's Figure 6 example: payload keeps order, mask marks
        positions."""
        vec = np.array([10, 7, 0, 43, 0, 0, 0, 22], dtype=np.float32)
        compressed = compress(vec)
        np.testing.assert_array_equal(
            compressed.payload, np.array([10, 7, 43, 22], dtype=np.float32)
        )
        bits = np.unpackbits(compressed.mask, count=8)
        np.testing.assert_array_equal(bits, [1, 1, 0, 1, 0, 0, 0, 1])

    def test_all_zero_vector(self):
        vec = np.zeros(10, dtype=np.float32)
        compressed = compress(vec)
        assert compressed.nonzeros == 0
        np.testing.assert_array_equal(decompress(compressed), vec)

    def test_dense_vector(self):
        vec = np.arange(1, 9, dtype=np.float32)
        compressed = compress(vec)
        assert compressed.nonzeros == 8
        np.testing.assert_array_equal(decompress(compressed), vec)

    def test_mask_is_one_bit_per_element(self):
        vec = np.ones(32, dtype=np.float32)
        compressed = compress(vec)
        assert compressed.mask.nbytes * 8 >= 32 * MASK_BITS_PER_ELEMENT
        assert compressed.mask.nbytes == 4  # exactly ceil(32/8)

    def test_corrupted_mask_rejected(self):
        vec = np.array([1.0, 0.0, 2.0], dtype=np.float32)
        compressed = compress(vec)
        bad = type(compressed)(
            payload=compressed.payload[:1],
            mask=compressed.mask,
            length=compressed.length,
        )
        with pytest.raises(ValueError):
            decompress(bad)


class TestMatrixRoundTrip:
    def test_round_trip(self, rng):
        matrix = rng.standard_normal((40, 50)).astype(np.float32)
        matrix[rng.random((40, 50)) < 0.6] = 0.0
        restored = decompress_matrix(compress_matrix(matrix))
        np.testing.assert_array_equal(restored, matrix)

    def test_fixed_stride_storage(self, rng):
        """Slots keep the original shape — no indirection on random access
        (the Section 4.3 design decision)."""
        matrix = rng.standard_normal((10, 16)).astype(np.float32)
        compressed = compress_matrix(matrix)
        assert compressed.slots.shape == matrix.shape

    def test_row_random_access(self, rng):
        matrix = rng.standard_normal((20, 24)).astype(np.float32)
        matrix[rng.random((20, 24)) < 0.5] = 0.0
        compressed = compress_matrix(matrix)
        for v in (0, 7, 19):
            np.testing.assert_array_equal(decompress_row(compressed, v), matrix[v])

    def test_payload_left_packed(self):
        matrix = np.array([[0, 5, 0, 3]], dtype=np.float32)
        compressed = compress_matrix(matrix)
        np.testing.assert_array_equal(compressed.slots[0, :2], [5, 3])
        assert compressed.counts[0] == 2

    def test_stored_bytes_account_payload_and_mask(self):
        matrix = np.array([[1, 0, 0, 0, 0, 0, 0, 2]], dtype=np.float32)
        compressed = compress_matrix(matrix)
        assert compressed.row_stored_bytes(0) == 2 * 4 + 1  # 2 floats + 1 mask byte


class TestTrafficMath:
    def test_paper_example_50_percent(self):
        """32-bit features at 50% sparsity save 46.875% (Section 4.3)."""
        assert abs(traffic_saved(0.5) - 0.46875) < 1e-9

    def test_ratio_at_zero_sparsity_exceeds_one(self):
        assert traffic_ratio(0.0) > 1.0  # mask overhead with nothing saved

    def test_break_even_sparsity(self):
        assert traffic_saved(1 / 32) == pytest.approx(0.0)
        assert traffic_saved(0.02) < 0
        assert traffic_saved(0.05) > 0

    def test_invalid_sparsity_rejected(self):
        with pytest.raises(ValueError):
            traffic_ratio(1.5)
        with pytest.raises(ValueError):
            traffic_ratio(-0.1)

    def test_measured_matches_analytic(self, rng):
        matrix = rng.standard_normal((64, 128)).astype(np.float32)
        target = 0.5
        matrix[rng.random(matrix.shape) < target] = 0.0
        compressed = compress_matrix(matrix)
        actual_sparsity = 1 - compressed.counts.sum() / matrix.size
        measured = measured_traffic_ratio(compressed)
        assert measured == pytest.approx(traffic_ratio(actual_sparsity), abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float32,
        shape=st.integers(min_value=1, max_value=200),
        elements=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, width=32
        ),
    )
)
def test_vector_round_trip_property(vec):
    np.testing.assert_array_equal(decompress(compress(vec)), vec)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 20),
    cols=st.integers(1, 40),
    zero_fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 100),
)
def test_matrix_round_trip_property(rows, cols, zero_fraction, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((rows, cols)).astype(np.float32)
    matrix[rng.random((rows, cols)) < zero_fraction] = 0.0
    np.testing.assert_array_equal(
        decompress_matrix(compress_matrix(matrix)), matrix
    )
