"""Unit tests for bottleneck attribution (span -> analytic prediction)."""

import math

import pytest

from repro.obs.attrib import (
    DEFAULT_TRAFFIC_TOLERANCE,
    attribute_run,
    sim_traffic_from_metrics,
)
from repro.perf.attribution import (
    SpanWorkload,
    compressed_effective_feature_len,
    predict_phase_traffic,
    workload_from_span,
)
from repro.perf.traffic import LayerShape, aggregation_traffic


def basic_record(**overrides):
    record = {
        "kind": "span",
        "span_id": 3,
        "parent_id": None,
        "name": "kernel.basic",
        "duration_s": 0.004,
        "attrs": {"vertices": 1000, "edges": 8000, "features": 32},
        "counters": {"gathers": 9000.0, "flops": 576000.0},
    }
    record.update(overrides)
    return record


def fused_record(keep_aggregation=False):
    return {
        "kind": "span",
        "span_id": 5,
        "parent_id": None,
        "name": "kernel.fusion",
        "duration_s": 0.003,
        "attrs": {
            "vertices": 1000,
            "edges": 8000,
            "features": 32,
            "features_out": 16,
            "keep_aggregation": keep_aggregation,
        },
        "counters": {"gathers": 9000.0},
    }


class TestWorkloadFromSpan:
    def test_non_kernel_span_is_skipped(self):
        assert workload_from_span({"name": "epoch", "attrs": {}}) is None
        assert workload_from_span({"name": "sim.basic", "attrs": {}}) is None

    def test_basic_span_shape(self):
        workload = workload_from_span(basic_record())
        assert workload is not None
        assert workload.variant == "basic"
        assert workload.shape == LayerShape(1000, 8000, 32, 32)
        assert workload.write_a  # unfused always writes a
        assert not workload.fused and not workload.compressed

    def test_edges_fall_back_to_gather_counter(self):
        record = basic_record()
        del record["attrs"]["edges"]
        workload = workload_from_span(record)
        assert workload.shape.num_edges == 8000  # gathers - vertices

    def test_fused_inference_drops_a_write(self):
        workload = workload_from_span(fused_record(keep_aggregation=False))
        assert workload.fused
        assert workload.f_out == 16
        assert not workload.write_a

    def test_fused_training_keeps_a_write(self):
        workload = workload_from_span(fused_record(keep_aggregation=True))
        assert workload.write_a

    def test_fused_f_out_solved_from_flops(self):
        record = fused_record()
        del record["attrs"]["features_out"]
        # flops = 2*gathers*f_in + 2*n*f_in*f_out
        record["counters"]["flops"] = 2.0 * 9000 * 32 + 2.0 * 1000 * 32 * 16
        workload = workload_from_span(record)
        assert workload.f_out == 16

    def test_missing_shape_returns_none(self):
        assert workload_from_span({"name": "kernel.basic", "attrs": {}}) is None


class TestPredictions:
    def test_traffic_matches_cost_model_plane(self):
        workload = workload_from_span(basic_record())
        phases = predict_phase_traffic(workload, hit_rate=0.5)
        expected = aggregation_traffic(workload.shape, gather_hit_rate=0.5)
        assert phases["aggregation"].dram_total == pytest.approx(expected.dram_total)
        assert "update" not in phases

    def test_fused_span_gets_update_phase(self):
        workload = workload_from_span(fused_record())
        phases = predict_phase_traffic(workload, hit_rate=0.5)
        assert set(phases) == {"aggregation", "update"}

    def test_compressed_effective_feature_len(self):
        assert compressed_effective_feature_len(32, 0.5) == 16
        assert compressed_effective_feature_len(32, 1.0) == 32
        assert compressed_effective_feature_len(3, 0.01) == 1
        with pytest.raises(ValueError):
            compressed_effective_feature_len(32, 0.0)


class TestAttributeRun:
    def test_basic_span_is_memory_bound(self):
        report = attribute_run([basic_record()], hit_rate=0.0)
        assert len(report.spans) == 1
        span = report.spans[0]
        assert span.variant == "basic"
        # Zero hit rate aggregation at f=32: classic Figure 3 regime.
        assert span.verdict == "memory-bound"
        assert span.memory_bound_fraction > 0.5
        assert span.predicted_dram_bytes > 0
        assert span.measured["gathers"] == 9000.0

    def test_non_kernel_records_ignored(self):
        records = [
            {"name": "epoch", "attrs": {}, "counters": {}},
            basic_record(),
        ]
        report = attribute_run(records, hit_rate=0.0)
        assert len(report.spans) == 1

    def test_technique_totals_accumulate(self):
        report = attribute_run([basic_record(), basic_record()], hit_rate=0.0)
        totals = report.technique_totals["basic"]
        assert totals["spans"] == 2.0
        assert totals["aggregation_dram_bytes"] == pytest.approx(
            2.0 * report.spans[0].aggregation_dram_bytes
        )

    def test_reconciliation_within_tolerance(self):
        report = attribute_run(
            [basic_record()],
            hit_rate=0.0,
            sim_dram_bytes={
                "basic": 1.1 * aggregation_traffic(
                    LayerShape(1000, 8000, 32, 32), gather_hit_rate=0.0
                ).dram_total
            },
        )
        assert len(report.reconciliations) == 1
        rec = report.reconciliations[0]
        assert rec.within_tolerance
        assert rec.relative_error == pytest.approx(0.1 / 1.1, rel=1e-6)
        assert report.divergent() == []

    def test_divergence_is_flagged(self):
        report = attribute_run(
            [basic_record()],
            hit_rate=0.0,
            sim_dram_bytes={"basic": 1e12},
        )
        assert not report.reconciliations[0].within_tolerance
        assert [r.variant for r in report.divergent()] == ["basic"]

    def test_sim_traffic_from_metrics_snapshot(self):
        snapshot = {
            "sim.basic.dram.bytes_served": {"type": "counter", "value": 4096.0},
            "sim.basic.runs": {"type": "counter", "value": 2.0},
            "sim.fusion.dram.bytes_served": {"type": "counter", "value": 1024.0},
            "executor.tasks": {"type": "counter", "value": 7.0},
        }
        traffic = sim_traffic_from_metrics(snapshot)
        assert traffic["basic"] == {"bytes": 4096.0, "runs": 2.0}
        assert traffic["fusion"] == {"bytes": 1024.0, "runs": 1.0}
        assert "executor.tasks" not in traffic

    def test_snapshot_drives_reconciliation_per_pass(self):
        model = aggregation_traffic(
            LayerShape(1000, 8000, 32, 32), gather_hit_rate=0.0
        ).dram_total
        snapshot = {
            "sim.basic.dram.bytes_served": {"type": "counter", "value": 2.0 * model},
            "sim.basic.runs": {"type": "counter", "value": 2.0},
        }
        report = attribute_run(
            [basic_record()], hit_rate=0.0, metrics_snapshot=snapshot
        )
        rec = report.reconciliations[0]
        assert rec.sim_bytes == pytest.approx(model)
        assert rec.relative_error == pytest.approx(0.0, abs=1e-9)

    def test_histograms_carried_into_report(self):
        snapshot = {
            "executor.task_seconds": {
                "type": "histogram",
                "count": 4,
                "total": 1.0,
                "mean": 0.25,
                "min": 0.1,
                "max": 0.4,
                "p50": 0.2,
                "p95": 0.38,
                "p99": 0.4,
            }
        }
        report = attribute_run([basic_record()], metrics_snapshot=snapshot)
        assert report.histograms["executor.task_seconds"]["p95"] == 0.38

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            attribute_run([basic_record()], tolerance=-0.1)

    def test_render_and_to_dict(self):
        report = attribute_run(
            [basic_record(), fused_record()],
            hit_rate=0.5,
            sim_dram_bytes={"basic": 1.0e6},
        )
        text = report.render()
        assert "kernel.basic" in text
        assert "reconcile" in text
        doc = report.to_dict()
        assert doc["tolerance"] == DEFAULT_TRAFFIC_TOLERANCE
        assert len(doc["spans"]) == 2
        assert isinstance(doc["divergent"], list)
        assert math.isfinite(doc["spans"][0]["predicted_dram_bytes"])

    def test_write_json(self, tmp_path):
        import json

        path = tmp_path / "attrib.json"
        attribute_run([basic_record()], hit_rate=0.0).write_json(str(path))
        doc = json.loads(path.read_text())
        assert doc["spans"][0]["variant"] == "basic"
