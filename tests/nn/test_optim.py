"""Unit tests for the optimizers."""

import numpy as np
import pytest

from repro.graphs import synthetic_features, uniform_graph
from repro.nn import Adam, SGD, Trainer, build_model, cross_entropy


def _tiny_setup(seed=0):
    graph = uniform_graph(30, 3.0, seed=seed)
    features = synthetic_features(graph, 6, seed=seed)
    labels = (features[:, 0] > 0).astype(np.int64)
    model = build_model("gcn", 6, 8, 2, num_layers=2, seed=seed)
    return graph, features, labels, model


def _one_step_loss(model, graph, features, labels, optimizer, steps=20):
    losses = []
    for _ in range(steps):
        logits, caches = model.forward(graph, features, training=True)
        loss, grad = cross_entropy(logits, labels)
        losses.append(loss)
        grads = model.backward(graph, grad, caches)
        optimizer.step(grads)
    return losses


class TestSGD:
    def test_reduces_loss(self):
        graph, features, labels, model = _tiny_setup()
        losses = _one_step_loss(model, graph, features, labels, SGD(model, lr=0.5))
        assert losses[-1] < losses[0]

    def test_momentum_reduces_loss(self):
        graph, features, labels, model = _tiny_setup()
        losses = _one_step_loss(
            model, graph, features, labels, SGD(model, lr=0.2, momentum=0.9)
        )
        assert losses[-1] < losses[0]

    def test_invalid_lr(self):
        _, _, _, model = _tiny_setup()
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)

    def test_invalid_momentum(self):
        _, _, _, model = _tiny_setup()
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=1.0)

    def test_grad_count_checked(self):
        _, _, _, model = _tiny_setup()
        with pytest.raises(ValueError):
            SGD(model, lr=0.1).step([])


class TestAdam:
    def test_reduces_loss(self):
        graph, features, labels, model = _tiny_setup(seed=1)
        losses = _one_step_loss(model, graph, features, labels, Adam(model, lr=0.05))
        assert losses[-1] < losses[0]

    def test_bias_correction_first_step(self):
        """First Adam step should move weights by roughly lr, not lr/10."""
        graph, features, labels, model = _tiny_setup(seed=2)
        before = model.layers[0].weight.copy()
        _one_step_loss(model, graph, features, labels, Adam(model, lr=0.01), steps=1)
        delta = np.abs(model.layers[0].weight - before).max()
        assert 1e-4 < delta < 0.1

    def test_faster_than_plain_sgd_on_this_task(self):
        graph, features, labels, model_sgd = _tiny_setup(seed=3)
        _, _, _, model_adam = _tiny_setup(seed=3)
        sgd_losses = _one_step_loss(
            model_sgd, graph, features, labels, SGD(model_sgd, lr=0.01), steps=30
        )
        adam_losses = _one_step_loss(
            model_adam, graph, features, labels, Adam(model_adam, lr=0.01), steps=30
        )
        assert adam_losses[-1] <= sgd_losses[-1] + 1e-6
