"""Graph substrate: CSR storage, generators, dataset twins, reordering."""

from .csr import CSRGraph, GraphError
from .datasets import (
    DATASET_NAMES,
    DatasetSpec,
    SPECS,
    all_datasets,
    hidden_feature_size,
    input_feature_size,
    load_dataset,
    paper_row,
    synthetic_features,
)
from .generators import (
    chain_graph,
    community_graph,
    grid_graph,
    planted_partition_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
    uniform_graph,
)
from .io import load_edge_list, load_npz, parse_edge_list, save_npz
from .partition import (
    ScheduleReport,
    balance_comparison,
    chunk_boundaries,
    dynamic_schedule,
    static_schedule,
    task_weights,
)
from .reorder import (
    apply_order,
    degree_sorted_order,
    is_permutation,
    locality_order,
    natural_order,
    randomized_order,
)
from .stats import GraphStats, degree_histogram, graph_stats, skew

__all__ = [
    "CSRGraph",
    "GraphError",
    "DATASET_NAMES",
    "DatasetSpec",
    "SPECS",
    "all_datasets",
    "hidden_feature_size",
    "input_feature_size",
    "load_dataset",
    "paper_row",
    "synthetic_features",
    "chain_graph",
    "community_graph",
    "grid_graph",
    "planted_partition_graph",
    "power_law_graph",
    "rmat_graph",
    "star_graph",
    "uniform_graph",
    "load_edge_list",
    "load_npz",
    "parse_edge_list",
    "save_npz",
    "ScheduleReport",
    "balance_comparison",
    "chunk_boundaries",
    "dynamic_schedule",
    "static_schedule",
    "task_weights",
    "apply_order",
    "degree_sorted_order",
    "is_permutation",
    "locality_order",
    "natural_order",
    "randomized_order",
    "GraphStats",
    "degree_histogram",
    "graph_stats",
    "skew",
]
