"""Algorithm 5: pipelined fused DMA-aggregation + core update.

The core offloads each block of ``B`` vertex aggregations to its DMA
engine and updates the *previous* block while the engine works, using
ping-pong descriptor batches.  This module provides both planes:

* value plane — descriptors are actually built (64-byte packed form),
  executed by :class:`repro.dma.engine.DmaEngine`, and the results must
  match the reference aggregation;
* time plane — engine fetches walk the cache hierarchy (inputs bypass
  private caches, outputs land in L2) and block times follow the
  tracking-table parallelism law, overlapped with the core's update GEMM
  exactly as the ping-pong structure allows.

The host prepares a self-loop-augmented gather list (index + factor
arrays covering ``N(v) ∪ {v}``) once per graph, so a single descriptor
covers a vertex's whole aggregation including the self contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import UpdateParams, validate_inputs
from ..nn.aggregate import normalization_factors
from ..perf.machine import MachineConfig, cascade_lake_28
from ..sim.hierarchy import MemoryHierarchy
from ..sim.trace import LINE, MemoryLayout
from .descriptor import (
    AggregationDescriptor,
    BinOp,
    IdxType,
    RedOp,
    ValType,
)
from .engine import STATUS_OK, DmaAddressSpace, DmaEngine


@dataclass(frozen=True)
class GatherList:
    """Host-prepared self-loop-augmented CSR (indices + ψ factors)."""

    indptr: np.ndarray  # (n+1,) int64
    indices: np.ndarray  # (|E|+n,) int64
    factors: np.ndarray  # (|E|+n,) float32

    @classmethod
    def build(cls, graph: CSRGraph, aggregator: str) -> "GatherList":
        edge_f, self_f = normalization_factors(graph, aggregator)
        n = graph.num_vertices
        degs = graph.degrees()
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs + 1, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        factors = np.empty(total, dtype=np.float32)
        for v in range(n):
            s_old, e_old = graph.indptr[v], graph.indptr[v + 1]
            s_new = indptr[v]
            count = e_old - s_old
            indices[s_new : s_new + count] = graph.indices[s_old:e_old]
            factors[s_new : s_new + count] = edge_f[s_old:e_old]
            indices[s_new + count] = v
            factors[s_new + count] = self_f[v]
        return cls(indptr=indptr, indices=indices, factors=factors)


@dataclass
class DmaRunReport:
    """Timing and memory-system outcome of one DMA-offloaded pass."""

    cycles: float
    seconds: float
    core_l1_accesses: int
    core_l2_accesses: int
    l2_miss_rate: float
    engine_dram_lines: int
    engine_l3_hits: int
    descriptors_issued: int
    descriptors_split: int
    core_wait_fraction: float
    update_cycles: float
    dma_cycles: float
    detail: Dict[str, float] = field(default_factory=dict)


class DmaOffloadRunner:
    """Runs full-graph aggregation (optionally fused update) via DMA."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        cache_scale: float = 1.0,
        block_size: int = 32,
        tracking_entries: Optional[int] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.machine = machine or cascade_lake_28()
        self.cache_scale = cache_scale
        self.block_size = block_size
        self.tracking_entries = (
            tracking_entries or self.machine.dma.tracking_table_entries
        )

    # ------------------------------------------------------------------
    def run_layer(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: Optional[UpdateParams] = None,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], DmaRunReport]:
        """Aggregate every vertex through the DMA engines.

        Args:
            params: when given, the core applies the fused update per
                block (Algorithm 5); when None this is aggregation-only
                (the Figure 16 / Table 5 "aggregation only" scenario).

        Returns:
            (a, None, report) in aggregation-only mode, or
            (h_out, a, report) in fused mode.
        """
        validate_inputs(graph, h)
        machine = self.machine
        n = graph.num_vertices
        f_in = h.shape[1]
        if order is None:
            order = np.arange(n, dtype=np.int64)

        gather = GatherList.build(graph, aggregator)
        layout = MemoryLayout(
            num_vertices=n, num_edges=len(gather.indices), feature_len=f_in
        )

        # ---------------- value plane: address space + engines ----------
        h_flat = np.ascontiguousarray(h, dtype=np.float32).reshape(-1)
        a_out = np.zeros(n * f_in, dtype=np.float32)
        idx32 = gather.indices.astype(np.int64)
        status = np.zeros(n * 8, dtype=np.int64)  # generous status records
        space = DmaAddressSpace()
        # Functional layout: element-granular bases (value plane need not
        # match the padded byte layout used for line addressing).
        H_BASE, IDX_BASE, FACTOR_BASE, OUT_BASE, STATUS_BASE = (
            0x1_0000_0000,
            0x2_0000_0000,
            0x3_0000_0000,
            0x4_0000_0000,
            0x5_0000_0000,
        )
        space.register(H_BASE, h_flat)
        space.register(IDX_BASE, idx32)
        space.register(FACTOR_BASE, gather.factors)
        space.register(OUT_BASE, a_out)
        space.register(STATUS_BASE, status)

        hierarchy = MemoryHierarchy(machine, cache_scale=self.cache_scale)
        engines = [
            DmaEngine(core, machine.dma, space) for core in range(machine.cores)
        ]

        out_capacity = machine.dma.output_buffer_elements
        cores = machine.cores
        chunk = max(1, (n + cores - 1) // cores)

        descriptors_issued = 0
        descriptors_split = 0
        core_dma_cycles = [0.0] * cores
        core_update_cycles = [0.0] * cores
        core_pipeline_cycles = [0.0] * cores
        status_cursor = 0

        # Descriptor ring: one line per descriptor written by the core.
        desc_ring_base = layout.end + LINE

        h_out = None
        if params is not None:
            if params.weight.shape[0] != f_in:
                raise ValueError("weight rows must match feature length")
            h_out = np.empty((n, params.weight.shape[1]), dtype=np.float32)

        # Blocks interleave across cores (round-robin by block offset) so
        # the shared L3 and DRAM see the same concurrent mix as the
        # core-executed simulation — otherwise the first core would take
        # every cold miss.
        per_core_block_times: List[List[Tuple[float, float]]] = [
            [] for _ in range(cores)
        ]
        for offset in range(0, chunk, self.block_size):
            for core in range(cores):
                start = core * chunk + offset
                end = min(start + self.block_size, min((core + 1) * chunk, n))
                if start >= end:
                    continue
                engine = engines[core]
                block_start, block_end = start, end
                index_lines: List[int] = []
                factor_lines: List[int] = []
                input_lines: List[int] = []
                output_lines: List[int] = []
                for pos in range(block_start, block_end):
                    v = int(order[pos])
                    s, e = int(gather.indptr[v]), int(gather.indptr[v + 1])
                    # Split when E exceeds the output buffer (Section 5.2).
                    pieces = range(0, f_in, out_capacity)
                    for piece_start in pieces:
                        piece_len = min(out_capacity, f_in - piece_start)
                        desc = AggregationDescriptor(
                            num_values=piece_len,
                            num_blocks=e - s,
                            padded_block_bytes=f_in * 4,
                            idx_addr=IDX_BASE + s * 8,
                            in_addr=H_BASE + piece_start * 4,
                            out_addr=OUT_BASE + (v * f_in + piece_start) * 4,
                            factor_addr=FACTOR_BASE + s * 4,
                            status_addr=STATUS_BASE + status_cursor * 8,
                            red_op=RedOp.SUM,
                            bin_op=BinOp.MUL,
                            idx_type=IdxType.U32,
                            val_type=ValType.F32,
                        )
                        status_cursor = (status_cursor + 1) % len(status)
                        # Core enqueues the descriptor: one L1 line write.
                        hierarchy.access(
                            core,
                            desc_ring_base + (descriptors_issued % 64) * LINE,
                            write=True,
                        )
                        descriptors_issued += 1
                        if piece_start:
                            descriptors_split += 1
                        code = engine.execute(desc)
                        if code != STATUS_OK:
                            raise RuntimeError(
                                f"DMA descriptor failed with status {code}"
                            )
                    # Line addresses for the timing plane.
                    index_lines.extend(layout.index_lines(s, e))
                    factor_lines.extend(layout.factor_lines(s, e))
                    for u in gather.indices[s:e]:
                        input_lines.extend(layout.feature_lines(int(u)))
                    output_lines.extend(layout.output_lines(v))
                counts = engine.fetch_lines(
                    hierarchy, index_lines, factor_lines, input_lines, output_lines
                )
                dma_cycles = engine.batch_time_cycles(
                    hierarchy.dram,
                    counts["dram_lines"],
                    counts["touched_lines"],
                    tracking_entries=self.tracking_entries,
                    contention=machine.cores,
                )
                update_cycles = 0.0
                if params is not None:
                    block_vertices = [
                        int(order[pos]) for pos in range(block_start, block_end)
                    ]
                    update_cycles = self._core_update_block(
                        hierarchy, core, layout, params, a_out, h_out, block_vertices, f_in
                    )
                per_core_block_times[core].append((dma_cycles, update_cycles))
                core_dma_cycles[core] += dma_cycles
                core_update_cycles[core] += update_cycles
        for core in range(cores):
            core_pipeline_cycles[core] = _pipeline_time(per_core_block_times[core])

        # Descriptors are issued from dynamically scheduled tasks
        # (Algorithm 5), so per-engine work balances to near the mean;
        # the shared DRAM additionally lower-bounds the total.
        from .engine import ENGINE_BW_EFFICIENCY

        total_dram_lines = sum(e.stats.dram_lines for e in engines)
        bw_floor = (
            total_dram_lines
            * hierarchy.dram.service_cycles_per_line
            / ENGINE_BW_EFFICIENCY
        )
        balanced_pipeline = 1.05 * sum(core_pipeline_cycles) / max(1, cores)
        total_cycles = max(balanced_pipeline, bw_floor)

        dma_total = sum(core_dma_cycles)
        upd_total = sum(core_update_cycles)
        # Core stall: the fraction of the run where the core has no update
        # work left and waits on the engine (Alg. 5 lines 9-10).
        wait = max(0.0, dma_total - upd_total) / max(dma_total, 1e-9)
        extra_l1 = 0.0
        extra_l2_hits = 0.0
        if params is not None:
            from ..sim.core_sim import (
                update_l1_loads_per_vertex,
                update_l2_accesses_per_vertex,
            )

            extra_l1 = n * update_l1_loads_per_vertex(f_in, params.weight.shape[1])
            extra_l2_hits = n * update_l2_accesses_per_vertex(
                f_in, params.weight.shape[1]
            )
        l2_demand = hierarchy.l2_accesses() + extra_l2_hits
        l2_misses = sum(c.stats.misses for c in hierarchy.l2)
        report = DmaRunReport(
            cycles=total_cycles,
            seconds=total_cycles / machine.frequency_hz,
            core_l1_accesses=int(hierarchy.l1_accesses() + extra_l1),
            core_l2_accesses=int(l2_demand),
            l2_miss_rate=l2_misses / l2_demand if l2_demand else 0.0,
            engine_dram_lines=total_dram_lines,
            engine_l3_hits=sum(e.stats.l3_hits for e in engines),
            descriptors_issued=descriptors_issued,
            descriptors_split=descriptors_split,
            core_wait_fraction=min(1.0, wait),
            update_cycles=upd_total,
            dma_cycles=dma_total,
        )
        a_matrix = a_out.reshape(n, f_in)
        if params is None:
            return a_matrix, None, report
        return h_out, a_matrix, report

    # ------------------------------------------------------------------
    def _core_update_block(
        self,
        hierarchy: MemoryHierarchy,
        core: int,
        layout: MemoryLayout,
        params: UpdateParams,
        a_out: np.ndarray,
        h_out: np.ndarray,
        block_vertices: List[int],
        f_in: int,
    ) -> float:
        """Core-side update of one block: value + cache accounting.

        The a-block lines were installed into L2 by the engine, so these
        reads hit — the point of writing results to L2 (Section 5.2).
        """
        machine = self.machine
        rows = np.stack([a_out[v * f_in : (v + 1) * f_in] for v in block_vertices])
        updated = params.apply(rows)
        for i, v in enumerate(block_vertices):
            h_out[v] = updated[i]
            for addr in layout.output_lines(v):
                hierarchy.access(core, addr, write=False)
        flops = 2.0 * len(block_vertices) * f_in * params.weight.shape[1]
        return flops / (
            machine.flops_per_cycle_per_core * machine.small_gemm_efficiency
        )


def _pipeline_time(block_times: List[Tuple[float, float]]) -> float:
    """Total cycles of the ping-pong pipeline of Algorithm 5.

    Block ``j``'s update overlaps block ``j+1``'s DMA-aggregation; the
    critical path is the classic two-stage pipeline recurrence.
    """
    if not block_times:
        return 0.0
    engine_free = 0.0
    core_free = 0.0
    prev_done = None
    prev_update = 0.0
    for dma_cycles, update_cycles in block_times:
        # The core enqueues this block's descriptors (cheap), then the
        # engine runs them as soon as it is free.
        start = max(engine_free, core_free)
        engine_free = start + dma_cycles
        # Meanwhile the core updates the previous block, which requires
        # that block's aggregations to have completed.
        if prev_done is not None:
            core_free = max(core_free, prev_done) + prev_update
        prev_done, prev_update = engine_free, update_cycles
    # Trailing update of the final block (Alg. 5 lines 15-20).
    core_free = max(core_free, prev_done) + prev_update
    return core_free
