"""Paper-style characterization reports — the full Table 4 layout.

Renders the top-down breakdowns of :mod:`repro.perf.topdown` in the
paper's table format: one row per (graph, implementation) with the
retiring / memory-bound slot shares and the L2 / L3 / DRAM-bandwidth /
DRAM-latency / fill-buffer cycle fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..graphs.csr import CSRGraph
from .cost_model import CostModel
from .topdown import TopdownReport, characterize

TABLE4_VARIANTS = ("distgnn", "mkl", "combined", "c-locality")

_COLUMNS = (
    ("Retiring", "retiring"),
    ("MemBound", "memory_bound"),
    ("L2", "l2_bound"),
    ("L3", "l3_bound"),
    ("DRAM-BW", "dram_bandwidth_bound"),
    ("DRAM-Lat", "dram_latency_bound"),
    ("FillBufFull", "fill_buffer_full"),
)


@dataclass
class CharacterizationTable:
    """Table 4 for a set of graphs: rows keyed by (graph, variant)."""

    rows: Dict[str, Dict[str, TopdownReport]]

    def report(self, graph: str, variant: str) -> TopdownReport:
        return self.rows[graph][variant]

    def render(self) -> str:
        header = f"{'Graph':<11} {'Implementation':<14}" + "".join(
            f" {title:>11}" for title, _ in _COLUMNS
        )
        lines = [header, "-" * len(header)]
        for graph, variants in self.rows.items():
            for variant, report in variants.items():
                cells = "".join(
                    f" {getattr(report, attr):>11.1%}" for _, attr in _COLUMNS
                )
                lines.append(f"{graph:<11} {variant:<14}{cells}")
        return "\n".join(lines)

    def improvement(self, graph: str, metric: str = "retiring") -> float:
        """c-locality's gain over distgnn on one metric."""
        base = getattr(self.rows[graph]["distgnn"], metric)
        best = getattr(self.rows[graph]["c-locality"], metric)
        if base == 0:
            return float("inf")
        return best / base


def characterization_table(
    graphs: Dict[str, CSRGraph],
    f_input: Dict[str, int],
    f_hidden: int = 256,
    variants: Sequence[str] = TABLE4_VARIANTS,
    sparsity: float = 0.5,
    training: bool = True,
    cost_models: Optional[Dict[str, CostModel]] = None,
) -> CharacterizationTable:
    """Build the Table-4 characterization for the given twins."""
    rows: Dict[str, Dict[str, TopdownReport]] = {}
    for name, graph in graphs.items():
        model = (cost_models or {}).get(name) or CostModel(graph)
        rows[name] = {
            variant: characterize(
                model, variant, f_input[name], f_hidden,
                training=training, sparsity=sparsity,
            )
            for variant in variants
        }
    return CharacterizationTable(rows=rows)
