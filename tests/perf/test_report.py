"""Unit tests for the Table-4 characterization renderer."""

import pytest

from repro.graphs import input_feature_size, load_dataset
from repro.perf.report import TABLE4_VARIANTS, characterization_table


@pytest.fixture(scope="module")
def table():
    graphs = {"products": load_dataset("products", scale=0.15, seed=0)}
    return characterization_table(graphs, {"products": 64}, f_hidden=128)


class TestCharacterizationTable:
    def test_all_variants_present(self, table):
        assert set(table.rows["products"]) == set(TABLE4_VARIANTS)

    def test_render_layout(self, table):
        text = table.render()
        assert "Retiring" in text
        assert "c-locality" in text
        assert "FillBufFull" in text

    def test_render_column_layout(self, table):
        lines = table.render().splitlines()
        header, rule = lines[0], lines[1]
        # One header, one rule, then one row per (graph, variant).
        assert len(lines) == 2 + len(TABLE4_VARIANTS)
        assert rule == "-" * len(header)
        # Column titles appear left-to-right in the paper's order.
        titles = ["Graph", "Implementation", "Retiring", "MemBound",
                  "L2", "L3", "DRAM-BW", "DRAM-Lat", "FillBufFull"]
        positions = [header.index(t) for t in titles]
        assert positions == sorted(positions)
        # Data rows line up with the header: same width, right-aligned
        # percentage cells in every metric column.
        for row in lines[2:]:
            assert len(row) == len(header)
            assert row.startswith("products")
            cells = row[26:]  # past the Graph/Implementation columns
            assert len(cells) == 12 * 7
            for i in range(7):
                cell = cells[i * 12:(i + 1) * 12]
                assert cell.endswith("%")
                assert cell[0] == " "  # fixed one-space column gutter

    def test_report_accessor(self, table):
        report = table.report("products", "distgnn")
        assert 0.0 <= report.retiring <= 1.0

    def test_improvement_metric(self, table):
        gain = table.improvement("products", "retiring")
        assert gain > 1.0  # c-locality retires more than distgnn
