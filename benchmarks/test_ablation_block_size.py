"""Ablation: fused block size B (Section 4.2).

B controls whether the in-flight a-block stays cache resident between
the aggregation and the update of the same j-loop iteration.  Too large
a B spills the block to DRAM and fusion degenerates to the unfused
round trip; too small a B shrinks the update GEMM below efficiency.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.graphs import load_dataset, synthetic_features
from repro.kernels import FusedKernel, UpdateParams
import numpy as np


def _sweep(ctx):
    graph = ctx.graph("products")
    h = synthetic_features(graph, 64, seed=0)
    params = UpdateParams(
        weight=np.zeros((64, 64), dtype=np.float32),
        bias=np.zeros(64, dtype=np.float32),
    )
    exp = Experiment("ablation-B", "Fused block size: buffer bytes & blocks")
    l2_bytes = 1024 * 1024
    for block in (8, 32, 128, 1024, 8192):
        _, _, stats = kernel_stats = FusedKernel(block_size=block).run_layer(
            graph, h, params, keep_aggregation=False
        )
        exp.add(f"B={block} buffer KiB", stats.peak_buffer_bytes / 1024, unit="KiB")
        exp.add(
            f"B={block} fits L2",
            float(stats.peak_buffer_bytes <= l2_bytes),
            unit="bool",
        )
    return exp


def test_block_size_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # The paper-style choice (B=32, 256-float rows) fits comfortably in
    # L2; a 8192-vertex block of 64-float rows (2MB) does not.
    assert values["B=32 fits L2"] == 1.0
    assert values["B=8192 fits L2"] == 0.0
