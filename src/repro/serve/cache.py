"""LRU embedding cache with a staleness bound.

The serving path recomputes nothing it already knows: a classified
vertex's logits + embedding rows go into this cache and later requests
for the same vertex are answered without touching the batcher.  Two
limits keep it honest:

* **capacity** — least-recently-used entries evict first (an
  ``OrderedDict`` move-to-end on every hit);
* **max_age_s** — entries older than the staleness bound are treated as
  misses and dropped, so a model refresh (or, later, a dynamic-graph
  update) propagates within the bound instead of never.  ``None``
  disables the bound (a static graph + frozen model cannot go stale).

Every outcome is observable: ``serve.cache.hits`` / ``.misses`` /
``.stale`` / ``.evictions`` counters and the ``serve.cache.size`` gauge
land in whatever registry is active, and :meth:`stats` mirrors the same
numbers as plain ints for ``/stats.json`` even when telemetry is off.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple


class EmbeddingCache:
    """Thread-safe LRU of per-vertex inference results."""

    def __init__(self, capacity: int = 4096, max_age_s: Optional[float] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {max_age_s}")
        self.capacity = capacity
        self.max_age_s = max_age_s
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, Tuple[Any, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _registry(self):
        from ..obs import get_metrics

        return get_metrics()

    def get(self, vertex: int, now: Optional[float] = None) -> Optional[Any]:
        """The cached value, or ``None`` on a miss / stale entry."""
        now = time.monotonic() if now is None else now
        registry = self._registry()
        with self._lock:
            entry = self._entries.get(vertex)
            if entry is None:
                self.misses += 1
                registry.inc("serve.cache.misses")
                return None
            value, stored = entry
            if self.max_age_s is not None and now - stored > self.max_age_s:
                del self._entries[vertex]
                self.stale += 1
                self.misses += 1
                size = len(self._entries)
                registry.inc("serve.cache.stale")
                registry.inc("serve.cache.misses")
                registry.set_gauge("serve.cache.size", float(size))
                return None
            self._entries.move_to_end(vertex)
            self.hits += 1
            registry.inc("serve.cache.hits")
            return value

    def put(self, vertex: int, value: Any, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        registry = self._registry()
        with self._lock:
            if vertex in self._entries:
                self._entries.move_to_end(vertex)
            self._entries[vertex] = (value, now)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            size = len(self._entries)
        if evicted:
            registry.inc("serve.cache.evictions", evicted)
        registry.set_gauge("serve.cache.size", float(size))

    def invalidate(self, vertex: Optional[int] = None) -> int:
        """Drop one vertex's entry (or everything); returns drop count."""
        with self._lock:
            if vertex is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                dropped = 1 if self._entries.pop(vertex, None) is not None else 0
            size = len(self._entries)
        self._registry().set_gauge("serve.cache.size", float(size))
        return dropped

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "max_age_s": self.max_age_s,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
