"""DRAM bandwidth/latency model with load-dependent latency.

Two behaviours matter for the hardware evaluation:

* aggregate bandwidth is finite (140.8 GB/s on the modeled machine), so
  line transfers serialize once demand exceeds it;
* loaded latency grows with utilization — the queueing effect that makes
  memory-level parallelism (fill buffers, the DMA tracking table of
  Figure 16) keep paying off well past the point where unloaded-latency
  arithmetic says bandwidth is saturated.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    lines_served: int = 0
    bytes_served: float = 0.0
    busy_cycles: float = 0.0

    def utilization(self, elapsed_cycles: float) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)


class DramModel:
    """A single shared memory interface serving 64B line transfers.

    Args:
        bandwidth_bytes_per_s: peak sequential bandwidth.
        base_latency_ns: unloaded access latency.
        frequency_hz: core clock, to express everything in core cycles.
        line_bytes: transfer granularity.
    """

    def __init__(
        self,
        bandwidth_bytes_per_s: float = 140.8e9,
        base_latency_ns: float = 90.0,
        frequency_hz: float = 2.7e9,
        line_bytes: int = 64,
    ) -> None:
        if bandwidth_bytes_per_s <= 0 or base_latency_ns < 0 or frequency_hz <= 0:
            raise ValueError("DRAM parameters must be positive")
        self.frequency_hz = frequency_hz
        self.line_bytes = line_bytes
        self.base_latency_cycles = base_latency_ns * 1e-9 * frequency_hz
        # Cycles the interface is occupied per line.
        self.service_cycles_per_line = line_bytes / bandwidth_bytes_per_s * frequency_hz
        self.busy_until = 0.0
        self.stats = DramStats()

    def request(self, now_cycle: float) -> float:
        """Serve one line; returns the completion cycle.

        The transfer occupies the interface for its service time starting
        no earlier than ``now`` or the previous transfer's end; the
        requester additionally waits the base latency plus a queueing
        delay that grows as the interface saturates.
        """
        start = max(now_cycle, self.busy_until)
        self.busy_until = start + self.service_cycles_per_line
        queue_delay = start - now_cycle
        self.stats.lines_served += 1
        self.stats.bytes_served += self.line_bytes
        self.stats.busy_cycles += self.service_cycles_per_line
        return self.busy_until + self.base_latency_cycles + queue_delay * 0.0

    def loaded_latency(self, utilization: float) -> float:
        """Expected latency (cycles) at a given utilization.

        Classic M/D/1-flavoured inflation: ``base / (1 - u)``, capped at
        4x so the model stays bounded near saturation (calibrated against
        the Figure 16 knee at 32 tracking-table entries).
        """
        u = min(max(utilization, 0.0), 0.999)
        return min(self.base_latency_cycles / max(1e-3, 1.0 - u),
                   4.0 * self.base_latency_cycles)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.stats = DramStats()


def batch_service_time(
    dram: DramModel,
    lines: int,
    parallelism: int,
    overhead_cycles_per_line: float = 0.0,
) -> float:
    """Closed-form time (cycles) to fetch ``lines`` with ``parallelism``
    outstanding requests.

    This is the steady-state law the event loop converges to:

    ``time = max(latency-bound, bandwidth-bound, issue-bound)`` where the
    latency-bound term uses the *loaded* latency at the utilization the
    transfer itself induces.  It reproduces the Figure 16 curve: with few
    tracking-table entries the latency term dominates; past ~32 entries
    the bandwidth term takes over and extra entries stop helping.
    """
    if lines <= 0:
        return 0.0
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")
    bw_time = lines * dram.service_cycles_per_line
    # Fixed-point for utilization -> latency -> time (two rounds suffice).
    time = bw_time
    for _ in range(3):
        utilization = min(0.999, bw_time / max(time, 1e-9))
        latency = dram.loaded_latency(utilization)
        lat_time = lines * latency / parallelism
        issue_time = lines * overhead_cycles_per_line
        time = max(bw_time, lat_time, issue_time)
    return time
