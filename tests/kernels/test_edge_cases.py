"""Edge-case kernel tests: degenerate graphs and awkward shapes.

Every kernel must survive (and stay correct on): the empty graph, a
graph of isolated vertices, a single-vertex graph, feature widths that
do not divide the 16-lane vector width, and task sizes larger than the
vertex count — on the serial executor and on real workers.
"""

import numpy as np
import pytest

from repro.graphs import CSRGraph
from repro.kernels import (
    BasicKernel,
    CompressedFusedKernel,
    CompressedKernel,
    FusedKernel,
    UpdateParams,
)
from repro.nn import aggregate
from repro.parallel import ChunkExecutor
from repro.tensors.compression import VECTOR_LANES

EXECUTORS = [lambda: ChunkExecutor("serial", 1), lambda: ChunkExecutor("thread", 2)]
EXECUTOR_IDS = ["serial", "thread2"]


def _features(n, f, seed=0, sparsity=0.3):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, f)).astype(np.float32)
    h[rng.random((n, f)) < sparsity] = 0.0
    return h


def _params(f_in, f_out=6, seed=0):
    rng = np.random.default_rng(seed)
    return UpdateParams(
        weight=(rng.standard_normal((f_in, f_out)) * 0.2).astype(np.float32),
        bias=(rng.standard_normal(f_out) * 0.1).astype(np.float32),
    )


def _all_kernel_runs(graph, h, executor_factory):
    """Run every kernel variant once; yield (name, output, reference)."""
    reference = aggregate(graph, h, "gcn")
    params = _params(h.shape[1])
    fused_reference = params.apply(reference)

    out, _ = BasicKernel(executor=executor_factory()).aggregate(graph, h, "gcn")
    yield "basic", out, reference
    out, _ = CompressedKernel(executor=executor_factory()).aggregate(graph, h, "gcn")
    yield "compression", out, reference
    out, _, _ = FusedKernel(block_size=4, executor=executor_factory()).run_layer(
        graph, h, params, "gcn"
    )
    yield "fusion", out, fused_reference
    out, _, _ = CompressedFusedKernel(
        block_size=4, executor=executor_factory()
    ).run_layer(graph, h, params, "gcn")
    yield "combined", out, fused_reference


@pytest.mark.parametrize("executor_factory", EXECUTORS, ids=EXECUTOR_IDS)
class TestDegenerateGraphs:
    def test_empty_graph(self, executor_factory):
        graph = CSRGraph.from_edges(0, [], name="empty")
        h = np.zeros((0, 8), dtype=np.float32)
        for name, out, reference in _all_kernel_runs(graph, h, executor_factory):
            assert out.shape == reference.shape, name
            assert out.shape[0] == 0

    def test_all_isolated_vertices(self, executor_factory):
        graph = CSRGraph.from_edges(9, [], name="isolated")
        h = _features(9, 8, seed=1)
        for name, out, reference in _all_kernel_runs(graph, h, executor_factory):
            np.testing.assert_allclose(out, reference, atol=1e-5, err_msg=name)
        # With no neighbors, GCN aggregation reduces to h / (D+1) = h.
        np.testing.assert_allclose(
            aggregate(graph, h, "gcn"), h, atol=1e-6
        )

    def test_single_vertex_graph(self, executor_factory):
        graph = CSRGraph.from_edges(1, [], name="lonely")
        h = _features(1, 5, seed=2)
        for name, out, reference in _all_kernel_runs(graph, h, executor_factory):
            np.testing.assert_allclose(out, reference, atol=1e-5, err_msg=name)

    def test_self_loop_only_graph(self, executor_factory):
        graph = CSRGraph.from_edges(4, [(v, v) for v in range(4)], name="loops")
        h = _features(4, 7, seed=3)
        for name, out, reference in _all_kernel_runs(graph, h, executor_factory):
            np.testing.assert_allclose(out, reference, atol=1e-5, err_msg=name)


@pytest.mark.parametrize("executor_factory", EXECUTORS, ids=EXECUTOR_IDS)
@pytest.mark.parametrize("width", [1, 13, VECTOR_LANES + 1, 3 * VECTOR_LANES + 5])
def test_feature_width_not_divisible_by_vector_lanes(executor_factory, width, star10):
    """Widths with a vector-tail remainder stay exact in every kernel."""
    assert width % VECTOR_LANES != 0
    h = _features(star10.num_vertices, width, seed=4)
    for name, out, reference in _all_kernel_runs(star10, h, executor_factory):
        np.testing.assert_allclose(out, reference, atol=1e-5, err_msg=name)


class TestOversizedTaskSize:
    def test_task_size_larger_than_vertex_count(self, star10):
        h = _features(star10.num_vertices, 6, seed=5)
        reference = aggregate(star10, h, "gcn")
        for executor in (ChunkExecutor("serial", 1), ChunkExecutor("thread", 4)):
            kernel = BasicKernel(task_size=10_000, executor=executor)
            out, stats = kernel.aggregate(star10, h, "gcn")
            np.testing.assert_allclose(out, reference, atol=1e-5)
            assert stats.tasks == 1  # one chunk owns the whole graph

    def test_oversized_blocks_per_task(self, star10):
        h = _features(star10.num_vertices, 6, seed=6)
        params = _params(6)
        reference = params.apply(aggregate(star10, h, "gcn"))
        kernel = FusedKernel(block_size=64, blocks_per_task=99)
        out, _, stats = kernel.run_layer(star10, h, params, "gcn")
        np.testing.assert_allclose(out, reference, atol=1e-5)
        assert stats.tasks == 1
        assert stats.blocks == 1

    def test_compressed_oversized_task(self, star10):
        h = _features(star10.num_vertices, 6, seed=7)
        reference = aggregate(star10, h, "gcn")
        kernel = CompressedKernel(task_size=10_000)
        out, stats = kernel.aggregate(star10, h, "gcn")
        np.testing.assert_allclose(out, reference, atol=1e-5)
        assert stats.tasks == 1
