"""Design-space extensions the paper discusses but does not build.

Section 5 states: "We opt not to implement the feature compression in
the DMA engine.  This is because the compression hardware is expensive.
Since only the models that use ReLU or dropout benefit from feature
compression, the use case does not justify the hardware cost."

This module models that rejected design so the trade-off can be
quantified instead of asserted: a compression-capable engine shrinks the
gathered bytes by the Section 4.3 ratio at the price of extra area and a
per-element expand latency in the engine's vector unit.  Section 7.2.1
also hints that "adding more aggressive software prefetches may yield
additional speedup" when fill buffers are underutilized; the second
model prices that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.machine import MachineConfig, cascade_lake_28
from ..sim.dram import DramModel
from ..tensors.compression import traffic_ratio
from .engine import ENGINE_BW_EFFICIENCY

#: Area model, in mm^2 at 22nm (paper: the base engine's 4.5KB of SRAM
#: is 0.051 mm^2).  A mask-expand datapath plus wider buffers roughly
#: triples the footprint — the "expensive" the paper is referring to.
BASE_ENGINE_AREA_MM2 = 0.051
COMPRESSION_AREA_MM2 = 0.110

#: Elements per cycle the engine's 4-lane vector unit expands.
ENGINE_EXPAND_ELEMENTS_PER_CYCLE = 4.0


@dataclass(frozen=True)
class CompressedDmaEstimate:
    """Modeled outcome of adding compression hardware to the engine."""

    sparsity: float
    speedup_over_plain_dma: float
    area_ratio: float

    @property
    def worthwhile(self) -> bool:
        """The paper's bar: does the speedup clear the 2x-area cost?

        A deliberately simple perf/area criterion: the extension must buy
        at least as much relative speedup as the relative area it adds.
        """
        return self.speedup_over_plain_dma >= self.area_ratio ** 0.5


def compressed_dma_estimate(
    sparsity: float,
    feature_len: int = 256,
    mean_degree: float = 20.0,
    machine: MachineConfig = None,
) -> CompressedDmaEstimate:
    """Model a compression-capable DMA engine vs the paper's engine.

    Both engines are bandwidth-bound in steady state (Figure 16 past the
    knee), so the plain engine's time per vertex is the dense gathered
    bytes over its bandwidth share, while the compressed engine moves
    ``traffic_ratio(sparsity)`` of those bytes but pays the expand
    latency in its narrow vector unit.
    """
    machine = machine or cascade_lake_28()
    dram = DramModel(
        bandwidth_bytes_per_s=machine.dram_bandwidth,
        base_latency_ns=machine.dram_latency_ns,
        frequency_hz=machine.frequency_hz,
    )
    gathers = mean_degree + 1.0
    dense_bytes = gathers * feature_len * 4.0
    share = dram.service_cycles_per_line / 64.0 * machine.cores  # cycles per byte
    plain_cycles = dense_bytes * share / ENGINE_BW_EFFICIENCY
    packed_bytes = dense_bytes * traffic_ratio(sparsity)
    expand_cycles = gathers * feature_len / ENGINE_EXPAND_ELEMENTS_PER_CYCLE
    packed_cycles = packed_bytes * share / ENGINE_BW_EFFICIENCY + expand_cycles
    return CompressedDmaEstimate(
        sparsity=sparsity,
        speedup_over_plain_dma=plain_cycles / packed_cycles,
        area_ratio=(BASE_ENGINE_AREA_MM2 + COMPRESSION_AREA_MM2)
        / BASE_ENGINE_AREA_MM2,
    )


@dataclass(frozen=True)
class AggressivePrefetchEstimate:
    """Modeled outcome of issuing deeper software prefetches (§7.2.1)."""

    fill_buffer_occupancy: float
    speedup_over_default: float


def aggressive_prefetch_estimate(
    fill_buffer_occupancy: float,
    machine: MachineConfig = None,
) -> AggressivePrefetchEstimate:
    """Price the paper's "more aggressive software prefetch" suggestion.

    When the fill buffers are fully occupied (the large graphs of Table
    4), extra prefetches displace demand misses and buy nothing; when
    occupancy is below 1 (products/wikipedia after c-locality), deeper
    prefetching converts idle fill-buffer slots into bandwidth, up to the
    interface limit.
    """
    if not 0.0 <= fill_buffer_occupancy <= 1.0:
        raise ValueError("occupancy must be in [0, 1]")
    machine = machine or cascade_lake_28()
    idle = 1.0 - fill_buffer_occupancy
    # Each reclaimed slot adds proportional MLP; speedup saturates at the
    # remaining headroom to the raw interface (1/stream efficiency).
    headroom = 1.0 / machine.stream_bw_efficiency
    speedup = min(headroom, 1.0 + idle * (headroom - 1.0) / 0.7)
    return AggressivePrefetchEstimate(
        fill_buffer_occupancy=fill_buffer_occupancy,
        speedup_over_default=speedup,
    )
