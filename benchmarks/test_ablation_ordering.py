"""Ablation: Algorithm 3 vs simpler orderings.

Compares the paper's locality order against plain degree sorting and a
random shuffle on the gather hit rate at the machine's scaled capacity.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.graphs import degree_sorted_order, locality_order, randomized_order
from repro.perf import CostModel


def _sweep(ctx):
    graph = ctx.graph("products")
    model = CostModel(graph)
    capacity = model.capacity_vectors
    exp = Experiment("ablation-order", "Gather hit rate by processing order")
    exp.add("natural", model.profile("natural").hit_rate(capacity), unit="frac")
    exp.add("randomized", model.profile("randomized").hit_rate(capacity), unit="frac")
    from repro.perf.reuse import reuse_profile

    degree_hit = reuse_profile(graph, degree_sorted_order(graph)).hit_rate(capacity)
    exp.add("degree-sorted", degree_hit, unit="frac")
    exp.add("locality (Alg. 3)", model.profile("locality").hit_rate(capacity), unit="frac")
    return exp


def test_ordering_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # Algorithm 3 beats both naive alternatives: degree sorting clusters
    # hubs but not their readers.
    assert values["locality (Alg. 3)"] > values["degree-sorted"]
    assert values["locality (Alg. 3)"] > values["randomized"]
