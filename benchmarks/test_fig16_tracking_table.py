"""Figure 16: DMA-aggregation time vs Memory Request Tracking Table size."""

from conftest import run_experiment

from repro.bench.figures import fig16_tracking_table


def test_fig16_tracking_table(benchmark):
    exp = run_experiment(benchmark, fig16_tracking_table)
    values = {r.label: r.measured for r in exp.rows}
    # Time decreases significantly from 8 to 32 entries, then flattens —
    # the reason the paper picks 32 (Section 7.3.3).
    assert values["16 entries (norm.)"] < 0.8
    assert values["32 entries (norm.)"] < values["16 entries (norm.)"]
    assert values["64 entries (norm.)"] > values["32 entries (norm.)"] * 0.9
