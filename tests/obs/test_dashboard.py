"""Unit tests for the self-contained HTML run dashboard."""

import json

import pytest

from repro.obs.dashboard import (
    Series,
    _fmt,
    _fmt_bytes,
    _fmt_pct,
    _nice_ticks,
    bar_chart,
    build_dashboard,
    line_chart,
    write_dashboard,
)
from repro.obs.events import EpochEvent, EventLog


def make_event(epoch=0, **overrides):
    kwargs = dict(
        epoch=epoch,
        loss=2.0 - 0.2 * epoch,
        train_accuracy=0.2 + 0.1 * epoch,
        wall_time_s=0.01,
        val_accuracy=0.15 + 0.1 * epoch,
        grad_norms={"0": {"weight": 0.1, "bias": 0.01, "h_in": 0.2},
                    "1": {"weight": 0.2, "bias": 0.02, "h_in": 0.1}},
        weight_norms={"0": {"weight": 1.0, "bias": 0.1}},
        sparsity={"0": 0.0, "1": 0.5 + 0.05 * epoch},
        compression={
            "realized_dram_bytes_saved": 100.0 * epoch,
            "predicted_dram_bytes_saved": 1024.0 + 10.0 * epoch,
        },
    )
    kwargs.update(overrides)
    return EpochEvent(**kwargs)


@pytest.fixture
def events():
    return [make_event(epoch).to_record() for epoch in range(4)]


class TestCharts:
    def test_line_chart_basics(self):
        svg = line_chart(
            "Training loss", [Series("loss", [0, 1, 2], [2.0, 1.5, 1.2])]
        )
        assert "<svg" in svg and "polyline" in svg
        assert "Training loss" in svg
        assert "<details" in svg  # data-table fallback
        # One series: the title names it, no legend box.
        assert 'class="legend"' not in svg

    def test_line_chart_legend_for_two_series(self):
        svg = line_chart(
            "Accuracy",
            [Series("train", [0, 1], [0.2, 0.4]), Series("val", [0, 1], [0.1, 0.3])],
        )
        assert 'class="legend"' in svg
        assert "train" in svg and "val" in svg

    def test_line_chart_skips_non_finite_points(self):
        svg = line_chart(
            "loss", [Series("loss", [0, 1, 2], [1.0, float("nan"), 0.5])]
        )
        assert "NaN" not in svg.split("<details")[0]  # no NaN coordinates

    def test_line_chart_all_nan_series(self):
        svg = line_chart("loss", [Series("loss", [0, 1], [float("nan")] * 2)])
        assert "<svg" in svg  # degrades, never crashes

    def test_bar_chart_basics(self):
        svg = bar_chart("Bytes by technique", [("basic", 0.0), ("compression", 2048.0)])
        assert "<svg" in svg
        assert "compression" in svg
        assert "2.05 KB" in svg

    def test_bar_chart_empty(self):
        assert bar_chart("empty", []) == ""


class TestFormatters:
    def test_fmt_compact(self):
        assert _fmt(1234) == "1.23K"
        assert _fmt(2.5e6) == "2.50M"
        assert _fmt(float("nan")) == "NaN"

    def test_fmt_bytes(self):
        assert _fmt_bytes(512) == "512 B"
        assert _fmt_bytes(2048) == "2.05 KB"

    def test_fmt_pct(self):
        assert _fmt_pct(0.62) == "62%"

    def test_nice_ticks_inside_domain(self):
        ticks = _nice_ticks(0.0, 0.93)
        assert ticks == sorted(ticks)
        assert ticks[0] >= 0.0 and ticks[-1] <= 0.93
        assert len(ticks) >= 2

    def test_nice_ticks_degenerate_domain(self):
        assert len(_nice_ticks(1.0, 1.0)) >= 2


class TestBuildDashboard:
    def test_self_contained(self, events):
        html = build_dashboard(events=events)
        assert "<script" not in html.lower()
        assert "https://" not in html
        assert 'rel="stylesheet"' not in html  # CSS is inline

    def test_core_charts_present(self, events):
        html = build_dashboard(events=events)
        assert "Training loss" in html
        assert "Accuracy" in html
        assert "sparsity" in html.lower()
        assert "gradient" in html.lower() or "grad" in html.lower()
        assert "realized vs predicted" in html

    def test_dark_mode_and_palette(self, events):
        html = build_dashboard(events=events)
        assert "prefers-color-scheme: dark" in html
        assert "#2a78d6" in html  # series-1, light
        assert "#3987e5" in html  # series-1, dark

    def test_health_findings_section(self):
        bad = make_event(2, health_issues=["non_finite"]).to_record()
        html = build_dashboard(events=[make_event(0).to_record(), bad])
        assert "Health findings" in html
        assert "epoch 2: non_finite" in html

    def test_no_health_section_when_clean(self, events):
        assert "Health findings" not in build_dashboard(events=events)

    def test_alerts_section_from_report(self, events):
        report = {
            "spans": [],
            "metrics": {},
            "alerts": {
                "rules": [
                    {"name": "loss_cap", "metric": "train.loss",
                     "stat": "value", "op": "<", "threshold": 1e-6,
                     "for_count": 1},
                ],
                "evaluations": 4,
                "alerts": [
                    {"rule": "loss_cap", "metric": "train.loss",
                     "stat": "value", "op": "<", "threshold": 1e-6,
                     "value": 2.1, "consecutive": 1, "evaluation": 1},
                ],
                "active": ["loss_cap"],
                "ok": False,
            },
        }
        html = build_dashboard(events=events, report=report)
        assert "SLO rules" in html
        assert "loss_cap" in html
        assert "1 alert(s)" in html

    def test_alerts_section_ok_report(self, events):
        report = {
            "spans": [], "metrics": {},
            "alerts": {"rules": [], "evaluations": 2, "alerts": [],
                       "active": [], "ok": True},
        }
        html = build_dashboard(events=events, report=report)
        assert "SLO rules" in html and "ok" in html

    def test_slo_markers_split_from_health(self):
        # slo: issues render in the SLO section, not Health findings.
        bad = make_event(
            1, health_issues=["non_finite", "slo:loss_cap"]
        ).to_record()
        html = build_dashboard(events=[make_event(0).to_record(), bad])
        assert "SLO alerts" in html
        assert "epoch 1: loss_cap" in html
        assert "epoch 1: non_finite" in html
        assert "epoch 1: slo:loss_cap" not in html

    def test_report_only_dashboard(self):
        report = {
            "spans": [
                {"name": "epoch", "duration_s": 0.5},
                {"name": "epoch", "duration_s": 0.4},
            ],
            "metrics": {},
            "environment": {"git_sha": "abc1234"},
        }
        html = build_dashboard(report=report, title="Spans only")
        assert "Span summary" in html
        assert "abc1234"[:7] in html

    def test_history_trend_chart(self):
        history = [
            {"label": "bench", "metrics": {"elapsed_s": 10.0}},
            {"label": "bench", "metrics": {"elapsed_s": 12.0}},
        ]
        html = build_dashboard(history=history, title="Bench trend")
        assert "elapsed" in html.lower() or "wall" in html.lower()

    def test_empty_inputs_still_render(self):
        html = build_dashboard()
        assert "<html" in html


class TestWriteDashboard:
    def test_end_to_end(self, tmp_path, events):
        events_path = str(tmp_path / "run.jsonl")
        with EventLog(events_path, meta={"dataset": "products"}) as log:
            for epoch in range(3):
                log.emit(make_event(epoch))
        report_path = str(tmp_path / "run.json")
        with open(report_path, "w") as handle:
            json.dump({"spans": [], "metrics": {}, "environment": {}}, handle)
        out = str(tmp_path / "run.html")
        write_dashboard(out, events_path=events_path, report_path=report_path)
        html = open(out).read()
        assert "<script" not in html.lower()
        assert "https://" not in html
        assert "Training loss" in html
        assert "products" in html  # run meta lands in the subtitle

    def test_history_only(self, tmp_path):
        history_path = tmp_path / "BENCH_history.jsonl"
        rows = [
            {"schema": 1, "label": "bench", "timestamp": float(i),
             "metrics": {"elapsed_s": 10.0 + i}, "meta": {}}
            for i in range(3)
        ]
        history_path.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\n"
        )
        out = str(tmp_path / "trend.html")
        write_dashboard(out, history_path=str(history_path))
        assert "<svg" in open(out).read()


class TestProfileSection:
    def _report_with_profile(self):
        return {
            "schema": 1,
            "spans": [],
            "metrics": {},
            "profile": {
                "hz": 97.0,
                "samples": 42,
                "thread_samples": 42,
                "duration_estimate_s": 0.433,
                "phases": {
                    "aggregate": {"samples": 30, "seconds": 0.309},
                    "other": {"samples": 12, "seconds": 0.124},
                },
                "top": [
                    {
                        "function": "repro.kernels.jit:kernel",
                        "self_samples": 30,
                        "self_seconds": 0.309,
                    }
                ],
                "sources": ["worker-0", "worker-1"],
                "timeline": [],
            },
            "span_phase_seconds": {"aggregate": 0.31},
        }

    def test_profile_section_renders(self):
        html = build_dashboard(report=self._report_with_profile())
        assert "Profiler ticks" in html
        assert "Sampled seconds per phase" in html
        assert "repro.kernels.jit:kernel" in html
        assert "span wall" in html

    def test_no_profile_no_section(self):
        html = build_dashboard(report={"schema": 1, "spans": [], "metrics": {}})
        assert "Profiler ticks" not in html


class TestServingSection:
    def serve_report(self):
        return {
            "metrics": {
                "serve.requests": {"type": "counter", "value": 200.0},
                "serve.errors": {"type": "counter", "value": 0.0},
                "serve.cache.hits": {"type": "counter", "value": 150.0},
                "serve.cache.misses": {"type": "counter", "value": 50.0},
                "serve.batch.occupancy": {
                    "type": "histogram", "count": 20, "p50": 3.0, "p95": 8.0,
                },
                "serve.latency.request_s": {
                    "type": "histogram", "count": 200,
                    "p50": 0.002, "p95": 0.008, "p99": 0.02,
                },
                "serve.latency.queue_s": {
                    "type": "histogram", "count": 200,
                    "p50": 0.0005, "p95": 0.001, "p99": 0.002,
                },
            }
        }

    def test_serving_section_rendered(self):
        page = build_dashboard(report=self.serve_report())
        assert "Serving" in page
        assert "Cache hit rate" in page
        assert "Request latency percentiles" in page
        assert "stage latency breakdown" in page

    def test_no_serve_metrics_no_section(self):
        page = build_dashboard(report={"metrics": {}})
        assert "Serving" not in page
