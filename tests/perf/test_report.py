"""Unit tests for the Table-4 characterization renderer."""

import pytest

from repro.graphs import input_feature_size, load_dataset
from repro.perf.report import TABLE4_VARIANTS, characterization_table


@pytest.fixture(scope="module")
def table():
    graphs = {"products": load_dataset("products", scale=0.15, seed=0)}
    return characterization_table(graphs, {"products": 64}, f_hidden=128)


class TestCharacterizationTable:
    def test_all_variants_present(self, table):
        assert set(table.rows["products"]) == set(TABLE4_VARIANTS)

    def test_render_layout(self, table):
        text = table.render()
        assert "Retiring" in text
        assert "c-locality" in text
        assert "FillBufFull" in text

    def test_report_accessor(self, table):
        report = table.report("products", "distgnn")
        assert 0.0 <= report.retiring <= 1.0

    def test_improvement_metric(self, table):
        gain = table.improvement("products", "retiring")
        assert gain > 1.0  # c-locality retires more than distgnn
