"""Tests for the Perfetto / Chrome trace-event exporter."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    export_perfetto,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry


def sample_records():
    return [
        {
            "kind": "span",
            "span_id": 1,
            "parent_id": None,
            "name": "epoch",
            "start_s": 0.0,
            "duration_s": 0.010,
            "attrs": {"index": 0},
            "counters": {},
        },
        {
            "kind": "span",
            "span_id": 2,
            "parent_id": 1,
            "name": "kernel.basic",
            "start_s": 0.001,
            "duration_s": 0.004,
            "attrs": {"vertices": 100, "features": 8},
            "counters": {"gathers": 500.0, "flops": 8000.0},
        },
        {
            "kind": "span",
            "span_id": 3,
            "parent_id": 2,
            "name": "worker",
            "start_s": 0.001,
            "duration_s": 0.002,
            "attrs": {"worker_id": 0},
            "counters": {"gathers": 250.0},
        },
        {
            "kind": "span",
            "span_id": 4,
            "parent_id": 2,
            "name": "worker",
            "start_s": 0.001,
            "duration_s": 0.003,
            "attrs": {"worker_id": 1},
            "counters": {"gathers": 250.0},
        },
    ]


def x_events(events):
    return [e for e in events if e.get("ph") == "X"]


class TestChromeTraceEvents:
    def test_one_x_event_per_span(self):
        events = chrome_trace_events(sample_records())
        assert len(x_events(events)) == 4

    def test_timestamps_in_microseconds(self):
        events = x_events(chrome_trace_events(sample_records()))
        kernel = next(e for e in events if e["name"] == "kernel.basic")
        assert kernel["ts"] == pytest.approx(1000.0)
        assert kernel["dur"] == pytest.approx(4000.0)
        assert kernel["cat"] == "kernel"

    def test_worker_spans_get_own_lanes(self):
        events = x_events(chrome_trace_events(sample_records()))
        tids = {e["args"].get("worker_id"): e["tid"] for e in events}
        assert tids[0] == 1
        assert tids[1] == 2
        kernel = next(e for e in events if e["name"] == "kernel.basic")
        assert kernel["tid"] == 0

    def test_counter_tracks_are_cumulative(self):
        events = chrome_trace_events(sample_records())
        gathers = [
            e["args"]["gathers"]
            for e in events
            if e.get("ph") == "C" and e["name"] == "counters/gathers"
        ]
        # worker(250) then worker(250) then kernel(500), ordered by end ts.
        assert gathers == [250.0, 500.0, 1000.0]

    def test_thread_metadata_names_every_lane(self):
        events = chrome_trace_events(sample_records())
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "main", 1: "worker-0", 2: "worker-1"}

    def test_profile_timeline_becomes_instant_events(self):
        profile = {
            "timeline": [[0.002, "aggregate"], [0.006, "backward"]],
            "phases": {"aggregate": {"samples": 1, "seconds": 0.004}},
        }
        events = chrome_trace_events(sample_records(), profile=profile)
        instants = [e for e in events if e.get("ph") == "i"]
        assert [e["name"] for e in instants] == [
            "sample.aggregate",
            "sample.backward",
        ]
        assert instants[0]["ts"] == pytest.approx(2000.0)
        assert all(e["cat"] == "profiler" and e["s"] == "t" for e in instants)

    def test_profile_sample_counter_track_is_cumulative(self):
        profile = {"timeline": [[0.001, "other"], [0.002, "other"]]}
        events = chrome_trace_events(sample_records(), profile=profile)
        samples = [
            e["args"]["samples"]
            for e in events
            if e.get("ph") == "C" and e["name"] == "profiler/samples"
        ]
        assert samples == [1, 2]

    def test_no_profile_no_instant_events(self):
        events = chrome_trace_events(sample_records())
        assert not any(e.get("ph") == "i" for e in events)
        assert not any(e["name"] == "profiler/samples" for e in events)

    def test_registry_counters_sampled_at_trace_end(self):
        snapshot = {
            "kernel.basic.gathers": {"type": "counter", "value": 1000.0},
            "some.gauge": {"type": "gauge", "value": 3.0},
        }
        events = chrome_trace_events(sample_records(), snapshot)
        metric = [
            e for e in events if e["name"] == "metrics/kernel.basic.gathers"
        ]
        assert len(metric) == 1
        assert metric[0]["args"]["value"] == 1000.0
        assert not any(e["name"] == "metrics/some.gauge" for e in events)


class TestWriteAndExport:
    def test_written_file_is_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), sample_records(), meta={"cmd": "t"})
        doc = json.loads(path.read_text())
        assert count == 4
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 4
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"cmd": "t"}

    def test_empty_trace_still_valid(self, tmp_path):
        path = tmp_path / "empty.json"
        assert write_chrome_trace(str(path), []) == 0
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)

    def test_export_live_tracer(self, tmp_path):
        tracer = Tracer()
        metrics = MetricsRegistry()
        metrics.inc("kernel.basic.gathers", 7.0)
        with tracer.span("epoch", index=0):
            with tracer.span("kernel.basic", vertices=10, features=4) as span:
                span.add_counters({"gathers": 40.0})
            tracer.record(
                "worker", duration_s=0.001, attrs={"worker_id": 0}
            )
        path = tmp_path / "live.json"
        count = export_perfetto(str(path), tracer, metrics, meta={"m": 1})
        assert count == len(tracer.spans()) == 3
        doc = json.loads(path.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == count

    def test_chrome_trace_document_shape(self):
        doc = chrome_trace(sample_records())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
