"""Graphite (ISCA 2022) reproduction — GNNs on CPUs via cooperative
software-hardware techniques.

The package is organized as the paper is:

* :mod:`repro.graphs` — CSR graph substrate, generators, Table-3 twins,
  and the Section 4.4 locality reordering.
* :mod:`repro.tensors` — Section 4.3 mask-based feature compression and
  sparsity tooling.
* :mod:`repro.nn` — GCN / GraphSAGE numerics: layers, models, full-batch
  training (Sections 2.1, 6).
* :mod:`repro.kernels` — the execution strategies of Figure 11
  (DistGNN, MKL-SpMM, basic, fusion, compression, combined).
* :mod:`repro.parallel` — the Section 4.1 output-parallel chunk
  executor: ``serial`` / ``thread`` / ``process`` worker backends.
* :mod:`repro.perf` — the machine performance model that prices the
  software techniques (Figures 11/13/14/15, Tables 3-4).
* :mod:`repro.sim` — trace-driven cache/DRAM simulation (Section 7.3).
* :mod:`repro.dma` — the Section 5 DMA engine: descriptor format,
  Algorithm 4 execution, Algorithm 5 pipelined offload.
* :mod:`repro.gpu` — the Figure 2 sampled-training substrate.
* :mod:`repro.bench` — experiment harness; one function per paper
  artifact.
* :mod:`repro.obs` — run telemetry: hierarchical span tracer, metrics
  registry, and machine-readable run reports (off by default).

Quickstart::

    from repro.graphs import load_dataset, synthetic_features
    from repro.nn import build_model, Trainer, Adam

    graph = load_dataset("products", scale=0.25)
    features = synthetic_features(graph, 100)
    model = build_model("gcn", 100, 64, num_classes=16)
    trainer = Trainer(model, Adam(model, lr=0.01))
"""

from . import bench, dma, gpu, graphs, kernels, nn, obs, parallel, perf, sim, tensors

__version__ = "1.0.0"

__all__ = [
    "bench",
    "dma",
    "gpu",
    "graphs",
    "kernels",
    "nn",
    "obs",
    "parallel",
    "perf",
    "sim",
    "tensors",
    "__version__",
]
