"""Unit tests for the MKL SpMM baseline kernel (Section 6)."""

import numpy as np
import pytest

from repro import obs
from repro.graphs import randomized_order, synthetic_features
from repro.kernels import SpMMKernel
from repro.nn.aggregate import gather_reduce_reference


class TestOrderKwarg:
    """Variant sweeps pass ``order`` to every kernel uniformly; for SpMM
    it must be accepted and ignored (one sparse product computes all rows
    at once, so processing order cannot matter)."""

    def test_order_is_noop(self, small_products, features16):
        kernel = SpMMKernel()
        plain, _ = kernel.aggregate(small_products, features16, "gcn")
        order = randomized_order(small_products, seed=8)
        ordered, _ = kernel.aggregate(small_products, features16, "gcn", order=order)
        np.testing.assert_array_equal(plain, ordered)

    def test_wrong_length_order_rejected(self, small_products, features16):
        with pytest.raises(ValueError):
            SpMMKernel().aggregate(
                small_products, features16, "gcn", order=np.array([0, 1, 2])
            )

    def test_duplicate_ids_rejected(self, small_products, features16):
        """Regression: ``order`` used to be a silent no-op — any
        same-length array slipped through.  A repeated vertex id is not a
        permutation and must raise, exactly as the walking kernels do."""
        order = np.zeros(small_products.num_vertices, dtype=np.int64)
        with pytest.raises(ValueError, match="permutation"):
            SpMMKernel().aggregate(small_products, features16, "gcn", order=order)

    def test_out_of_range_ids_rejected(self, small_products, features16):
        order = np.arange(small_products.num_vertices, dtype=np.int64)
        order[0] = small_products.num_vertices  # one past the end
        with pytest.raises(ValueError, match="permutation"):
            SpMMKernel().aggregate(small_products, features16, "gcn", order=order)
        order[0] = -1
        with pytest.raises(ValueError, match="permutation"):
            SpMMKernel().aggregate(small_products, features16, "gcn", order=order)

    def test_matches_oracle_with_order(self, small_products, features16):
        order = randomized_order(small_products, seed=8)
        out, _ = SpMMKernel().aggregate(small_products, features16, "mean", order=order)
        reference = gather_reduce_reference(small_products, features16, "mean")
        np.testing.assert_allclose(out, reference, atol=3e-5)


class TestTelemetry:
    def test_publishes_kernel_mkl_span(self, small_products, features16):
        tracer, metrics = obs.enable()
        try:
            _, stats = SpMMKernel().aggregate(small_products, features16, "gcn")
        finally:
            obs.disable()
        spans = [s.to_record() for s in tracer.spans() if s.name == "kernel.mkl"]
        assert len(spans) == 1
        span = spans[0]
        assert span["attrs"]["aggregator"] == "gcn"
        assert span["attrs"]["engine"] == "spmm"
        assert span["counters"]["gathers"] == stats.gathers
        snapshot = metrics.snapshot()
        assert any(name.startswith("kernel.mkl.") for name in snapshot)

    def test_attribution_covers_mkl(self):
        from repro.perf.attribution import SPAN_VARIANTS

        assert SPAN_VARIANTS["kernel.mkl"] == "mkl"
