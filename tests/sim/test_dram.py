"""Unit tests for the DRAM model and the batch timing law."""

import pytest

from repro.sim import DramModel, batch_service_time


@pytest.fixture
def dram():
    return DramModel()


class TestDramModel:
    def test_service_time_matches_bandwidth(self, dram):
        # 64B at 140.8 GB/s at 2.7 GHz -> about 1.23 cycles per line.
        assert dram.service_cycles_per_line == pytest.approx(
            64 / 140.8e9 * 2.7e9, rel=1e-9
        )

    def test_requests_serialize(self, dram):
        first = dram.request(0.0)
        second = dram.request(0.0)
        assert second > first

    def test_latency_floor(self, dram):
        done = dram.request(0.0)
        assert done >= dram.base_latency_cycles

    def test_stats_accumulate(self, dram):
        dram.request(0.0)
        dram.request(0.0)
        assert dram.stats.lines_served == 2
        assert dram.stats.bytes_served == 128

    def test_reset(self, dram):
        dram.request(0.0)
        dram.reset()
        assert dram.stats.lines_served == 0
        assert dram.busy_until == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DramModel(bandwidth_bytes_per_s=0)


class TestLoadedLatency:
    def test_unloaded_is_base(self, dram):
        assert dram.loaded_latency(0.0) == pytest.approx(
            dram.base_latency_cycles, rel=0.01
        )

    def test_monotone_in_utilization(self, dram):
        lats = [dram.loaded_latency(u) for u in (0.0, 0.5, 0.9, 0.99)]
        assert all(b >= a for a, b in zip(lats, lats[1:]))

    def test_capped_at_4x(self, dram):
        assert dram.loaded_latency(0.999) <= 4.0 * dram.base_latency_cycles


class TestBatchLaw:
    def test_zero_lines_is_free(self, dram):
        assert batch_service_time(dram, 0, 8) == 0.0

    def test_more_parallelism_never_slower(self, dram):
        times = [batch_service_time(dram, 10000, p) for p in (1, 4, 16, 64)]
        assert all(b <= a for a, b in zip(times, times[1:]))

    def test_bandwidth_floor(self, dram):
        """With massive parallelism, time approaches lines * service."""
        lines = 100000
        time = batch_service_time(dram, lines, 10_000)
        assert time >= lines * dram.service_cycles_per_line * 0.99

    def test_latency_bound_small_parallelism(self, dram):
        """With parallelism 1, time is about lines * loaded latency."""
        lines = 1000
        time = batch_service_time(dram, lines, 1)
        assert time >= lines * dram.base_latency_cycles * 0.9

    def test_invalid_parallelism(self, dram):
        with pytest.raises(ValueError):
            batch_service_time(dram, 10, 0)

    def test_issue_overhead_floor(self, dram):
        time = batch_service_time(dram, 100, 1000, overhead_cycles_per_line=50.0)
        assert time >= 100 * 50.0
