"""Bottleneck attribution: join traced spans with the analytic cost story.

The paper's argument is a bottleneck story — aggregation is >60%
memory-bound (Figure 3), and every technique is justified by the DRAM
bytes it removes.  The tracer records *where the time went*; this module
explains *why*, span by span:

* each ``kernel.*`` span gets the analytic DRAM traffic its variant
  should have moved (:mod:`repro.perf.attribution`), a memory-bound /
  compute-bound verdict from the machine model, and its measured
  counters alongside;
* traffic is accounted per technique (basic vs fusion vs compression vs
  combined), the Figure 5 / Section 4.2-4.3 bytes-moved ledger;
* when the trace-driven cache simulator also ran
  (:class:`repro.sim.CoreAggregationSim` with a ``label``), the
  cost-model traffic is *reconciled* against the simulator's measured
  ``sim.<label>.dram.bytes_served`` — agreement within a tolerance, or a
  flagged divergence, because two independent planes disagreeing is a
  bug in one of them, not data.

Everything operates on plain span records (``Span.to_record()`` dicts or
re-read JSONL), so attribution works on a live tracer and on a trace
file loaded weeks later alike.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..perf.attribution import (
    predict_phase_times,
    predict_phase_traffic,
    workload_from_span,
)
from ..perf.machine import MachineConfig, cascade_lake_28

#: Relative disagreement between cost-model and simulator DRAM traffic
#: tolerated before a reconciliation is flagged divergent.  The two
#: planes count differently by construction — the model moves exact byte
#: counts, the simulator moves whole 64B cache lines through finite
#: set-associative caches — so line-granularity rounding and replacement
#: noise must fit inside the tolerance, while a structural error (a
#: missing stream, a wrong hit rate) must not.
DEFAULT_TRAFFIC_TOLERANCE = 0.35

#: Measured span counters carried into the attribution rows.
_MEASURED_KEYS = ("gathers", "flops", "dram_bytes_saved", "tasks", "prefetches")


@dataclass
class SpanAttribution:
    """One kernel span joined with its analytic prediction."""

    span_id: int
    name: str
    variant: str
    duration_s: float
    phases: Dict[str, Dict[str, float]]  # phase -> dram_read/dram_write/flops
    predicted_dram_bytes: float
    aggregation_dram_bytes: float
    predicted_memory_s: float
    predicted_compute_s: float
    verdict: str  # "memory-bound" | "compute-bound"
    memory_bound_fraction: float
    measured: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "variant": self.variant,
            "duration_s": self.duration_s,
            "phases": self.phases,
            "predicted_dram_bytes": self.predicted_dram_bytes,
            "aggregation_dram_bytes": self.aggregation_dram_bytes,
            "predicted_memory_s": self.predicted_memory_s,
            "predicted_compute_s": self.predicted_compute_s,
            "verdict": self.verdict,
            "memory_bound_fraction": self.memory_bound_fraction,
            "measured": self.measured,
        }


@dataclass
class TrafficReconciliation:
    """Cost-model vs simulator DRAM traffic for one kernel family.

    Both sides are *per aggregation pass*: the model side averages over
    the variant's spans, the simulator side divides its published byte
    total by its published run count.
    """

    variant: str
    model_bytes: float
    sim_bytes: float
    relative_error: float
    tolerance: float
    within_tolerance: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant": self.variant,
            "model_bytes": self.model_bytes,
            "sim_bytes": self.sim_bytes,
            "relative_error": self.relative_error,
            "tolerance": self.tolerance,
            "within_tolerance": self.within_tolerance,
        }


@dataclass
class AttributionReport:
    """The full attribution document for one traced run."""

    spans: List[SpanAttribution]
    technique_totals: Dict[str, Dict[str, float]]
    reconciliations: List[TrafficReconciliation]
    histograms: Dict[str, Dict[str, float]]
    tolerance: float

    def divergent(self) -> List[TrafficReconciliation]:
        """Reconciliations whose planes disagree beyond the tolerance."""
        return [r for r in self.reconciliations if not r.within_tolerance]

    def span_for(self, name: str) -> List[SpanAttribution]:
        return [s for s in self.spans if s.name == name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "spans": [s.to_dict() for s in self.spans],
            "technique_totals": self.technique_totals,
            "reconciliations": [r.to_dict() for r in self.reconciliations],
            "divergent": [r.variant for r in self.divergent()],
            "histograms": self.histograms,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def render(self) -> str:
        """Human-readable attribution summary (what ``repro profile`` prints)."""
        lines: List[str] = []
        header = (
            f"{'span':<20} {'verdict':<14} {'mem%':>6} {'wall ms':>9} "
            f"{'model MB':>9} {'agg MB':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for span in self.spans:
            lines.append(
                f"{span.name:<20} {span.verdict:<14} "
                f"{span.memory_bound_fraction:>6.1%} "
                f"{span.duration_s * 1e3:>9.2f} "
                f"{span.predicted_dram_bytes / 1e6:>9.3f} "
                f"{span.aggregation_dram_bytes / 1e6:>8.3f}"
            )
        if self.technique_totals:
            lines.append("")
            lines.append("bytes moved per technique (model, aggregation phase):")
            for variant, totals in self.technique_totals.items():
                saved = totals.get("dram_bytes_saved", 0.0)
                note = f"  saved={saved / 1e6:.3f} MB" if saved else ""
                lines.append(
                    f"  {variant:<12} {totals['aggregation_dram_bytes'] / 1e6:9.3f} MB"
                    f" over {int(totals['spans'])} span(s){note}"
                )
        for rec in self.reconciliations:
            status = "ok" if rec.within_tolerance else "DIVERGENT"
            lines.append(
                f"reconcile {rec.variant:<12} model={rec.model_bytes / 1e6:.3f} MB "
                f"sim={rec.sim_bytes / 1e6:.3f} MB "
                f"err={rec.relative_error:.1%} (tol {rec.tolerance:.0%}) {status}"
            )
        return "\n".join(lines)


def sim_traffic_from_metrics(
    snapshot: Mapping[str, Mapping[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Extract per-label simulator DRAM traffic from a metrics snapshot.

    Returns ``{label: {"bytes": total, "runs": n}}`` for every
    ``sim.<label>.dram.bytes_served`` counter (the unlabeled
    ``sim.dram.bytes_served`` appears under label ``""``).
    """
    out: Dict[str, Dict[str, float]] = {}
    suffix = ".dram.bytes_served"
    for name, metric in snapshot.items():
        if not name.startswith("sim.") or not name.endswith(suffix):
            continue
        label = name[len("sim."):-len(suffix)].rstrip(".")
        entry = out.setdefault(label, {"bytes": 0.0, "runs": 1.0})
        entry["bytes"] = float(metric.get("value", 0.0))
        runs = snapshot.get(f"sim.{label}.runs" if label else "sim.runs")
        if runs is not None and runs.get("value", 0.0) > 0:
            entry["runs"] = float(runs["value"])
    return out


def _histogram_summaries(
    snapshot: Mapping[str, Mapping[str, float]],
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for name, metric in snapshot.items():
        if metric.get("type") != "histogram":
            continue
        out[name] = {
            key: float(metric[key])
            for key in ("count", "mean", "p50", "p95", "p99")
            if key in metric
        }
    return out


def attribute_run(
    records: List[Dict[str, Any]],
    *,
    cost_model: Optional[Any] = None,
    machine: Optional[MachineConfig] = None,
    hit_rate: Optional[float] = None,
    sparsity: float = 0.0,
    metrics_snapshot: Optional[Mapping[str, Mapping[str, float]]] = None,
    sim_dram_bytes: Optional[Mapping[str, float]] = None,
    tolerance: float = DEFAULT_TRAFFIC_TOLERANCE,
) -> AttributionReport:
    """Attribute every kernel span of a traced run.

    Args:
        records: flat span records (``tracer.spans()`` mapped through
            ``to_record`` or re-read from JSONL).
        cost_model: optional :class:`repro.perf.CostModel` for the graph
            the run executed; supplies per-variant gather hit rates from
            the reuse profile of the variant's processing order.
        machine: platform model (defaults to the cost model's machine,
            else the paper's 28-core server).
        hit_rate: explicit gather hit rate overriding the cost model.
        sparsity: feature zero-fraction used for compression predictions.
        metrics_snapshot: a :meth:`MetricsRegistry.snapshot`; supplies
            simulator traffic (``sim.<variant>.dram.bytes_served``) and
            histogram percentile summaries.
        sim_dram_bytes: explicit ``{variant: bytes-per-pass}`` simulator
            traffic, overriding the snapshot-derived values.
        tolerance: relative model-vs-sim disagreement flagged as
            divergence.
    """
    if machine is None:
        machine = cost_model.machine if cost_model is not None else cascade_lake_28()
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    spans: List[SpanAttribution] = []
    totals: Dict[str, Dict[str, float]] = {}
    for record in records:
        workload = workload_from_span(record)
        if workload is None:
            continue
        if hit_rate is not None:
            rate = hit_rate
        elif cost_model is not None:
            rate = cost_model.hit_rate(workload.spec.order)
        else:
            rate = 0.0
        phases = predict_phase_traffic(workload, rate, sparsity)
        memory_s, compute_s = predict_phase_times(workload, phases, machine)
        bound_time = memory_s + compute_s
        fraction = memory_s / bound_time if bound_time > 0 else 0.0
        counters = record.get("counters") or {}
        agg_bytes = phases["aggregation"].dram_total
        total_bytes = sum(t.dram_total for t in phases.values())
        attribution = SpanAttribution(
            span_id=int(record.get("span_id", -1)),
            name=record["name"],
            variant=workload.variant,
            duration_s=float(record.get("duration_s", 0.0)),
            phases={
                phase: {
                    "dram_read": t.dram_read,
                    "dram_write": t.dram_write,
                    "flops": t.flops,
                }
                for phase, t in phases.items()
            },
            predicted_dram_bytes=total_bytes,
            aggregation_dram_bytes=agg_bytes,
            predicted_memory_s=memory_s,
            predicted_compute_s=compute_s,
            verdict="memory-bound" if memory_s >= compute_s else "compute-bound",
            memory_bound_fraction=fraction,
            measured={
                key: float(counters[key]) for key in _MEASURED_KEYS if key in counters
            },
        )
        spans.append(attribution)
        bucket = totals.setdefault(
            workload.variant,
            {
                "spans": 0.0,
                "duration_s": 0.0,
                "aggregation_dram_bytes": 0.0,
                "predicted_dram_bytes": 0.0,
                "dram_bytes_saved": 0.0,
            },
        )
        bucket["spans"] += 1.0
        bucket["duration_s"] += attribution.duration_s
        bucket["aggregation_dram_bytes"] += agg_bytes
        bucket["predicted_dram_bytes"] += total_bytes
        bucket["dram_bytes_saved"] += attribution.measured.get("dram_bytes_saved", 0.0)

    # ------------------------------------------------------------------
    # Reconcile model traffic against the cache simulator, where it ran.
    sim_per_pass: Dict[str, float] = {}
    if metrics_snapshot is not None:
        for label, entry in sim_traffic_from_metrics(metrics_snapshot).items():
            sim_per_pass[label] = entry["bytes"] / max(1.0, entry["runs"])
    if sim_dram_bytes is not None:
        sim_per_pass.update({k: float(v) for k, v in sim_dram_bytes.items()})

    reconciliations: List[TrafficReconciliation] = []
    for variant, bucket in totals.items():
        sim_bytes = sim_per_pass.get(variant)
        if sim_bytes is None or sim_bytes <= 0 or bucket["spans"] == 0:
            continue
        model_bytes = bucket["aggregation_dram_bytes"] / bucket["spans"]
        error = abs(model_bytes - sim_bytes) / sim_bytes
        reconciliations.append(
            TrafficReconciliation(
                variant=variant,
                model_bytes=model_bytes,
                sim_bytes=sim_bytes,
                relative_error=error,
                tolerance=tolerance,
                within_tolerance=error <= tolerance,
            )
        )

    histograms = (
        _histogram_summaries(metrics_snapshot) if metrics_snapshot is not None else {}
    )
    return AttributionReport(
        spans=spans,
        technique_totals=totals,
        reconciliations=reconciliations,
        histograms=histograms,
        tolerance=tolerance,
    )
