"""Unit tests for the rejected-design models (Section 5 / Section 7.2.1)."""

import pytest

from repro.dma.extensions import (
    aggressive_prefetch_estimate,
    compressed_dma_estimate,
)


class TestCompressedDma:
    def test_dense_features_buy_nothing(self):
        estimate = compressed_dma_estimate(sparsity=0.0)
        assert estimate.speedup_over_plain_dma < 1.0  # mask + expand cost

    def test_high_sparsity_buys_bandwidth(self):
        estimate = compressed_dma_estimate(sparsity=0.9)
        assert estimate.speedup_over_plain_dma > 1.5

    def test_monotone_in_sparsity(self):
        speeds = [
            compressed_dma_estimate(s).speedup_over_plain_dma
            for s in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_papers_conclusion_holds_at_moderate_sparsity(self):
        """The paper rejects the hardware: at the 50% sparsity of the main
        evaluation, the gain does not clear the area bar."""
        estimate = compressed_dma_estimate(sparsity=0.5)
        assert not estimate.worthwhile

    def test_extreme_sparsity_flips_the_tradeoff(self):
        """...but a >=90%-sparse regime (deep-layer dropout) would justify
        it — the quantified version of 'the use case does not justify'."""
        estimate = compressed_dma_estimate(sparsity=0.95)
        assert estimate.worthwhile

    def test_area_ratio_over_one(self):
        assert compressed_dma_estimate(0.5).area_ratio > 1.0


class TestAggressivePrefetch:
    def test_full_buffers_no_gain(self):
        """Table 4: papers/twitter keep fill buffers 100% full — deeper
        prefetch cannot help."""
        estimate = aggressive_prefetch_estimate(1.0)
        assert estimate.speedup_over_default == pytest.approx(1.0)

    def test_idle_buffers_yield_speedup(self):
        """products after c-locality sits at ~31% occupancy — headroom."""
        estimate = aggressive_prefetch_estimate(0.31)
        assert estimate.speedup_over_default > 1.05

    def test_bounded_by_interface(self):
        estimate = aggressive_prefetch_estimate(0.0)
        assert estimate.speedup_over_default <= 1.0 / 0.88 + 1e-9

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            aggressive_prefetch_estimate(1.5)
