"""Scaled synthetic twins of the paper's Table 3 datasets.

The paper evaluates on four graphs too large to redistribute or to simulate
in Python.  Each twin preserves the *shape* properties the evaluation
depends on, at a configurable scale:

* mean degree (drives the aggregation/update time ratio — Fig. 13),
* hub skew and community structure (drive the locality optimization's
  benefit — Fig. 15; random graphs without neighbor sharing would starve
  Algorithm 3 of reuse to exploit),
* source-ordering quality: wikipedia and twitter "possess better-than-
  average locality already, possibly from pre-processing" (Section 7.2.4),
  reproduced by keeping their communities contiguous in vertex-id order,
* relative feature widths (Table 3's F_input; hidden width 256).

Twins are deterministic given the scale and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .csr import CSRGraph
from .generators import community_graph

#: The paper's hidden feature length (Section 6), scaled with the graphs.
PAPER_HIDDEN_FEATURES = 256


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one Table-3 twin."""

    name: str
    paper_vertices: float  # millions, for documentation / cache scaling
    paper_edges: float  # millions
    mean_degree: float
    input_features: int
    base_vertices: int  # twin size at scale=1.0
    community_size: int
    within_fraction: float
    hub_exponent: float
    degree_exponent: float
    pre_localized: bool  # wikipedia/twitter ship with locality baked in
    scatter_fraction: float = 1.0  # id shuffle when NOT pre-localized


SPECS: Dict[str, DatasetSpec] = {
    # products: high mean degree (50.5), very high variance, strong
    # communities (co-purchase clusters) -> the biggest locality winner.
    "products": DatasetSpec(
        name="products",
        paper_vertices=2.45,
        paper_edges=124.0,
        mean_degree=50.5,
        input_features=100,
        base_vertices=4096,
        community_size=48,
        within_fraction=0.92,
        hub_exponent=1.8,
        degree_exponent=2.8,
        pre_localized=False,
    ),
    # wikipedia: low mean degree (12.6); its source ordering already embeds
    # locality (Fig. 15: combined beats randomized without reordering).
    "wikipedia": DatasetSpec(
        name="wikipedia",
        paper_vertices=3.57,
        paper_edges=45.0,
        mean_degree=12.6,
        input_features=128,
        base_vertices=6144,
        community_size=32,
        within_fraction=0.75,
        hub_exponent=2.3,
        degree_exponent=2.3,
        pre_localized=True,
        scatter_fraction=0.35,
    ),
    # papers: mean degree 14.5, mild hubs, sprawling communities much
    # larger than cache -> locality helps least (Fig. 11b: 1.83 vs
    # products 2.57).
    "papers": DatasetSpec(
        name="papers",
        paper_vertices=111.0,
        paper_edges=1620.0,
        mean_degree=14.5,
        input_features=256,
        base_vertices=12288,
        community_size=80,
        within_fraction=0.60,
        hub_exponent=2.4,
        degree_exponent=2.4,
        pre_localized=False,
    ),
    # twitter: mean degree 23.8 with extreme max degree (3M in the paper)
    # -> heaviest hub skew; pre-localized source ordering.
    "twitter": DatasetSpec(
        name="twitter",
        paper_vertices=61.6,
        paper_edges=1470.0,
        mean_degree=23.8,
        input_features=256,
        base_vertices=10240,
        community_size=40,
        within_fraction=0.70,
        hub_exponent=1.55,
        degree_exponent=1.8,
        pre_localized=True,
        scatter_fraction=0.45,
    ),
}

DATASET_NAMES = tuple(SPECS)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> CSRGraph:
    """Build the twin of a Table-3 graph.

    Args:
        name: one of ``products``, ``wikipedia``, ``papers``, ``twitter``.
        scale: vertex-count multiplier relative to the default twin size.
        seed: generator seed.

    Returns:
        A :class:`CSRGraph` named after the dataset.
    """
    if name not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    spec = SPECS[name]
    n = max(128, int(spec.base_vertices * scale))
    return community_graph(
        num_vertices=n,
        avg_degree=spec.mean_degree,
        community_size=max(8, int(spec.community_size * min(1.0, scale * 2))),
        within_fraction=spec.within_fraction,
        hub_exponent=spec.hub_exponent,
        degree_exponent=spec.degree_exponent,
        scatter_ids=True,
        scatter_fraction=spec.scatter_fraction if spec.pre_localized else 1.0,
        seed=seed,
        name=spec.name,
    )


def input_feature_size(name: str, scale: float = 1.0) -> int:
    """F_input for the twin; scaled with a floor of 16."""
    return max(16, int(SPECS[name].input_features * min(1.0, max(scale, 0.25))))


def hidden_feature_size(scale: float = 1.0) -> int:
    """Hidden feature width, 256 in the paper, scaled with a floor of 16."""
    return max(16, int(PAPER_HIDDEN_FEATURES * min(1.0, max(scale, 0.25))))


def synthetic_features(
    graph: CSRGraph, num_features: int, seed: int = 0, sparsity: float = 0.0
) -> np.ndarray:
    """Random float32 features, optionally with injected zero fraction.

    The paper populates input features with synthetic values and, when
    evaluating compression, "randomly set[s] the features to zeros with
    predefined rates" (Section 6).
    """
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((graph.num_vertices, num_features)).astype(np.float32)
    if sparsity > 0.0:
        mask = rng.random(h.shape) < sparsity
        h[mask] = 0.0
    return h


def all_datasets(scale: float = 1.0, seed: int = 0) -> Dict[str, CSRGraph]:
    """All four twins at the given scale."""
    return {name: load_dataset(name, scale=scale, seed=seed) for name in SPECS}


def paper_row(name: str) -> Tuple[float, float, float, int]:
    """The published Table-3 row (|V| M, |E| M, mean degree, F_input)."""
    spec = SPECS[name]
    return (
        spec.paper_vertices,
        spec.paper_edges,
        spec.mean_degree,
        spec.input_features,
    )
