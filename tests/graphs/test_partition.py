"""Unit tests for task partitioning / load-balance analysis (§4.1)."""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    GraphError,
    community_graph,
    load_dataset,
    power_law_graph,
    star_graph,
    uniform_graph,
)
from repro.graphs.partition import (
    PARTITION_METHODS,
    balance_comparison,
    build_shards,
    chunk_boundaries,
    dynamic_schedule,
    edge_cut_partition,
    static_cyclic_schedule,
    static_schedule,
    task_weights,
)


class TestTaskWeights:
    def test_total_is_gathers(self, small_uniform):
        weights = task_weights(small_uniform, 16)
        assert weights.sum() == small_uniform.num_edges + small_uniform.num_vertices

    def test_task_count(self, small_uniform):
        weights = task_weights(small_uniform, 16)
        n = small_uniform.num_vertices
        assert len(weights) == (n + 15) // 16

    def test_order_reshuffles_weights(self):
        graph = star_graph(63)  # hub weight concentrated in task 0
        natural = task_weights(graph, 8)
        moved = task_weights(graph, 8, order=np.arange(63, -1, -1))
        assert natural[0] != moved[0]
        assert natural.sum() == moved.sum()

    def test_invalid_task_size(self, small_uniform):
        with pytest.raises(ValueError):
            task_weights(small_uniform, 0)

    def test_matches_per_task_loop(self, small_products):
        """The reduceat implementation must be *exactly* the old per-task
        Python loop — same float64 accumulation order, bit for bit."""
        task_size = 16
        degs = small_products.degrees()
        n = small_products.num_vertices
        num_tasks = (n + task_size - 1) // task_size
        expected = np.zeros(num_tasks)
        for task in range(num_tasks):
            lo = task * task_size
            hi = min(lo + task_size, n)
            expected[task] = float((degs[lo:hi] + 1).sum())
        got = task_weights(small_products, task_size)
        np.testing.assert_array_equal(got, expected)


class TestSchedules:
    def test_dynamic_never_worse_than_static(self):
        graph = load_dataset("products", scale=0.1, seed=0)
        static, dynamic = balance_comparison(graph, task_size=16, threads=8)
        assert dynamic.makespan <= static.makespan

    def test_skewed_graph_needs_dynamic(self):
        """Power-law degrees create heavy tasks; dynamic scheduling cuts
        the makespan — the paper's §4.1 motivation."""
        graph = load_dataset("twitter", scale=0.1, seed=0)
        static, dynamic = balance_comparison(graph, task_size=8, threads=8)
        assert dynamic.imbalance < static.imbalance

    def test_uniform_graph_balanced_either_way(self):
        graph = uniform_graph(512, 8.0, seed=0)
        static, dynamic = balance_comparison(graph, task_size=16, threads=8)
        assert static.imbalance < 1.5
        assert dynamic.imbalance < 1.2

    def test_work_conserved(self):
        graph = load_dataset("products", scale=0.1, seed=0)
        weights = task_weights(graph, 32)
        static = static_schedule(weights, 8)
        dynamic = dynamic_schedule(weights, 8)
        assert static.thread_work.sum() == pytest.approx(weights.sum())
        assert dynamic.thread_work.sum() == pytest.approx(weights.sum())

    def test_single_thread_degenerate(self):
        weights = np.array([3.0, 5.0])
        report = dynamic_schedule(weights, 1)
        assert report.makespan == 8.0
        assert report.imbalance == 1.0

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            static_schedule(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            dynamic_schedule(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            static_cyclic_schedule(np.array([1.0]), 0)

    def test_static_assigns_contiguous_blocks(self):
        """OpenMP ``schedule(static)`` gives each thread ONE contiguous
        block of ceil(n/threads) iterations — not a round-robin."""
        weights = np.arange(1.0, 8.0)  # 7 tasks, 3 threads -> block of 3
        report = static_schedule(weights, 3)
        assert report.policy == "static"
        np.testing.assert_array_equal(
            report.thread_work,
            [1 + 2 + 3, 4 + 5 + 6, 7.0],
        )

    def test_cyclic_assigns_round_robin(self):
        weights = np.arange(1.0, 8.0)
        report = static_cyclic_schedule(weights, 3)
        assert report.policy == "static_cyclic"
        np.testing.assert_array_equal(
            report.thread_work,
            [1 + 4 + 7, 2 + 5, 3 + 6],
        )

    def test_block_and_cyclic_differ_on_sorted_weights(self):
        """Monotone weights are the tell: blocks concentrate the heavy
        tail on the last thread while round-robin spreads it."""
        weights = np.arange(64, dtype=np.float64) ** 2
        block = static_schedule(weights, 8)
        cyclic = static_cyclic_schedule(weights, 8)
        assert block.imbalance > cyclic.imbalance
        assert block.makespan == pytest.approx(weights[-8:].sum())

    def test_threads_exceed_tasks(self):
        weights = np.array([2.0, 3.0])
        report = static_schedule(weights, 4)
        assert report.thread_work.sum() == pytest.approx(5.0)
        assert (report.thread_work[2:] == 0).all()


class TestChunkBoundaries:
    def test_cover_all_vertices(self):
        slices = chunk_boundaries(100, 16)
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 100
        assert slices[-1].stop == 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_boundaries(10, 0)


class TestEdgeCutPartition:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_every_vertex_assigned(self, small_community, method):
        result = edge_cut_partition(small_community, 4, method=method)
        assert result.assignment.shape == (small_community.num_vertices,)
        assert result.assignment.min() >= 0
        assert result.assignment.max() < 4
        assert result.part_sizes().sum() == small_community.num_vertices

    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_capacity_respected(self, small_community, method):
        n = small_community.num_vertices
        result = edge_cut_partition(small_community, 4, method=method)
        assert result.part_sizes().max() <= -(-n // 4)  # ceil(n / 4)

    def test_divisible_sizes_are_exact(self):
        graph = uniform_graph(120, 6.0, seed=2)
        for method in PARTITION_METHODS:
            result = edge_cut_partition(graph, 4, method=method)
            np.testing.assert_array_equal(result.part_sizes(), [30, 30, 30, 30])
            assert result.balance == pytest.approx(1.0)

    def test_locality_aware_beats_contiguous_on_communities(self):
        """Community graphs reorder vertices randomly, so contiguous
        blocks cut almost everything; BFS/greedy must recover most of
        the community structure."""
        graph = community_graph(
            400, avg_degree=8.0, community_size=100, within_fraction=0.95, seed=7
        )
        contiguous = edge_cut_partition(graph, 4, method="contiguous")
        for method in ("bfs", "greedy"):
            result = edge_cut_partition(graph, 4, method=method)
            assert result.edge_cut(graph) < contiguous.edge_cut(graph)

    @pytest.mark.parametrize("method", ("bfs", "greedy"))
    def test_refinement_never_worsens_cut(self, method):
        graph = power_law_graph(300, avg_degree=6.0, seed=5)
        raw = edge_cut_partition(graph, 3, method=method, refine_passes=0)
        refined = edge_cut_partition(graph, 3, method=method, refine_passes=2)
        assert refined.edge_cut(graph) <= raw.edge_cut(graph)
        assert refined.part_sizes().max() <= raw.part_sizes().max()

    def test_deterministic(self, small_community):
        a = edge_cut_partition(small_community, 4, method="greedy")
        b = edge_cut_partition(small_community, 4, method="greedy")
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_single_part(self, small_uniform):
        result = edge_cut_partition(small_uniform, 1)
        assert (result.assignment == 0).all()
        assert result.edge_cut(small_uniform) == 0
        assert result.cut_fraction(small_uniform) == 0.0

    def test_errors(self, small_uniform):
        with pytest.raises(ValueError):
            edge_cut_partition(small_uniform, 0)
        with pytest.raises(ValueError):
            edge_cut_partition(small_uniform, small_uniform.num_vertices + 1)
        with pytest.raises(ValueError):
            edge_cut_partition(small_uniform, 2, method="metis")

    def test_cut_fraction_matches_brute_force(self, tiny_graph):
        result = edge_cut_partition(tiny_graph, 2, method="contiguous")
        assign = result.assignment
        cut = 0
        for dst in range(tiny_graph.num_vertices):
            lo, hi = tiny_graph.indptr[dst], tiny_graph.indptr[dst + 1]
            for src in tiny_graph.indices[lo:hi]:
                cut += assign[dst] != assign[src]
        assert result.edge_cut(tiny_graph) == cut


class TestBuildShards:
    @pytest.fixture(scope="class")
    def sharded(self, small_community):
        result = edge_cut_partition(small_community, 3, method="greedy")
        return small_community, result.assignment, build_shards(
            small_community, result.assignment
        )

    def test_locals_cover_all_vertices(self, sharded):
        graph, assignment, shards = sharded
        union = np.concatenate([s.local_vertices for s in shards])
        np.testing.assert_array_equal(np.sort(union), np.arange(graph.num_vertices))
        for shard in shards:
            np.testing.assert_array_equal(
                shard.local_vertices, np.sort(shard.local_vertices)
            )
            assert (assignment[shard.local_vertices] == shard.part).all()

    def test_halo_is_exactly_remote_in_neighbors(self, sharded):
        graph, assignment, shards = sharded
        for shard in shards:
            expected = set()
            for dst in shard.local_vertices:
                lo, hi = graph.indptr[dst], graph.indptr[dst + 1]
                for src in graph.indices[lo:hi]:
                    if assignment[src] != shard.part:
                        expected.add(int(src))
            assert set(shard.halo_vertices.tolist()) == expected
            assert (assignment[shard.halo_vertices] != shard.part).all()

    def test_local_columns_decode_to_global(self, sharded):
        """Remapped column ids must round-trip to the original global
        sources: ids < num_local index local_vertices, the rest halo."""
        graph, _, shards = sharded
        for shard in shards:
            vocab = np.concatenate([shard.local_vertices, shard.halo_vertices])
            assert shard.indices.min() >= 0
            assert shard.indices.max() < len(vocab)
            decoded = vocab[shard.indices]
            np.testing.assert_array_equal(
                decoded, graph.indices[shard.edge_positions]
            )

    def test_edge_positions_restrict_per_edge_arrays(self, sharded):
        graph, _, shards = sharded
        edge_tag = np.arange(graph.num_edges, dtype=np.int64) * 7 + 1
        seen = np.concatenate([edge_tag[s.edge_positions] for s in shards])
        # Every global edge appears in exactly one shard.
        np.testing.assert_array_equal(np.sort(seen), np.sort(edge_tag))

    def test_indptr_matches_degrees(self, sharded):
        graph, _, shards = sharded
        degs = graph.degrees()
        for shard in shards:
            np.testing.assert_array_equal(
                np.diff(shard.indptr), degs[shard.local_vertices]
            )
            assert shard.indptr[-1] == shard.num_edges

    def test_length_mismatch_raises(self, small_uniform):
        with pytest.raises(GraphError):
            build_shards(small_uniform, np.zeros(3, dtype=np.int64))

    def test_halo_fraction_bounds(self, sharded):
        _, _, shards = sharded
        for shard in shards:
            assert 0.0 <= shard.halo_fraction < 1.0
