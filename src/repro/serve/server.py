"""Online GNN inference service: request loop + instrumented pipeline.

:class:`InferenceService` answers per-vertex / per-batch classification
and embedding queries against a trained :class:`~repro.nn.model.
GNNModel`.  One request's life:

1. **admission** — born with a fresh trace id under a ``serve.request``
   span on the HTTP handler thread; rejected (503) when the batcher's
   queue is full;
2. **cache** — per-vertex LRU lookup; a full hit answers without
   touching the compute path;
3. **queue + batch** — the request parks in the batcher; the worker
   thread coalesces neighbors (max-size / max-wait), records each
   request's ``serve.queue`` wait, and opens one ``serve.batch`` span
   parented under the batch's first request;
4. **assemble + forward** — neighborhood assembly
   (:func:`~repro.nn.minibatch.assemble_batch`, exact by default) and
   the vectorized block forward, whose ``kernel.serve.block`` spans
   nest under ``serve.batch`` — so one traced request renders as
   ``serve.request → serve.queue → serve.batch → kernel.*``;
5. **reply** — per-vertex rows (cached + fresh merged) serialize to
   JSON with the trace id and measured latency; fresh rows feed the
   cache on the way out.

:class:`ServingServer` is the stdlib ``ThreadingHTTPServer`` front end
(same shape as :class:`~repro.obs.live.MetricsServer`): ``GET/POST
/v1/predict``, ``/healthz``, ``/stats.json``.  Publish the ``serve.*``
metrics through a ``MetricsServer`` ``/metrics`` endpoint by enabling
telemetry around the service (the CLI's ``--serve-metrics`` does).
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.minibatch import assemble_batch, block_forward
from ..nn.model import GNNModel
from .batcher import RequestBatcher, ServeRequest
from .cache import EmbeddingCache

logger = logging.getLogger(__name__)

#: Query modes a request may ask for.
MODES = ("classify", "embedding")

#: Default end-to-end wait bound before a request gives up (504).
DEFAULT_TIMEOUT_S = 10.0


class AdmissionRejected(RuntimeError):
    """The batcher's admission queue was full — shed, not queued."""


class RequestTimeout(RuntimeError):
    """The batcher did not answer within the request's wait bound."""


class InferenceService:
    """The serving pipeline: cache -> batcher -> assembled block forward."""

    def __init__(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        model: GNNModel,
        cache_capacity: int = 4096,
        cache_max_age_s: Optional[float] = None,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        max_queue: int = 128,
        fanouts: Optional[Sequence[int]] = None,
        seed: int = 0,
    ) -> None:
        if features.shape[0] != graph.num_vertices:
            raise ValueError(
                f"feature rows {features.shape[0]} != "
                f"num_vertices {graph.num_vertices}"
            )
        self.graph = graph
        self.features = features
        self.model = model
        self.fanouts = list(fanouts) if fanouts is not None else None
        self._rng = np.random.default_rng(seed)
        self.cache = EmbeddingCache(
            capacity=cache_capacity, max_age_s=cache_max_age_s
        )
        self.batcher = RequestBatcher(
            self._run_batch,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            max_queue=max_queue,
        )
        self.requests = 0
        self.errors = 0
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    def _obs(self):
        from ..obs import get_metrics, get_tracer

        return get_tracer(), get_metrics()

    def query(
        self,
        vertices: Sequence[int],
        mode: str = "classify",
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> Dict[str, Any]:
        """Answer one request (runs on the caller's thread; blocking).

        Raises ``ValueError`` on bad input, :class:`AdmissionRejected`
        under shed load, :class:`RequestTimeout` past ``timeout_s``.
        """
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        requested = np.asarray(list(vertices), dtype=np.int64)
        if requested.size == 0:
            raise ValueError("request needs at least one vertex")
        if requested.min() < 0 or requested.max() >= self.graph.num_vertices:
            raise ValueError(
                f"vertex ids must be in [0, {self.graph.num_vertices}), "
                f"got {requested.min()}..{requested.max()}"
            )
        tracer, registry = self._obs()
        trace_id = uuid.uuid4().hex
        start = time.perf_counter()
        self.requests += 1
        with tracer.span(
            "serve.request",
            trace_id=trace_id,
            mode=mode,
            vertices=int(requested.size),
        ) as active:
            registry.inc("serve.requests")
            try:
                values, cached_all, batched = self._resolve(
                    requested, active, trace_id, timeout_s
                )
            except BaseException:
                self.errors += 1
                registry.inc("serve.errors")
                active.set_attr("status", "error")
                raise
            latency_s = time.perf_counter() - start
            registry.observe("serve.latency.request_s", latency_s)
            active.set_attr("cached", cached_all)
            active.set_attr("batched", batched)
            active.set_attr("status", "ok")
        return self._render(requested, mode, values, trace_id, latency_s,
                            cached_all)

    def _resolve(
        self, requested: np.ndarray, active: Any, trace_id: str,
        timeout_s: float,
    ) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray]], bool, bool]:
        """Per-vertex (logits, embedding) rows: cache first, batch rest."""
        unique = np.unique(requested)
        cached_rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        missing: List[int] = []
        for v in unique:
            value = self.cache.get(int(v))
            if value is None:
                missing.append(int(v))
            else:
                cached_rows[int(v)] = value
        if not missing:
            return cached_rows, True, False
        request = ServeRequest(
            vertices=requested,
            mode="batch",
            trace_id=trace_id,
            span=getattr(active, "span", None),
            missing=np.asarray(missing, dtype=np.int64),
            cached_rows=cached_rows,
        )
        if not self.batcher.submit(request):
            raise AdmissionRejected(
                f"admission queue full ({self.batcher.max_queue} waiting)"
            )
        if not request.done.wait(timeout=timeout_s):
            raise RequestTimeout(f"no answer within {timeout_s:g}s")
        if request.error is not None:
            raise request.error
        return request.result["values"], False, True

    # ------------------------------------------------------------------
    def _run_batch(self, batch: List[ServeRequest]) -> None:
        """Batcher worker: one assembled forward for the whole batch."""
        tracer, registry = self._obs()
        need = np.unique(
            np.concatenate([r.missing for r in batch if r.missing is not None])
        )
        with tracer.span(
            "serve.batch",
            parent=batch[0].span,
            requests=len(batch),
            vertices=int(need.size),
            trace_id=batch[0].trace_id,
            trace_ids=[r.trace_id for r in batch],
        ) as span:
            try:
                with registry.histogram("serve.latency.assemble_s").time():
                    assembled = assemble_batch(
                        self.graph, need, self.model.num_layers,
                        fanouts=self.fanouts, rng=self._rng,
                    )
                with registry.histogram("serve.latency.forward_s").time():
                    result = block_forward(
                        self.graph, self.model, assembled, self.features
                    )
                span.add_counters(
                    {"assembled_edges": float(assembled.total_sampled_edges)}
                )
            except BaseException as error:  # noqa: BLE001 - fail the batch
                for request in batch:
                    request.finish(error=error)
                return
            computed: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            rows = np.searchsorted(result.query_vertices, need)
            for v, row in zip(need.tolist(), rows.tolist()):
                value = (result.logits[row], result.embeddings[row])
                computed[v] = value
                self.cache.put(v, value)
            for request in batch:
                values = dict(request.cached_rows)
                if request.missing is not None:
                    for v in request.missing.tolist():
                        values[v] = computed[v]
                request.finish(result={"values": values})

    # ------------------------------------------------------------------
    @staticmethod
    def _render(
        requested: np.ndarray,
        mode: str,
        values: Dict[int, Tuple[np.ndarray, np.ndarray]],
        trace_id: str,
        latency_s: float,
        cached: bool,
    ) -> Dict[str, Any]:
        response: Dict[str, Any] = {
            "trace_id": trace_id,
            "mode": mode,
            "vertices": [int(v) for v in requested],
            "latency_ms": latency_s * 1e3,
            "cached": cached,
        }
        if mode == "classify":
            classes, scores = [], []
            for v in requested.tolist():
                logits, _ = values[v]
                classes.append(int(np.argmax(logits)))
                scores.append(float(np.max(logits)))
            response["classes"] = classes
            response["scores"] = scores
        else:
            response["embeddings"] = [
                [float(x) for x in values[v][1]] for v in requested.tolist()
            ]
        return response

    def stats(self) -> Dict[str, Any]:
        return {
            "uptime_s": time.monotonic() - self._started_monotonic,
            "requests": self.requests,
            "errors": self.errors,
            "graph": {
                "name": self.graph.name,
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
            },
            "model": {
                "layers": self.model.num_layers,
                "widths": self.model.hidden_widths(),
            },
            "assembly": "sampled" if self.fanouts else "exact",
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
        }

    def close(self) -> None:
        self.batcher.close()


# ----------------------------------------------------------------------
class _ServeHandler(BaseHTTPRequestHandler):
    """HTTP front end bound to the owning :class:`ServingServer`."""

    server_version = "repro-serve/1"

    @property
    def service(self) -> InferenceService:
        return self.server.owner.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        if parts.path == "/v1/predict":
            params = parse_qs(parts.query)
            raw = params.get("vertices", params.get("vertex", []))
            vertices: List[int] = []
            try:
                for chunk in raw:
                    vertices.extend(int(v) for v in chunk.split(",") if v)
            except ValueError:
                self._reply_json(400, {"error": "vertex ids must be integers"})
                return
            mode = params.get("mode", ["classify"])[0]
            self._predict(vertices, mode)
        elif parts.path == "/healthz":
            self._reply_json(200, {"status": "ok", **self.service.stats()["model"]})
        elif parts.path in ("/", "/stats.json"):
            self._reply_json(200, self.service.stats())
        else:
            self._reply_json(404, {"error": "not found"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if urlsplit(self.path).path != "/v1/predict":
            self._reply_json(404, {"error": "not found"})
            return
        length = int(self.headers.get("Content-Length", 0))
        try:
            doc = json.loads(self.rfile.read(length) or b"{}")
            vertices = [int(v) for v in doc.get("vertices", [])]
            mode = doc.get("mode", "classify")
        except (ValueError, TypeError):
            self._reply_json(400, {"error": "body must be JSON with integer "
                                            "'vertices' and optional 'mode'"})
            return
        self._predict(vertices, mode)

    def _predict(self, vertices: List[int], mode: str) -> None:
        try:
            response = self.service.query(vertices, mode=mode)
        except ValueError as error:
            self._reply_json(400, {"error": str(error)})
        except AdmissionRejected as error:
            self._reply_json(503, {"error": str(error)})
        except RequestTimeout as error:
            self._reply_json(504, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - serve a 500, keep running
            logger.exception("request failed")
            self._reply_json(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply_json(200, response)

    def _reply_json(self, status: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("serve: " + format, *args)


class ServingServer:
    """Background HTTP server answering inference queries.

    Same contract as :class:`~repro.obs.live.MetricsServer`: ``port=0``
    binds ephemerally, requests run on daemon threads (one per
    connection — the batcher is what bounds concurrency), usable as a
    context manager.
    """

    def __init__(
        self, service: InferenceService, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        return f"http://{self.host}:{self.port}" if self._httpd else None

    def start(self) -> "ServingServer":
        if self._httpd is None:
            httpd = ThreadingHTTPServer(
                (self.host, self._requested_port), _ServeHandler
            )
            httpd.daemon_threads = True
            httpd.owner = self  # type: ignore[attr-defined]
            self._httpd = httpd
            self._thread = threading.Thread(
                target=httpd.serve_forever,
                name="repro-serve-server",
                daemon=True,
            )
            self._thread.start()
            logger.info("inference server listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
        self.service.close()

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
