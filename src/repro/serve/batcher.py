"""Request batcher: admission queue + max-size/max-wait coalescing.

Inference on one vertex and on thirty-two vertices cost nearly the same
(the frontier dedups, the matmuls batch), so the server coalesces
concurrent requests into one forward pass.  The policy is the standard
serving pair:

* **max_batch** — a batch closes as soon as it holds this many
  requests;
* **max_wait_s** — a lone request never waits longer than this for
  company; the window opens when the *first* request of a batch is
  dequeued.

Upstream of the worker sits a bounded **admission queue**: when it is
full, :meth:`RequestBatcher.submit` refuses immediately (the caller
answers HTTP 503) instead of letting latency collapse under a standing
queue — load shedding as a first-class, counted outcome.

Telemetry: ``serve.queue_depth`` / ``serve.inflight`` gauges,
``serve.batches`` counter, ``serve.batch.occupancy`` and
``serve.latency.queue_s`` histograms, plus one ``serve.queue`` span per
request (parented under that request's ``serve.request`` span) so the
queue wait is visible inside the request's trace tree.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np


@dataclass
class ServeRequest:
    """One in-flight query travelling handler thread -> worker thread."""

    vertices: np.ndarray  # requested vertex ids (global, possibly repeated)
    mode: str  # "classify" | "embedding"
    trace_id: str
    span: Optional[Any] = None  # the open serve.request Span (or None)
    missing: Optional[np.ndarray] = None  # vertices the cache could not answer
    cached_rows: Dict[int, Any] = field(default_factory=dict)
    enqueued_monotonic: float = 0.0
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[Dict[str, Any]] = None
    error: Optional[BaseException] = None

    def finish(self, result: Optional[Dict[str, Any]] = None,
               error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


class RequestBatcher:
    """Single worker thread draining a bounded queue into batches."""

    def __init__(
        self,
        handler: Callable[[List[ServeRequest]], None],
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        max_queue: int = 128,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.handler = handler
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.batches = 0
        self.submitted = 0
        self.rejected = 0
        self._queue: "queue.Queue[Optional[ServeRequest]]" = queue.Queue(
            maxsize=max_queue
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def _registry(self):
        from ..obs import get_metrics

        return get_metrics()

    def submit(self, request: ServeRequest) -> bool:
        """Enqueue a request; ``False`` means admission-rejected (full)."""
        request.enqueued_monotonic = time.monotonic()
        registry = self._registry()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.rejected += 1
            registry.inc("serve.rejected")
            return False
        self.submitted += 1
        registry.set_gauge("serve.queue_depth", float(self._queue.qsize()))
        return True

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the worker after the queue drains (idempotent)."""
        if not self._stop.is_set():
            self._stop.set()
            self._queue.put(None)  # wake the worker
        self._thread.join(timeout=timeout_s)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if first is None:
                return
            batch = [first]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    request = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if request is None:
                    self._dispatch(batch)
                    return
                batch.append(request)
            self._dispatch(batch)
            if self._stop.is_set() and self._queue.empty():
                return

    def _dispatch(self, batch: List[ServeRequest]) -> None:
        from ..obs import get_tracer

        registry = self._registry()
        tracer = get_tracer()
        now = time.monotonic()
        self.batches += 1
        registry.set_gauge("serve.queue_depth", float(self._queue.qsize()))
        registry.set_gauge("serve.inflight", float(len(batch)))
        registry.inc("serve.batches")
        registry.observe("serve.batch.occupancy", float(len(batch)))
        queue_hist = registry.histogram("serve.latency.queue_s")
        for request in batch:
            waited = max(0.0, now - request.enqueued_monotonic)
            queue_hist.observe(waited)
            tracer.record(
                "serve.queue",
                waited,
                attrs={"trace_id": request.trace_id},
                parent=request.span,
            )
        try:
            self.handler(batch)
        except BaseException as error:  # noqa: BLE001 - worker must survive
            for request in batch:
                if not request.done.is_set():
                    request.finish(error=error)
        finally:
            registry.set_gauge("serve.inflight", 0.0)
            for request in batch:
                if not request.done.is_set():  # handler forgot one: unblock
                    request.finish(
                        error=RuntimeError("batch handler returned no result")
                    )

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def stats(self) -> Dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_wait_s": self.max_wait_s,
            "max_queue": self.max_queue,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
        }
