"""The 64-byte aggregation descriptor — Figure 8 of the paper.

One descriptor encodes an entire per-vertex aggregation (vs. the
descriptor-chain-per-block model of conventional scatter-gather DMA,
Section 2.3).  Field layout, by 8-byte rows:

====  =======================================================
bytes  field
====  =======================================================
0-3    E — number of values in each gathered data block
4      val_t — element type of inputs/outputs
5      idx_t — element type of the index array
6      bin_op — optional binary operator (the ψ of Algorithm 1)
7      red_op — reduction operator
8-11   N — number of input data blocks (row length in CSR)
12-15  S — padded size of each data block in bytes
16-23  IDX — virtual address of the index array slice
24-31  IN — base virtual address of the input feature matrix
32-39  OUT — virtual address the results are written to
40-47  FACTOR — virtual address of the factor array slice
48-55  STATUS — virtual address of the completion record
56-63  reserved
====  =======================================================

All addresses are virtual (the engine translates via the STLB).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

DESCRIPTOR_BYTES = 64

_STRUCT = struct.Struct("<IBBBBII6Q")
assert _STRUCT.size == DESCRIPTOR_BYTES


class RedOp(enum.IntEnum):
    """Reduction operators the vector unit supports."""

    SUM = 0
    MAX = 1
    MIN = 2


class BinOp(enum.IntEnum):
    """Binary operators applied with the factor array (ψ support)."""

    NONE = 0
    MUL = 1
    ADD = 2


class IdxType(enum.IntEnum):
    U32 = 0
    U64 = 1

    @property
    def bytes(self) -> int:
        return 4 if self is IdxType.U32 else 8


class ValType(enum.IntEnum):
    F32 = 0
    F64 = 1

    @property
    def bytes(self) -> int:
        return 4 if self is ValType.F32 else 8


@dataclass(frozen=True)
class AggregationDescriptor:
    """A decoded aggregation descriptor (Figure 8)."""

    num_values: int  # E
    num_blocks: int  # N
    padded_block_bytes: int  # S
    idx_addr: int  # IDX
    in_addr: int  # IN
    out_addr: int  # OUT
    factor_addr: int  # FACTOR
    status_addr: int  # STATUS
    red_op: RedOp = RedOp.SUM
    bin_op: BinOp = BinOp.NONE
    idx_type: IdxType = IdxType.U32
    val_type: ValType = ValType.F32

    def __post_init__(self) -> None:
        if self.num_values <= 0:
            raise ValueError(f"E must be positive, got {self.num_values}")
        if self.num_blocks < 0:
            raise ValueError(f"N must be >= 0, got {self.num_blocks}")
        if self.padded_block_bytes < self.num_values * self.val_type.bytes:
            raise ValueError(
                "padded block size S smaller than E elements of val_t"
            )
        for name in ("idx_addr", "in_addr", "out_addr", "factor_addr", "status_addr"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """Encode to the 64-byte wire format."""
        return _STRUCT.pack(
            self.num_values,
            self.val_type,
            self.idx_type,
            self.bin_op,
            self.red_op,
            self.num_blocks,
            self.padded_block_bytes,
            self.idx_addr,
            self.in_addr,
            self.out_addr,
            self.factor_addr,
            self.status_addr,
            0,  # reserved
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "AggregationDescriptor":
        """Decode the 64-byte wire format."""
        if len(raw) != DESCRIPTOR_BYTES:
            raise ValueError(
                f"descriptor must be {DESCRIPTOR_BYTES} bytes, got {len(raw)}"
            )
        (
            num_values,
            val_type,
            idx_type,
            bin_op,
            red_op,
            num_blocks,
            padded,
            idx_addr,
            in_addr,
            out_addr,
            factor_addr,
            status_addr,
            _reserved,
        ) = _STRUCT.unpack(raw)
        return cls(
            num_values=num_values,
            num_blocks=num_blocks,
            padded_block_bytes=padded,
            idx_addr=idx_addr,
            in_addr=in_addr,
            out_addr=out_addr,
            factor_addr=factor_addr,
            status_addr=status_addr,
            red_op=RedOp(red_op),
            bin_op=BinOp(bin_op),
            idx_type=IdxType(idx_type),
            val_type=ValType(val_type),
        )

    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        """Bytes of input feature data this aggregation reads."""
        return self.num_blocks * self.num_values * self.val_type.bytes

    @property
    def output_bytes(self) -> int:
        return self.num_values * self.val_type.bytes

    @property
    def index_bytes(self) -> int:
        return self.num_blocks * self.idx_type.bytes
