"""Unit tests for chunk planning and the deterministic dynamic assignment."""

import numpy as np
import pytest

from repro.graphs import power_law_graph
from repro.parallel import (
    assign_chunks,
    assignment_imbalance,
    build_chunk_plan,
)


class TestBuildChunkPlan:
    def test_chunks_cover_every_position_once(self, small_products):
        plan = build_chunk_plan(small_products, task_size=64)
        positions = []
        for chunk in plan.chunks:
            positions.extend(range(chunk.start, chunk.stop))
        assert positions == list(range(small_products.num_vertices))

    def test_chunk_count_matches_ceil_division(self, small_products):
        n = small_products.num_vertices
        for task_size in (1, 7, 64, n, n + 100):
            plan = build_chunk_plan(small_products, task_size)
            assert plan.num_chunks == -(-n // task_size)

    def test_costs_price_the_gather_work(self, small_products):
        plan = build_chunk_plan(small_products, task_size=32)
        total = small_products.num_edges + small_products.num_vertices
        assert plan.total_cost == pytest.approx(total)

    def test_order_permutes_costs(self, small_products):
        order = np.random.default_rng(0).permutation(small_products.num_vertices)
        plan = build_chunk_plan(small_products, task_size=32, order=order)
        degs = small_products.degrees()[order]
        expected = float((degs[:32] + 1).sum())
        assert plan.chunks[0].cost == pytest.approx(expected)

    def test_invalid_inputs(self, small_products):
        with pytest.raises(ValueError):
            build_chunk_plan(small_products, task_size=0)
        with pytest.raises(ValueError):
            build_chunk_plan(small_products, 16, order=np.arange(3))


class TestAssignChunks:
    def test_every_chunk_assigned_exactly_once(self, small_products):
        plan = build_chunk_plan(small_products, task_size=16)
        assignment = assign_chunks(plan, workers=4)
        indices = sorted(c.index for chunks in assignment for c in chunks)
        assert indices == list(range(plan.num_chunks))

    def test_deterministic_across_calls(self, small_products):
        plan = build_chunk_plan(small_products, task_size=16)
        first = assign_chunks(plan, workers=4)
        second = assign_chunks(plan, workers=4)
        assert [[c.index for c in w] for w in first] == [
            [c.index for c in w] for w in second
        ]

    def test_dynamic_beats_round_robin_on_skew(self):
        graph = power_law_graph(512, avg_degree=12.0, seed=7)
        plan = build_chunk_plan(graph, task_size=16)
        dynamic = assignment_imbalance(assign_chunks(plan, workers=4))
        # round-robin (OpenMP static) assignment of the same chunks
        static = [plan.chunks[i::4] for i in range(4)]
        assert dynamic <= assignment_imbalance(list(map(list, static))) + 1e-9

    def test_more_workers_than_chunks(self, small_products):
        plan = build_chunk_plan(small_products, task_size=small_products.num_vertices)
        assignment = assign_chunks(plan, workers=4)
        assert sum(len(w) for w in assignment) == 1
        assert len(assignment) == 4

    def test_invalid_worker_count(self, small_products):
        plan = build_chunk_plan(small_products, task_size=16)
        with pytest.raises(ValueError):
            assign_chunks(plan, workers=0)
