"""Unit + property tests for reuse-distance analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import chain_graph, star_graph, uniform_graph
from repro.perf import (
    COLD,
    access_stream,
    hit_rate_for_order,
    reuse_profile,
    stack_distances,
)


def brute_force_distances(stream):
    """Reference LRU stack distance: distinct elements since last access."""
    out = []
    for t, x in enumerate(stream):
        prev = None
        for s in range(t - 1, -1, -1):
            if stream[s] == x:
                prev = s
                break
        if prev is None:
            out.append(COLD)
        else:
            out.append(len(set(stream[prev + 1 : t])))
    return np.array(out, dtype=np.int64)


class TestStackDistances:
    def test_repeat_access_distance_zero(self):
        stream = np.array([3, 3, 3])
        d = stack_distances(stream, 4)
        assert d[0] == COLD
        assert d[1] == 0
        assert d[2] == 0

    def test_abab_pattern(self):
        stream = np.array([0, 1, 0, 1])
        d = stack_distances(stream, 2)
        np.testing.assert_array_equal(d[2:], [1, 1])

    def test_matches_brute_force(self, rng):
        stream = rng.integers(0, 12, size=120)
        fast = stack_distances(stream, 12)
        slow = brute_force_distances(list(stream))
        np.testing.assert_array_equal(fast, slow)

    def test_empty_stream(self):
        assert len(stack_distances(np.empty(0, dtype=np.int64), 5)) == 0


class TestAccessStream:
    def test_includes_self_access(self, chain20):
        stream = access_stream(chain20)
        # Vertex 0 has no neighbors: its slice is just [0].
        assert stream[0] == 0
        # Vertex 1 gathers 0 then itself.
        assert list(stream[1:3]) == [0, 1]

    def test_length_is_edges_plus_vertices(self, small_uniform):
        stream = access_stream(small_uniform)
        assert len(stream) == small_uniform.num_edges + small_uniform.num_vertices

    def test_respects_order(self, chain20):
        order = np.arange(19, -1, -1)
        stream = access_stream(chain20, order)
        assert stream[0] == 18  # vertex 19 gathers 18 first
        assert stream[1] == 19


class TestReuseProfile:
    def test_hit_rate_monotone_in_capacity(self, small_community):
        profile = reuse_profile(small_community)
        rates = [profile.hit_rate(c) for c in (2, 8, 32, 128, 100000)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_infinite_capacity_hits_everything_warm(self, small_community):
        profile = reuse_profile(small_community)
        assert profile.hit_rate(1e18) == pytest.approx(
            1.0 - profile.cold_fraction()
        )

    def test_zero_capacity_no_hits(self, small_community):
        assert reuse_profile(small_community).hit_rate(0) == 0.0

    def test_cold_fraction_counts_distinct_touched(self, chain20):
        profile = reuse_profile(chain20)
        # Every vertex is touched at least once -> 20 cold accesses.
        assert profile.cold_fraction() == pytest.approx(20 / profile.num_accesses)

    def test_star_hub_reuse(self, star10):
        """Leaves all touch the hub: with capacity >= 2 those re-touches hit."""
        profile = reuse_profile(star10)
        assert profile.hit_rate(3) > 0.3

    def test_hit_rate_for_order_helper(self, small_community):
        rate = hit_rate_for_order(
            small_community, None, capacity_bytes=64 * 256, vector_bytes=256
        )
        profile = reuse_profile(small_community)
        assert rate == pytest.approx(profile.hit_rate(64))

    def test_invalid_vector_bytes(self, small_community):
        with pytest.raises(ValueError):
            hit_rate_for_order(small_community, None, 1024, 0)


@settings(max_examples=25, deadline=None)
@given(
    stream=st.lists(st.integers(0, 9), min_size=1, max_size=80),
)
def test_stack_distance_property(stream):
    arr = np.array(stream, dtype=np.int64)
    np.testing.assert_array_equal(
        stack_distances(arr, 10), brute_force_distances(stream)
    )
