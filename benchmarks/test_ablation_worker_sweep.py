"""Ablation: worker-count sweep of the real chunk executor (Section 4.1).

The scheduling ablation (``test_ablation_load_balance``) models thread
assignment analytically; this one actually executes the ``basic`` kernel
on ``thread`` and ``process`` workers, sweeping the worker count, and
reports wall-clock plus the per-worker chunk counts recorded in
``KernelStats`` — the executed counterpart of the load-balance model.
"""

import numpy as np
import pytest
from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.graphs import load_dataset, synthetic_features
from repro.kernels import BasicKernel
from repro.parallel import ChunkExecutor

pytestmark = pytest.mark.slow

WORKER_COUNTS = (1, 2, 4)


def _sweep():
    graph = load_dataset("products", scale=0.1, seed=3)
    h = synthetic_features(graph, 32, seed=1, sparsity=0.5)
    exp = Experiment(
        "ablation-workers", "Executed worker sweep, basic kernel (products twin)"
    )
    baseline, _ = BasicKernel(task_size=16).aggregate(graph, h)
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            kernel = BasicKernel(
                task_size=16, executor=ChunkExecutor(backend, workers)
            )
            out, stats = kernel.aggregate(graph, h)
            assert np.array_equal(out, baseline)
            report = kernel.last_report
            assert sum(report.chunks_per_worker) == stats.tasks
            exp.add(
                f"{backend} x{workers} wall time", report.wall_time_s, unit="s"
            )
            exp.add(f"{backend} x{workers} imbalance", report.imbalance)
            exp.note(
                f"{backend} x{workers}: chunks/worker "
                f"{report.chunks_per_worker}"
            )
    return exp


def test_worker_sweep_ablation(benchmark):
    exp = run_experiment(benchmark, _sweep)
    values = {row.label: row.measured for row in exp.rows}
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            assert values[f"{backend} x{workers} wall time"] > 0.0
            # Dynamic chunk assignment keeps executed gather work balanced
            # despite the twin's power-law degree skew.
            assert values[f"{backend} x{workers} imbalance"] < 1.7
