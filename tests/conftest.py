"""Shared fixtures: small graphs and features reused across the suite."""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    chain_graph,
    community_graph,
    grid_graph,
    load_dataset,
    star_graph,
    synthetic_features,
    uniform_graph,
)


@pytest.fixture(scope="session")
def tiny_graph() -> CSRGraph:
    """A hand-built 5-vertex graph with known structure.

    Edges (dst <- src): 0<-1, 0<-2, 1<-2, 2<-3, 3<-{0,1,2}, 4 isolated.
    """
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0), (3, 1), (3, 2)]
    return CSRGraph.from_edges(5, edges, name="tiny")


@pytest.fixture(scope="session")
def small_products() -> CSRGraph:
    """A small products twin shared by kernel-equivalence tests."""
    return load_dataset("products", scale=0.05, seed=3)


@pytest.fixture(scope="session")
def small_uniform() -> CSRGraph:
    return uniform_graph(120, avg_degree=6.0, seed=1, name="u120")


@pytest.fixture(scope="session")
def small_community() -> CSRGraph:
    return community_graph(
        256, avg_degree=10.0, community_size=16, within_fraction=0.8, seed=2
    )


@pytest.fixture(scope="session")
def grid16() -> CSRGraph:
    return grid_graph(4)


@pytest.fixture(scope="session")
def star10() -> CSRGraph:
    return star_graph(10)


@pytest.fixture(scope="session")
def chain20() -> CSRGraph:
    return chain_graph(20)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def features16(small_products):
    return synthetic_features(small_products, 16, seed=7)
