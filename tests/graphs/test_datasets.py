"""Unit tests for the Table-3 dataset twins."""

import numpy as np
import pytest

from repro.graphs import (
    DATASET_NAMES,
    SPECS,
    all_datasets,
    hidden_feature_size,
    input_feature_size,
    load_dataset,
    paper_row,
    synthetic_features,
)
from repro.tensors import sparsity


class TestLoadDataset:
    def test_all_four_exist(self):
        assert set(DATASET_NAMES) == {"products", "wikipedia", "papers", "twitter"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_twin_loads(self, name):
        graph = load_dataset(name, scale=0.1)
        assert graph.num_vertices >= 128
        assert graph.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("reddit")

    def test_scale_changes_size(self):
        small = load_dataset("products", scale=0.1)
        large = load_dataset("products", scale=0.3)
        assert large.num_vertices > small.num_vertices

    def test_deterministic(self):
        a = load_dataset("wikipedia", scale=0.1, seed=1)
        b = load_dataset("wikipedia", scale=0.1, seed=1)
        np.testing.assert_array_equal(a.indices, b.indices)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_mean_degree_near_paper(self, name):
        """Twins track Table 3's mean degree within a 0.6-1.4x band."""
        graph = load_dataset(name, scale=0.5)
        achieved = graph.num_edges / graph.num_vertices
        target = SPECS[name].mean_degree
        assert 0.6 * target <= achieved <= 1.4 * target

    def test_products_skew_exceeds_wikipedia(self):
        from repro.graphs.stats import skew

        products = load_dataset("products", scale=0.25)
        wikipedia = load_dataset("wikipedia", scale=0.25)
        assert skew(products) > 0.4
        assert skew(wikipedia) > 0.0


class TestFeatureSizes:
    def test_input_feature_size_per_dataset(self):
        assert input_feature_size("products", 1.0) == 100
        assert input_feature_size("wikipedia", 1.0) == 128
        assert input_feature_size("papers", 1.0) == 256
        assert input_feature_size("twitter", 1.0) == 256

    def test_hidden_feature_size(self):
        assert hidden_feature_size(1.0) == 256
        assert hidden_feature_size(0.25) == 64
        assert hidden_feature_size(0.01) >= 16

    def test_floor(self):
        assert input_feature_size("products", 0.01) >= 16


class TestSyntheticFeatures:
    def test_shape_and_dtype(self, small_products):
        h = synthetic_features(small_products, 32)
        assert h.shape == (small_products.num_vertices, 32)
        assert h.dtype == np.float32

    def test_injected_sparsity(self, small_products):
        h = synthetic_features(small_products, 64, sparsity=0.5, seed=0)
        assert 0.45 <= sparsity(h) <= 0.55

    def test_zero_sparsity_dense(self, small_products):
        h = synthetic_features(small_products, 16, sparsity=0.0)
        assert sparsity(h) < 0.01

    def test_deterministic(self, small_products):
        a = synthetic_features(small_products, 8, seed=5)
        b = synthetic_features(small_products, 8, seed=5)
        np.testing.assert_array_equal(a, b)


class TestMetadata:
    def test_paper_row(self):
        vertices, edges, degree, f_input = paper_row("products")
        assert vertices == 2.45
        assert edges == 124.0
        assert degree == 50.5
        assert f_input == 100

    def test_all_datasets_returns_four(self):
        graphs = all_datasets(scale=0.05)
        assert set(graphs) == set(DATASET_NAMES)

    def test_pre_localized_flags(self):
        assert not SPECS["products"].pre_localized
        assert SPECS["wikipedia"].pre_localized
        assert not SPECS["papers"].pre_localized
        assert SPECS["twitter"].pre_localized
