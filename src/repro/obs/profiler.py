"""Statistical sampling profiler with span-stack phase attribution.

The span tracer answers *where the regions are*; this module answers
*where the interpreter time goes inside them*.  A daemon thread walks
``sys._current_frames()`` at a configurable rate, folds each thread's
Python stack into a collapsed-stack table (the flamegraph input format),
and joins every sample against the tracer's per-thread span stack so
each tick is attributed to one execution *phase*:

* ``aggregate`` — inside ``kernel.basic`` / ``kernel.mkl`` /
  ``kernel.compression`` gather-reduce spans;
* ``update`` — inside ``kernel.fusion`` / ``kernel.combined`` fused
  aggregate+update spans;
* ``backward`` — inside any ``kernel.backward.*`` (or the trainer's
  ``backward``) span;
* ``compress`` — inside compression codec spans;
* ``other`` — no kernel span open on that thread (data prep, Python
  glue, the trainer loop between kernels).

Sampling is *statistical*: with ``hz`` samples per second, a stack that
collects ``k`` ticks accounts for approximately ``k / hz`` seconds of
interpreter time.  The default rate is a prime (97 Hz) so periodic
workloads don't alias against the sampler.

Like every obs component the profiler has a null twin
(:data:`NULL_PROFILER`) and is zero-cost when disabled.  The collected
:class:`ProfileData` is picklable and mergeable, which is how
process-backend workers ship their folded stacks home (the executor
prepends a ``worker-K`` root frame so worker samples stay
distinguishable in the merged flamegraph).

Export surfaces:

* :func:`write_collapsed` — ``phase;frame;frame;... count`` text, one
  line per unique stack, loadable by ``flamegraph.pl`` / speedscope;
* :meth:`ProfileData.to_dict` — the JSON block embedded in run reports
  (per-phase seconds, top-N self-time table, folded stacks, timeline);
* :func:`profile_diff` — compares two captures (run reports or bare
  profile blocks) per phase and per function with a relative regression
  threshold, powering ``repro profile diff``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..perf.attribution import SPAN_PHASES, span_phase

#: Version of the profile document layout (run-report ``profile`` block).
PROFILE_SCHEMA_VERSION = 1

#: Default sampling rate.  Prime, so fixed-period work (epoch loops,
#: chunk batches) doesn't phase-lock with the sampler and systematically
#: hide or inflate one stack.
DEFAULT_SAMPLING_HZ = 97.0

#: Deepest Python stack a sample folds; frames above are dropped.
MAX_STACK_DEPTH = 128

#: Unique (phase, stack) keys kept before new stacks collapse into one
#: overflow bucket — bounds memory on pathological recursion patterns.
MAX_UNIQUE_STACKS = 50_000

#: Timeline entries kept for the Perfetto instant-event export.
MAX_TIMELINE_EVENTS = 4096

#: Every phase a sample can land in (``SPAN_PHASES`` values + other).
SAMPLE_PHASES = ("aggregate", "update", "backward", "compress", "other")

_OVERFLOW_STACK = ("<overflow>",)


def phase_of_stack(span_names: Iterable[str]) -> str:
    """Phase of a sampled thread given its open spans, outermost first.

    The innermost span with a phase wins: a ``kernel.backward.basic``
    nested inside the trainer's ``backward`` still reads as backward,
    and a compression span inside a layer reads as compress.
    """
    for name in reversed(list(span_names)):
        phase = span_phase(name)
        if phase is not None:
            return phase
    return "other"


def frame_label(frame) -> str:
    """``module:function`` label of one Python frame."""
    code = frame.f_code
    module = frame.f_globals.get("__name__") or code.co_filename
    return f"{module}:{code.co_name}"


def fold_stack(frame, max_depth: int = MAX_STACK_DEPTH) -> Tuple[str, ...]:
    """Fold a leaf frame into a root→leaf tuple of frame labels."""
    labels: List[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


@dataclass
class ProfileData:
    """The mergeable, picklable result of one profiling session.

    ``stacks`` maps ``(phase, frames)`` — frames root→leaf — to sample
    counts.  Counts are floats so captures taken at different rates can
    be rescaled on merge without losing mass.
    """

    hz: float = DEFAULT_SAMPLING_HZ
    samples: int = 0  # sampler ticks (one per wall interval)
    thread_samples: int = 0  # per-thread observations (>= samples)
    stacks: Dict[Tuple[str, Tuple[str, ...]], float] = field(default_factory=dict)
    phase_samples: Dict[str, float] = field(default_factory=dict)
    threads: Dict[str, float] = field(default_factory=dict)
    timeline: List[Tuple[float, str]] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(
        self,
        phase: str,
        frames: Tuple[str, ...],
        thread_label: str,
        t_s: Optional[float] = None,
    ) -> None:
        """Account one thread observation (not a full tick)."""
        key = (phase, frames)
        if key not in self.stacks and len(self.stacks) >= MAX_UNIQUE_STACKS:
            key = (phase, _OVERFLOW_STACK)
        self.stacks[key] = self.stacks.get(key, 0.0) + 1.0
        self.phase_samples[phase] = self.phase_samples.get(phase, 0.0) + 1.0
        self.threads[thread_label] = self.threads.get(thread_label, 0.0) + 1.0
        self.thread_samples += 1
        if t_s is not None and len(self.timeline) < MAX_TIMELINE_EVENTS:
            self.timeline.append((float(t_s), phase))

    def seconds(self, count: float) -> float:
        """Estimated seconds a sample count represents at this rate."""
        return count / self.hz if self.hz > 0 else 0.0

    @property
    def phase_seconds(self) -> Dict[str, float]:
        return {p: self.seconds(c) for p, c in sorted(self.phase_samples.items())}

    def top_self(self, n: int = 15) -> List[Tuple[str, float, float]]:
        """Top-``n`` leaf frames by self samples: (label, samples, s)."""
        self_counts: Dict[str, float] = {}
        for (_, frames), count in self.stacks.items():
            if frames:
                label = frames[-1]
                self_counts[label] = self_counts.get(label, 0.0) + count
        ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(label, count, self.seconds(count)) for label, count in ranked[:n]]

    # ------------------------------------------------------------------
    def merge(self, other: "ProfileData", source: Optional[str] = None) -> None:
        """Fold another capture in, rescaling if the rates differ.

        With ``source`` (e.g. ``worker-0``) the other capture's stacks
        gain a synthetic root frame and its thread labels a prefix, so a
        merged flamegraph keeps worker time distinguishable.  The other
        capture's timeline is dropped — its clock is not ours.
        """
        scale = (self.hz / other.hz) if (self.hz > 0 and other.hz > 0) else 1.0
        for (phase, frames), count in other.stacks.items():
            if source is not None:
                frames = (source,) + frames
            key = (phase, frames)
            if key not in self.stacks and len(self.stacks) >= MAX_UNIQUE_STACKS:
                key = (phase, _OVERFLOW_STACK)
            self.stacks[key] = self.stacks.get(key, 0.0) + count * scale
        for phase, count in other.phase_samples.items():
            self.phase_samples[phase] = (
                self.phase_samples.get(phase, 0.0) + count * scale
            )
        for label, count in other.threads.items():
            if source is not None:
                label = f"{source}:{label}"
            self.threads[label] = self.threads.get(label, 0.0) + count * scale
        self.samples += other.samples
        self.thread_samples += other.thread_samples
        if source is not None:
            self.sources.append(source)
        self.sources.extend(other.sources)

    # ------------------------------------------------------------------
    def collapsed_lines(self) -> List[str]:
        """Deterministic ``phase;frame;... count`` flamegraph lines."""
        lines = []
        for (phase, frames), count in sorted(self.stacks.items()):
            stack = ";".join((phase,) + frames)
            lines.append(f"{stack} {int(round(count))}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """The JSON ``profile`` block embedded in run reports."""
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "hz": self.hz,
            "samples": self.samples,
            "thread_samples": self.thread_samples,
            "duration_estimate_s": self.seconds(float(self.samples)),
            "phases": {
                phase: {"samples": count, "seconds": self.seconds(count)}
                for phase, count in sorted(self.phase_samples.items())
            },
            "threads": dict(sorted(self.threads.items())),
            "top": [
                {"function": label, "self_samples": count, "self_seconds": secs}
                for label, count, secs in self.top_self(25)
            ],
            "folded": {
                ";".join((phase,) + frames): count
                for (phase, frames), count in sorted(self.stacks.items())
            },
            "timeline": [[t, phase] for t, phase in self.timeline],
            "sources": list(self.sources),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ProfileData":
        data = cls(hz=float(doc.get("hz", DEFAULT_SAMPLING_HZ)))
        data.samples = int(doc.get("samples", 0))
        data.thread_samples = int(doc.get("thread_samples", 0))
        for folded, count in (doc.get("folded") or {}).items():
            parts = folded.split(";")
            data.stacks[(parts[0], tuple(parts[1:]))] = float(count)
        data.phase_samples = {
            phase: float(entry.get("samples", 0.0))
            for phase, entry in (doc.get("phases") or {}).items()
        }
        data.threads = {
            label: float(count) for label, count in (doc.get("threads") or {}).items()
        }
        data.timeline = [
            (float(t), str(phase)) for t, phase in (doc.get("timeline") or [])
        ]
        data.sources = [str(s) for s in doc.get("sources") or []]
        return data


def write_collapsed(path: str, data: ProfileData) -> int:
    """Write the flamegraph collapsed-stack file; returns the line count."""
    lines = data.collapsed_lines()
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def span_phase_seconds(records: Iterable[Mapping[str, Any]]) -> Dict[str, float]:
    """Wall seconds per phase from *kernel* span records.

    Only ``kernel.*`` spans are summed — the trainer's enclosing
    ``backward``/``layer`` spans nest kernel spans and would double
    count.  This is the wall-time side the sampled-phase table is
    validated against (same top phase on a healthy capture).
    """
    totals: Dict[str, float] = {}
    for rec in records:
        name = rec.get("name", "")
        if not name.startswith("kernel."):
            continue
        phase = span_phase(name)
        if phase is None:
            continue
        totals[phase] = totals.get(phase, 0.0) + float(rec.get("duration_s", 0.0))
    return dict(sorted(totals.items()))


def render_profile(
    data: ProfileData,
    span_seconds: Optional[Mapping[str, float]] = None,
    top_n: int = 10,
) -> str:
    """Human-readable per-phase and top-N self-time tables."""
    lines = [
        f"sampled profile: {data.samples} ticks at {data.hz:g} Hz "
        f"({data.thread_samples} thread samples)"
    ]
    total = sum(data.phase_samples.values())
    lines.append(f"{'phase':<12} {'samples':>9} {'seconds':>9} {'share':>7}"
                 + ("  span wall" if span_seconds else ""))
    by_count = sorted(data.phase_samples.items(), key=lambda kv: (-kv[1], kv[0]))
    for phase, count in by_count:
        share = 100.0 * count / total if total else 0.0
        line = (
            f"{phase:<12} {count:>9.0f} {data.seconds(count):>9.3f} {share:>6.1f}%"
        )
        if span_seconds:
            wall = span_seconds.get(phase)
            line += f"  {wall:>8.3f}s" if wall is not None else "         -"
        lines.append(line)
    top = data.top_self(top_n)
    if top:
        lines.append("")
        lines.append(f"top {len(top)} functions by self time:")
        for label, count, secs in top:
            lines.append(f"  {secs:>8.3f}s {count:>7.0f}  {label}")
    return "\n".join(lines)


class NullSamplingProfiler:
    """Disabled profiler: no thread, no samples, no data."""

    enabled = False
    hz = 0.0
    data: Optional[ProfileData] = None

    def start(self) -> "NullSamplingProfiler":
        return self

    def stop(self) -> Optional[ProfileData]:
        return None

    def sample_once(self) -> int:
        return 0

    def absorb(self, other, source: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "NullSamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


NULL_PROFILER = NullSamplingProfiler()


class SamplingProfiler:
    """Daemon-thread sampler joining frames against the span tracer.

    Args:
        tracer: the tracer whose per-thread span stacks attribute each
            sample to a phase; ``None`` (or a null tracer) means every
            sample lands in ``other``.
        hz: sampling rate; each tick walks every live thread's frames.
        registry: optional metrics registry receiving a cumulative
            ``profiler.samples`` counter (one increment per tick).
    """

    enabled = True

    def __init__(
        self,
        tracer=None,
        hz: float = DEFAULT_SAMPLING_HZ,
        registry=None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling hz must be positive, got {hz}")
        self.tracer = tracer
        self.hz = float(hz)
        self.registry = registry
        self.data = ProfileData(hz=self.hz)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._thread_ident: Optional[int] = None
        self._epoch_perf = time.perf_counter()

    # ------------------------------------------------------------------
    def _clock(self) -> float:
        """Sample timestamps on the tracer's clock when there is one."""
        if self.tracer is not None and hasattr(self.tracer, "clock"):
            return self.tracer.clock()
        return time.perf_counter() - self._epoch_perf

    def sample_once(self) -> int:
        """Walk every live thread once; returns threads observed.

        ``sys._current_frames()`` is a consistent snapshot taken under
        the GIL; a thread that exits between the snapshot and the fold
        leaves a frame object that is still safe to walk (frames keep
        their ``f_back`` chain alive), so mid-walk exits lose nothing.
        """
        t_s = self._clock()
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        observed = 0
        for tid, frame in frames.items():
            if tid == self._thread_ident:
                continue  # never sample the sampler
            if self.tracer is not None and getattr(self.tracer, "enabled", False):
                phase = phase_of_stack(self.tracer.stack_names(tid))
            else:
                phase = "other"
            label = names.get(tid) or f"thread-{tid}"
            self.data.record(
                phase,
                fold_stack(frame),
                label,
                t_s=t_s if observed == 0 else None,
            )
            observed += 1
        self.data.samples += 1
        if self.registry is not None and getattr(self.registry, "enabled", False):
            self.registry.inc("profiler.samples")
        return observed

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Spawn the daemon sampling thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-sampling-profiler", daemon=True
            )
            self._thread.start()
            self._thread_ident = self._thread.ident
        return self

    def stop(self) -> ProfileData:
        """Stop the thread; returns the collected :class:`ProfileData`."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
            self._thread_ident = None
        return self.data

    def absorb(self, other: Union[ProfileData, Mapping[str, Any], None],
               source: Optional[str] = None) -> None:
        """Merge another capture (e.g. a worker's shipped profile) in."""
        if other is None:
            return
        if not isinstance(other, ProfileData):
            other = ProfileData.from_dict(other)
        self.data.merge(other, source=source)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Capture comparison — the ``repro profile diff`` engine.
# ----------------------------------------------------------------------

#: Relative growth that flags a phase/function as regressed.
DEFAULT_DIFF_THRESHOLD = 0.25

#: Absolute-seconds noise floor below which deltas are never regressions
#: (one sample at the default rate is ~10 ms; jitter below this is noise).
DEFAULT_DIFF_MIN_SECONDS = 0.02


@dataclass
class DiffRow:
    """One compared quantity: seconds before, after, and the delta."""

    kind: str  # "phase" | "function"
    name: str
    a_seconds: float
    b_seconds: float
    regressed: bool

    @property
    def delta_seconds(self) -> float:
        return self.b_seconds - self.a_seconds

    @property
    def ratio(self) -> float:
        if self.a_seconds <= 0.0:
            return float("inf") if self.b_seconds > 0.0 else 1.0
        return self.b_seconds / self.a_seconds


@dataclass
class ProfileDiff:
    """Comparison of two profile captures (A = baseline, B = current)."""

    threshold: float
    min_seconds: float
    rows: List[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"profile diff (threshold {self.threshold:.0%}, "
            f"noise floor {self.min_seconds:g}s)"
        ]
        for kind, title in (("phase", "phases (gated)"), ("function", "functions")):
            rows = [r for r in self.rows if r.kind == kind]
            if not rows:
                continue
            lines.append(f"{title}:")
            lines.append(
                f"  {'baseline':>10} {'current':>10} {'delta':>10} {'ratio':>7}  name"
            )
            for row in rows:
                ratio = "inf" if row.ratio == float("inf") else f"{row.ratio:.2f}x"
                flag = "  REGRESSED" if row.regressed else ""
                lines.append(
                    f"  {row.a_seconds:>9.3f}s {row.b_seconds:>9.3f}s "
                    f"{row.delta_seconds:>+9.3f}s {ratio:>7}  {row.name}{flag}"
                )
        verdict = "OK" if self.ok else (
            f"{len(self.regressions)} regression(s): "
            + ", ".join(r.name for r in self.regressions)
        )
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def _phase_seconds_of(doc: Mapping[str, Any]) -> Dict[str, float]:
    return {
        phase: float(entry.get("seconds", 0.0))
        for phase, entry in (doc.get("phases") or {}).items()
    }


def _function_seconds_of(doc: Mapping[str, Any]) -> Dict[str, float]:
    return {
        str(entry.get("function")): float(entry.get("self_seconds", 0.0))
        for entry in doc.get("top") or []
        if entry.get("function")
    }


def load_profile_document(source: Union[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Extract the profile block from a path or already-loaded document.

    Accepts a bare profile block (``{"hz": ..., "phases": ...}``) or a
    full run report carrying one under ``"profile"``.
    """
    if isinstance(source, str):
        with open(source) as handle:
            doc = json.load(handle)
    else:
        doc = dict(source)
    if "profile" in doc and isinstance(doc["profile"], dict):
        doc = doc["profile"]
    if "phases" not in doc:
        raise ValueError(
            "document has no sampled profile (run with --sampling to capture one)"
        )
    return doc


def profile_diff(
    a: Union[str, Mapping[str, Any]],
    b: Union[str, Mapping[str, Any]],
    threshold: float = DEFAULT_DIFF_THRESHOLD,
    min_seconds: float = DEFAULT_DIFF_MIN_SECONDS,
) -> ProfileDiff:
    """Compare capture ``b`` against baseline ``a``.

    A row regresses when current exceeds baseline by more than
    ``threshold`` (relative) *and* the absolute growth clears
    ``min_seconds`` — both gates, so tiny captures can't trip the
    relative test on sampling noise.  Only phases gate the verdict;
    per-function rows are reported for localization but a function
    moving inside a stable phase (e.g. an inlining change) is not an
    SLO breach by itself.
    """
    doc_a = load_profile_document(a)
    doc_b = load_profile_document(b)
    diff = ProfileDiff(threshold=threshold, min_seconds=min_seconds)

    phases_a = _phase_seconds_of(doc_a)
    phases_b = _phase_seconds_of(doc_b)
    for name in sorted(set(phases_a) | set(phases_b)):
        a_s = phases_a.get(name, 0.0)
        b_s = phases_b.get(name, 0.0)
        regressed = (b_s - a_s) > max(min_seconds, threshold * a_s)
        diff.rows.append(DiffRow("phase", name, a_s, b_s, regressed))

    funcs_a = _function_seconds_of(doc_a)
    funcs_b = _function_seconds_of(doc_b)
    moved = sorted(
        set(funcs_a) | set(funcs_b),
        key=lambda f: -abs(funcs_b.get(f, 0.0) - funcs_a.get(f, 0.0)),
    )
    for name in moved[:15]:
        diff.rows.append(
            DiffRow(
                "function", name, funcs_a.get(name, 0.0), funcs_b.get(name, 0.0),
                regressed=False,
            )
        )
    return diff
