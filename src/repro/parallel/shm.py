"""Zero-copy array sharing for the sharded trainer.

``ArrayBundle`` packs a set of named numpy arrays into ONE
``multiprocessing.shared_memory`` segment (64-byte-aligned offsets, so
every view starts on a cache-line boundary).  The parent creates the
bundle once; workers receive only the tiny picklable :class:`BundleSpec`
(segment name + per-array offset/shape/dtype) and ``attach`` to build
zero-copy numpy views over the same physical pages.  Nothing graph-sized
ever crosses a pickle boundary.

For in-process backends (serial / thread) the same interface runs over a
private heap buffer — no segment, no cleanup, identical view semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class BundleSpec:
    """Picklable description of a shared bundle: O(#arrays), not O(bytes)."""

    segment_name: str
    entries: Dict[str, Tuple[int, Tuple[int, ...], str]]
    nbytes: int


class ArrayBundle:
    """Named numpy arrays over one shared (or private) buffer."""

    def __init__(self, buffer, entries, segment=None, owner: bool = False) -> None:
        self._buffer = buffer
        self._entries = entries
        self._segment = segment
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], shared: bool = True
    ) -> "ArrayBundle":
        """Pack ``arrays`` into a fresh bundle, copying their contents."""
        entries: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _aligned(offset)
            entries[name] = (offset, tuple(arr.shape), arr.dtype.str)
            offset += arr.nbytes
        total = max(offset, 1)
        segment = None
        if shared:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=total)
            buffer = segment.buf
        else:
            buffer = np.zeros(total, dtype=np.uint8).data
        bundle = cls(buffer, entries, segment=segment, owner=True)
        for name, arr in arrays.items():
            np.copyto(bundle.view(name), np.ascontiguousarray(arr))
        return bundle

    @classmethod
    def attach(cls, spec: BundleSpec) -> "ArrayBundle":
        """Attach to an existing shared segment by its spec (zero-copy)."""
        from multiprocessing import shared_memory

        try:
            # Only the creating process owns the segment's lifetime;
            # track=False (3.13+) keeps the attach out of the resource
            # tracker entirely.
            segment = shared_memory.SharedMemory(
                name=spec.segment_name, track=False
            )
        except TypeError:  # pragma: no cover - Python < 3.13
            # Forked workers share the parent's tracker, where the extra
            # registration is an idempotent set-add; the parent's unlink
            # unregisters it exactly once.
            segment = shared_memory.SharedMemory(name=spec.segment_name)
        return cls(segment.buf, dict(spec.entries), segment=segment, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def view(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of one named array."""
        if name not in self._views:
            offset, shape, dtype = self._entries[name]
            self._views[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._buffer, offset=offset
            )
        return self._views[name]

    def names(self):
        return list(self._entries)

    @property
    def nbytes(self) -> int:
        last = max(
            (off + int(np.prod(shape)) * np.dtype(dt).itemsize
             for off, shape, dt in self._entries.values()),
            default=0,
        )
        return last

    @property
    def is_shared(self) -> bool:
        return self._segment is not None

    def spec(self) -> BundleSpec:
        """The picklable attachment handle (shared bundles only)."""
        if self._segment is None:
            raise ValueError("private (in-process) bundles have no spec")
        return BundleSpec(
            segment_name=self._segment.name,
            entries=dict(self._entries),
            nbytes=self.nbytes,
        )

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the mapping (workers call this on shutdown)."""
        self._views.clear()
        self._buffer = None
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:
                # numpy views outside the bundle still pin the mapping;
                # the OS reclaims it when the process exits.
                pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; after all workers closed)."""
        if self._segment is not None and self._owner:
            self._segment.unlink()

    def __enter__(self) -> "ArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
