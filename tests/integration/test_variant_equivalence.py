"""Cross-module integration: every execution path computes the same layer.

The strongest correctness statement in the reproduction: the nn layer,
all six software kernels, and the DMA engine offload all compute the
same ``h_out = ReLU(W Â h + b)`` for the same inputs.
"""

import numpy as np
import pytest

from repro.dma import DmaOffloadRunner
from repro.graphs import load_dataset, synthetic_features
from repro.kernels import (
    BasicKernel,
    CompressedFusedKernel,
    CompressedKernel,
    DistGNNKernel,
    FusedKernel,
    SpMMKernel,
    UpdateParams,
)
from repro.nn import GNNLayer


@pytest.fixture(scope="module")
def setup():
    graph = load_dataset("wikipedia", scale=0.04, seed=9)
    h = synthetic_features(graph, 24, seed=9, sparsity=0.5)
    layer = GNNLayer(24, 12, aggregator="gcn", activation=True, seed=9)
    reference, _ = layer.forward(graph, h)
    params = UpdateParams(weight=layer.weight, bias=layer.bias, activation=True)
    return graph, h, params, reference


def test_unfused_kernels_plus_update(setup):
    graph, h, params, reference = setup
    for kernel in (DistGNNKernel(), SpMMKernel(), BasicKernel(), CompressedKernel()):
        a, _ = kernel.aggregate(graph, h, "gcn")
        np.testing.assert_allclose(
            params.apply(a), reference, atol=3e-4,
            err_msg=f"kernel {kernel.name} diverged",
        )


def test_fused_kernels(setup):
    graph, h, params, reference = setup
    for kernel in (FusedKernel(), CompressedFusedKernel()):
        h_out, _, _ = kernel.run_layer(graph, h, params, "gcn")
        np.testing.assert_allclose(
            h_out, reference, atol=3e-4, err_msg=f"kernel {kernel.name} diverged"
        )


def test_dma_offload(setup):
    graph, h, params, reference = setup
    runner = DmaOffloadRunner(cache_scale=0.02)
    h_out, _, _ = runner.run_layer(graph, h, params=params)
    np.testing.assert_allclose(h_out, reference, atol=3e-4)


def test_mean_aggregator_end_to_end(setup):
    graph, h, params, _ = setup
    layer = GNNLayer(24, 12, aggregator="mean", seed=9)
    layer.weight = params.weight
    layer.bias = params.bias
    reference, _ = layer.forward(graph, h)
    h_out, _, _ = FusedKernel().run_layer(graph, h, params, "mean")
    np.testing.assert_allclose(h_out, reference, atol=3e-4)
    dma_out, _, _ = DmaOffloadRunner(cache_scale=0.02).run_layer(
        graph, h, params=params, aggregator="mean"
    )
    np.testing.assert_allclose(dma_out, reference, atol=3e-4)
