"""JIT kernel specialization — the xbyak role (Section 4.1).

The paper tailors the aggregation inner loop to each layer's feature
length with a JIT assembler: specialized kernels use layer constants,
avoid bounds checks, and are generated once per model because "the code
is tailored to the model but not the data".

In Python the analogous move is generating a closure specialized to
``(feature_len, aggregator)``: the closure binds the ψ factor arrays and
the vector width once, and the cache guarantees the one-compilation-per-
spec amortization the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.aggregate import normalization_factors

#: Signature of a specialized aggregation inner kernel: returns the
#: aggregated feature row of one vertex given the input feature matrix.
InnerKernel = Callable[[np.ndarray, int], np.ndarray]


@dataclass(frozen=True)
class KernelSpec:
    """The model-dependent constants a specialized kernel binds."""

    feature_len: int
    aggregator: str

    def __post_init__(self) -> None:
        if self.feature_len <= 0:
            raise ValueError(f"feature_len must be positive, got {self.feature_len}")


class JitKernelCache:
    """Compile-once cache of specialized per-vertex aggregation kernels.

    ``specialize`` returns a closure over the graph's precomputed factor
    arrays.  ``compilations`` counts actual generation events; repeated
    requests for the same spec on the same graph are cache hits, matching
    the paper's claim that codegen overhead is amortized over the session.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, int, str], InnerKernel] = {}
        self.compilations = 0

    def __len__(self) -> int:
        return len(self._cache)

    def specialize(self, graph: CSRGraph, spec: KernelSpec) -> InnerKernel:
        key = (id(graph), spec.feature_len, spec.aggregator)
        kernel = self._cache.get(key)
        if kernel is None:
            kernel = self._generate(graph, spec)
            self._cache[key] = kernel
            self.compilations += 1
        return kernel

    def _generate(self, graph: CSRGraph, spec: KernelSpec) -> InnerKernel:
        """Generate the specialized inner loop.

        The generated closure binds: the CSR arrays, the ψ factor arrays
        (edge + self), and the feature length — the layer-specific
        constants an xbyak kernel would embed as immediates.
        """
        edge_factors, self_factors = normalization_factors(graph, spec.aggregator)
        indptr = graph.indptr
        indices = graph.indices
        feature_len = spec.feature_len

        def kernel(h: np.ndarray, v: int) -> np.ndarray:
            if h.shape[1] != feature_len:
                raise ValueError(
                    f"kernel specialized for {feature_len} features, "
                    f"got {h.shape[1]}"
                )
            start, end = indptr[v], indptr[v + 1]
            row = indices[start:end]
            acc = h[v] * self_factors[v]
            if len(row):
                acc = acc + (h[row] * edge_factors[start:end, None]).sum(axis=0)
            return acc

        return kernel
