"""Unit tests for graph persistence."""

import numpy as np
import pytest

from repro.graphs import (
    GraphError,
    load_edge_list,
    load_npz,
    parse_edge_list,
    save_npz,
)


class TestNpz:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "tiny.npz"
        save_npz(tiny_graph, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(loaded.indices, tiny_graph.indices)
        assert loaded.name == tiny_graph.name

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, indptr=np.array([0]))
        with pytest.raises(GraphError):
            load_npz(path)


class TestEdgeList:
    def test_parse_basic(self):
        graph = parse_edge_list("0 1\n1 2\n2 0\n")
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_comments_and_blanks_skipped(self):
        graph = parse_edge_list("# header\n\n% other\n0 1\n")
        assert graph.num_edges == 1

    def test_extra_columns_tolerated(self):
        graph = parse_edge_list("0 1 0.5\n")
        assert graph.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list("0\n")

    def test_non_integer_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list("a b\n")

    def test_negative_id_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list("-1 0\n")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 0\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 2
        assert graph.name == "graph.txt"

    def test_error_reports_line_number(self):
        with pytest.raises(GraphError, match="line 3"):
            parse_edge_list("0 1\n1 2\nbroken\n")


class TestStreamingLargeList:
    """The parser grows numpy buffers instead of a Python tuple list —
    this regression pins the behavior on an input well past the initial
    buffer capacity (1024 edges)."""

    @pytest.fixture(scope="class")
    def big_edges(self):
        rng = np.random.default_rng(17)
        return rng.integers(0, 5000, size=(60_000, 2), dtype=np.int64)

    def test_parse_matches_from_edges(self, big_edges):
        from repro.graphs import CSRGraph

        text = "\n".join(f"{d} {s}" for d, s in big_edges) + "\n"
        graph = parse_edge_list(text)
        expected = CSRGraph.from_edges(int(big_edges.max()) + 1, big_edges)
        assert graph.num_edges == expected.num_edges
        np.testing.assert_array_equal(graph.indptr, expected.indptr)
        np.testing.assert_array_equal(graph.indices, expected.indices)

    def test_load_streams_file_without_slurping(self, big_edges, tmp_path):
        path = tmp_path / "big.txt"
        with open(path, "w") as handle:
            handle.write("# generated\n")
            for dst, src in big_edges:
                handle.write(f"{dst} {src}\n")
        graph = load_edge_list(path)
        unique = len(np.unique(big_edges, axis=0))
        assert graph.num_edges == unique
        assert graph.num_vertices == int(big_edges.max()) + 1

    def test_exact_doubling_boundary(self):
        # 1024 / 1025 edges straddle the first buffer growth.
        for count in (1023, 1024, 1025, 2049):
            text = "".join(f"{i} {i + 1}\n" for i in range(count))
            graph = parse_edge_list(text)
            assert graph.num_edges == count
