"""The value-plane contract: every kernel matches the reference oracle.

Graphite's whole premise is that its optimizations are semantics-
preserving — these tests enforce it for every execution strategy, both
aggregators, multiple graphs, and custom processing orders.
"""

import numpy as np
import pytest

from repro.graphs import (
    locality_order,
    randomized_order,
    synthetic_features,
)
from repro.kernels import (
    BasicKernel,
    CompressedFusedKernel,
    CompressedKernel,
    DistGNNKernel,
    FusedKernel,
    SpMMKernel,
    UpdateParams,
    spmm_layer,
)
from repro.nn import aggregate

AGG_KERNELS = [DistGNNKernel(), SpMMKernel(), BasicKernel(), CompressedKernel()]


def _params(f_in, f_out, seed=0):
    rng = np.random.default_rng(seed)
    return UpdateParams(
        weight=(rng.standard_normal((f_in, f_out)) * 0.2).astype(np.float32),
        bias=rng.standard_normal(f_out).astype(np.float32) * 0.1,
    )


@pytest.mark.parametrize("kernel", AGG_KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("aggregator", ["gcn", "mean"])
def test_aggregation_kernels_match_oracle(small_products, kernel, aggregator):
    h = synthetic_features(small_products, 24, seed=1, sparsity=0.4)
    reference = aggregate(small_products, h, aggregator)
    out, stats = kernel.aggregate(small_products, h, aggregator)
    np.testing.assert_allclose(out, reference, atol=2e-4)
    assert stats.gathers == small_products.num_edges + small_products.num_vertices


@pytest.mark.parametrize("kernel", AGG_KERNELS, ids=lambda k: k.name)
def test_kernels_on_corner_graphs(kernel, star10, chain20, grid16):
    for graph in (star10, chain20, grid16):
        h = synthetic_features(graph, 8, seed=2)
        reference = aggregate(graph, h, "gcn")
        out, _ = kernel.aggregate(graph, h, "gcn")
        np.testing.assert_allclose(out, reference, atol=1e-4)


@pytest.mark.parametrize(
    "order_fn", [randomized_order, locality_order], ids=["random", "locality"]
)
def test_order_does_not_change_results(small_products, order_fn):
    h = synthetic_features(small_products, 16, seed=3)
    reference = aggregate(small_products, h, "gcn")
    order = order_fn(small_products)
    for kernel in (BasicKernel(), CompressedKernel()):
        out, _ = kernel.aggregate(small_products, h, "gcn", order=order)
        np.testing.assert_allclose(out, reference, atol=1e-4)


@pytest.mark.parametrize("keep", [True, False], ids=["training", "inference"])
@pytest.mark.parametrize(
    "kernel_cls", [FusedKernel, CompressedFusedKernel], ids=["fusion", "combined"]
)
def test_fused_kernels_match_unfused_layer(small_products, kernel_cls, keep):
    h = synthetic_features(small_products, 20, seed=4, sparsity=0.5)
    params = _params(20, 12)
    reference_a = aggregate(small_products, h, "gcn")
    reference_h = params.apply(reference_a)

    kernel = kernel_cls()
    h_out, a, stats = kernel.run_layer(
        small_products, h, params, "gcn", keep_aggregation=keep
    )
    np.testing.assert_allclose(h_out, reference_h, atol=2e-4)
    if keep:
        np.testing.assert_allclose(a, reference_a, atol=2e-4)
    else:
        assert a is None


def test_spmm_layer_matches(small_products):
    h = synthetic_features(small_products, 10, seed=5)
    params = _params(10, 6)
    h_out, a, stats = spmm_layer(small_products, h, params, "gcn")
    np.testing.assert_allclose(a, aggregate(small_products, h, "gcn"), atol=1e-4)
    np.testing.assert_allclose(h_out, params.apply(a), atol=1e-5)
    assert stats.flops > 0


def test_fused_vs_basic_same_flop_count(small_products):
    """Fusion restructures, it does not change the arithmetic volume
    (apart from the update GEMM it absorbs)."""
    h = synthetic_features(small_products, 16, seed=6)
    params = _params(16, 16)
    _, basic_stats = BasicKernel().aggregate(small_products, h, "gcn")
    _, _, fused_stats = FusedKernel().run_layer(small_products, h, params, "gcn")
    gemm_flops = 2.0 * small_products.num_vertices * 16 * 16
    assert fused_stats.flops == pytest.approx(basic_stats.flops + gemm_flops)
