"""Unit tests for the declarative SLO rule engine."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.rules import (
    Rule,
    RuleEngine,
    RuleParseError,
    load_rules,
    parse_rule,
    parse_rules,
)


def gauge(value):
    return {"type": "gauge", "value": value}


def counter(value):
    return {"type": "counter", "value": value}


class TestParseRule:
    def test_minimal(self):
        rule = parse_rule("proc.rss_bytes < 2e9")
        assert rule.metric == "proc.rss_bytes"
        assert rule.stat == "value"
        assert rule.op == "<"
        assert rule.threshold == 2e9
        assert rule.for_count == 1
        assert rule.name == "proc.rss_bytes.lt"

    def test_named_with_stat_and_for(self):
        rule = parse_rule("bwd_p99: kernel.backward.time_ms p99 < 250 for 3")
        assert rule.name == "bwd_p99"
        assert rule.stat == "p99"
        assert rule.for_count == 3

    def test_rate_of_change(self):
        rule = parse_rule("loss_drops: train.loss rate_of_change <= 0 for 2")
        assert rule.stat == "rate_of_change"
        assert rule.op == "<="

    @pytest.mark.parametrize(
        "text",
        [
            "just_one_token",
            "metric ~ 5",  # unknown operator
            "metric p42 < 5",  # unknown stat
            "metric < five",  # non-numeric threshold
            "metric < 5 for 0",  # for count must be >= 1
            "metric < 5 for x",  # non-integer for count
            "BadMetric! < 5",  # bad metric charset
        ],
    )
    def test_rejects_bad_lines(self, text):
        with pytest.raises(RuleParseError):
            parse_rule(text)

    def test_holds_uses_operator(self):
        assert parse_rule("m < 5").holds(4.0)
        assert not parse_rule("m < 5").holds(5.0)
        assert parse_rule("m != 0").holds(1.0)

    def test_nan_never_holds(self):
        # A NaN'd loss violates `train.loss < 1e30`: the non-finite
        # health guard expressed as one line of rule data.
        assert not parse_rule("train.loss < 1e30").holds(float("nan"))

    def test_str_round_trips_the_grammar(self):
        rule = parse_rule("cap: m.x p95 >= 2 for 4")
        assert parse_rule(str(rule)) == Rule(
            name="cap", metric="m.x", stat="p95", op=">=",
            threshold=2.0, for_count=4, source=str(rule),
        )


class TestParseRules:
    def test_comments_and_blanks(self):
        rules = parse_rules(
            "# header comment\n\n"
            "rss: proc.rss_bytes < 2e9  # trailing comment\n"
            "train.loss < 10\n"
        )
        assert [r.name for r in rules] == ["rss", "train.loss.lt"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(RuleParseError, match="duplicate"):
            parse_rules("a: m < 1\na: m < 2\n")

    def test_load_rules(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("cap: proc.rss_bytes < 1e9\n")
        assert [r.name for r in load_rules(str(path))] == ["cap"]


class TestRuleEngine:
    def test_compliant_snapshot_raises_nothing(self):
        engine = RuleEngine("cap: m < 10")
        assert engine.evaluate({"m": gauge(5.0)}) == []
        assert engine.ok
        assert engine.active == []

    def test_violation_fires_alert(self):
        engine = RuleEngine("cap: m < 10")
        alerts = engine.evaluate({"m": gauge(15.0)})
        assert [a.rule for a in alerts] == ["cap"]
        assert alerts[0].value == 15.0
        assert not engine.ok
        assert engine.active == ["cap"]
        assert "violates < 10" in alerts[0].message

    def test_missing_metric_skips(self):
        engine = RuleEngine("cap: m < 10")
        assert engine.evaluate({}) == []
        assert engine.ok

    def test_for_count_tolerance_and_reset(self):
        engine = RuleEngine("cap: m < 10 for 3")
        assert engine.evaluate({"m": gauge(99.0)}) == []
        assert engine.evaluate({"m": gauge(99.0)}) == []
        # A compliant evaluation resets the streak.
        assert engine.evaluate({"m": gauge(1.0)}) == []
        assert engine.evaluate({"m": gauge(99.0)}) == []
        assert engine.evaluate({"m": gauge(99.0)}) == []
        assert [a.consecutive for a in engine.evaluate({"m": gauge(99.0)})] == [3]

    def test_long_breach_keeps_reporting(self):
        engine = RuleEngine("cap: m < 10 for 2")
        engine.evaluate({"m": gauge(99.0)})
        assert len(engine.evaluate({"m": gauge(99.0)})) == 1
        assert len(engine.evaluate({"m": gauge(99.0)})) == 1
        assert len(engine.alerts) == 2

    def test_histogram_stat(self):
        engine = RuleEngine("p99: h p99 < 100")
        snap = {"h": {"type": "histogram", "p99": 250.0, "count": 10}}
        assert [a.value for a in engine.evaluate(snap)] == [250.0]

    def test_rate_of_change_skips_first_then_deltas(self):
        engine = RuleEngine("loss_drops: train.loss rate_of_change <= 0")
        assert engine.evaluate({"train.loss": gauge(2.0)}) == []  # first sight
        assert engine.evaluate({"train.loss": gauge(1.5)}) == []  # dropping
        alerts = engine.evaluate({"train.loss": gauge(1.9)})  # rising
        assert [a.value for a in alerts] == [pytest.approx(0.4)]

    def test_counter_rate(self):
        engine = RuleEngine("qps: c rate < 10")
        assert engine.evaluate({"c": counter(0.0)}, now=0.0) == []
        alerts = engine.evaluate({"c": counter(100.0)}, now=2.0)
        assert [a.value for a in alerts] == [pytest.approx(50.0)]

    def test_publishes_alert_metrics(self):
        registry = MetricsRegistry()
        engine = RuleEngine("cap: m < 10", registry=registry)
        engine.evaluate({"m": gauge(99.0)})
        engine.evaluate({"m": gauge(1.0)})
        snap = registry.snapshot()
        assert snap["alerts.evaluations"]["value"] == 2.0
        assert snap["alerts.fired"]["value"] == 1.0
        assert snap["alerts.cap.fired"]["value"] == 1.0
        assert snap["alerts.cap"]["value"] == 0.0  # recovered
        assert snap["alerts.active"]["value"] == 0.0

    def test_to_dict_and_summary(self):
        engine = RuleEngine("cap: m < 10")
        engine.evaluate({"m": gauge(99.0)})
        doc = engine.to_dict()
        assert doc["ok"] is False
        assert doc["rules"][0]["name"] == "cap"
        assert doc["alerts"][0]["value"] == 99.0
        assert "1 alert(s)" in engine.summary()
        assert engine.fired_counts() == {"cap": 1}

    def test_accepts_parsed_rule_list(self):
        engine = RuleEngine([parse_rule("cap: m < 10")])
        assert len(engine.rules) == 1


class TestDefaultServeRules:
    def test_parse_and_names(self):
        from repro.obs.rules import default_serve_rules

        rules = default_serve_rules()
        names = {rule.name for rule in rules}
        assert names == {
            "serve_p99", "serve_queue", "serve_rejects", "serve_errors",
        }

    def test_quiet_service_fires_nothing(self):
        from repro.obs.rules import default_serve_rules

        engine = RuleEngine(default_serve_rules())
        snapshot = {
            "serve.queue_depth": gauge(3.0),
            "serve.rejected": counter(0.0),
            "serve.errors": counter(0.0),
            "serve.latency.request_s": {
                "type": "histogram", "count": 10, "p99": 0.05,
            },
        }
        for _ in range(4):
            engine.evaluate(snapshot)
        assert engine.ok

    def test_p99_breach_fires(self):
        from repro.obs.rules import default_serve_rules

        engine = RuleEngine(default_serve_rules())
        engine.evaluate(
            {"serve.latency.request_s": {
                "type": "histogram", "count": 5, "p99": 9.0,
            }}
        )
        assert not engine.ok
        assert any(a.rule == "serve_p99" for a in engine.alerts)
