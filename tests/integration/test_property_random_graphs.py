"""Property-based cross-validation on random graphs.

Hypothesis generates arbitrary small graphs; every execution path must
agree with the reference aggregation on all of them — including the DMA
engine, whose descriptor machinery exercises very different code.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dma import DmaOffloadRunner
from repro.graphs import CSRGraph
from repro.kernels import BasicKernel, CompressedKernel, FusedKernel, UpdateParams
from repro.nn import aggregate


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    num_edges = draw(st.integers(min_value=0, max_value=4 * n))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(num_edges)
    ]
    return CSRGraph.from_edges(n, edges, name="hypo")


def _features(graph, seed, cols=6, sparsity=0.4):
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((graph.num_vertices, cols)).astype(np.float32)
    h[rng.random(h.shape) < sparsity] = 0.0
    return h


@settings(max_examples=25, deadline=None)
@given(graph=small_graphs(), seed=st.integers(0, 100),
       aggregator=st.sampled_from(["gcn", "mean"]))
def test_software_kernels_match_on_random_graphs(graph, seed, aggregator):
    h = _features(graph, seed)
    reference = aggregate(graph, h, aggregator)
    for kernel in (BasicKernel(), CompressedKernel()):
        out, _ = kernel.aggregate(graph, h, aggregator)
        np.testing.assert_allclose(out, reference, atol=1e-4)


@settings(max_examples=12, deadline=None)
@given(graph=small_graphs(), seed=st.integers(0, 100))
def test_fused_kernel_matches_on_random_graphs(graph, seed):
    h = _features(graph, seed)
    rng = np.random.default_rng(seed)
    params = UpdateParams(
        weight=(rng.standard_normal((6, 4)) * 0.3).astype(np.float32),
        bias=rng.standard_normal(4).astype(np.float32) * 0.1,
    )
    reference = params.apply(aggregate(graph, h, "gcn"))
    block = int(rng.integers(1, graph.num_vertices + 1))
    h_out, _, _ = FusedKernel(block_size=block).run_layer(graph, h, params)
    np.testing.assert_allclose(h_out, reference, atol=1e-4)


@settings(max_examples=8, deadline=None)
@given(graph=small_graphs(), seed=st.integers(0, 50))
def test_dma_engine_matches_on_random_graphs(graph, seed):
    h = _features(graph, seed)
    reference = aggregate(graph, h, "gcn")
    runner = DmaOffloadRunner(cache_scale=0.05, block_size=4)
    a, _, _ = runner.run_layer(graph, h, aggregator="gcn")
    np.testing.assert_allclose(a, reference, atol=1e-4)
