"""Cross-validate the event-driven Fig-10 timeline against the batch law.

Two independent implementations of the same mechanism — the request-
granular timeline of :mod:`repro.dma.timeline` and the closed-form
tracking-table law of :mod:`repro.dma.engine` — must agree on the
qualitative scaling of Figure 16.
"""

import pytest

from repro.dma.engine import DmaEngine
from repro.dma.timeline import DescriptorJob, DmaRequestTimeline
from repro.sim import DramModel

ENTRIES = (8, 16, 32, 64)


def _timeline_curve():
    # The index buffer must not be the bottleneck for this comparison:
    # each buffered index line unlocks 8 input lines, so 16 entries keep
    # up to 128 dependent fetches available to the tracking table.
    jobs = [DescriptorJob(index_lines=6, inputs_per_index_line=4, lines_per_input=2)
            for _ in range(8)]
    times = {}
    for entries in ENTRIES:
        timeline = DmaRequestTimeline(
            tracking_entries=entries, index_buffer_entries=16,
            memory_latency=120.0, issue_interval=1.2,
        )
        times[entries] = timeline.run(jobs).finish_time
    return {e: times[e] / times[8] for e in ENTRIES}


def _batch_law_curve():
    dram = DramModel()
    engine = DmaEngine(0)
    lines = 8 * (6 + 24)
    times = {
        entries: engine.batch_time_cycles(
            dram, lines, lines, tracking_entries=entries, contention=28
        )
        for entries in ENTRIES
    }
    return {e: times[e] / times[8] for e in ENTRIES}


class TestAgreement:
    def test_both_monotone_nonincreasing(self):
        for curve in (_timeline_curve(), _batch_law_curve()):
            values = [curve[e] for e in ENTRIES]
            assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_both_show_diminishing_returns(self):
        for curve in (_timeline_curve(), _batch_law_curve()):
            early_gain = curve[8] - curve[16]
            late_gain = curve[32] - curve[64]
            assert early_gain > late_gain

    def test_normalized_curves_roughly_agree(self):
        timeline = _timeline_curve()
        law = _batch_law_curve()
        for entries in (16, 32):
            assert timeline[entries] == pytest.approx(law[entries], abs=0.3)
