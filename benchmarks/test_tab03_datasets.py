"""Table 3: dataset statistics of the twins vs the published originals."""

from conftest import run_experiment

from repro.bench.figures import tab3_datasets


def test_tab3_datasets(benchmark, ctx):
    exp = run_experiment(benchmark, tab3_datasets, ctx)
    for row in exp.rows:
        if "mean degree" in row.label:
            assert 0.5 <= row.ratio <= 1.5
