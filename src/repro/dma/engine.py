"""The enhanced per-core DMA engine — Section 5 of the paper.

The engine sits next to L2 (Figure 7), takes 64-byte aggregation
descriptors from a queue, and executes Algorithm 4: fetch the index
slice, fetch the referenced input blocks, apply ``bin_op`` with the
factor array (the ψ of Algorithm 1), reduce with ``red_op`` into the
output buffer, write a completion record, and flush results into the
issuing core's L2.

Two planes again:

* **Value plane** — :meth:`DmaEngine.execute` runs Algorithm 4 exactly
  over a :class:`DmaAddressSpace`, honoring buffer capacities (an ``E``
  larger than the output buffer is rejected — the software must split,
  Section 5.2).
* **Time plane** — :meth:`DmaEngine.fetch_lines` walks the line
  addresses through the memory hierarchy with the private caches
  bypassed (inputs are read-once) and prices the batch with the
  tracking-table-limited parallelism law of Figure 10/16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..perf.machine import DmaConfig
from ..sim.dram import DramModel
from ..sim.hierarchy import MemoryHierarchy
from .descriptor import AggregationDescriptor, BinOp, RedOp

#: Engine issue overhead per line (no instruction stream to fight with).
ENGINE_ISSUE_CYCLES_PER_LINE = 1.0

#: Fraction of peak DRAM bandwidth the engines sustain collectively —
#: dedicated request streams with deep queues approach the interface
#: limit, unlike core-driven gathers (cf. CORE_GATHER_BW_EFFICIENCY).
ENGINE_BW_EFFICIENCY = 0.97

#: Completion-record values.
STATUS_OK = 1
STATUS_ERROR = 2


class DmaError(RuntimeError):
    """Raised when a descriptor violates an engine resource limit."""


class DmaAddressSpace:
    """Virtual address space backing the functional execution.

    Registers flat numpy buffers at base addresses; ``resolve`` maps a
    virtual address to (array, element offset).  This stands in for the
    STLB translation path — the engine works in user virtual addresses
    (Section 5).
    """

    def __init__(self) -> None:
        self._regions: List[Tuple[int, int, np.ndarray]] = []

    def register(self, base: int, array: np.ndarray) -> None:
        flat = array.reshape(-1)
        end = base + flat.nbytes
        for other_base, other_end, _ in self._regions:
            if base < other_end and other_base < end:
                raise ValueError(
                    f"region [{base}, {end}) overlaps [{other_base}, {other_end})"
                )
        self._regions.append((base, end, flat))
        self._regions.sort(key=lambda r: r[0])

    def resolve(self, addr: int) -> Tuple[np.ndarray, int]:
        for base, end, array in self._regions:
            if base <= addr < end:
                byte_off = addr - base
                item = array.dtype.itemsize
                if byte_off % item:
                    raise ValueError(f"address {addr:#x} misaligned for {array.dtype}")
                return array, byte_off // item
        raise KeyError(f"address {addr:#x} maps to no registered region")


@dataclass
class DmaEngineStats:
    """Counters for one engine."""

    descriptors_completed: int = 0
    descriptors_failed: int = 0
    input_lines_fetched: int = 0
    index_lines_fetched: int = 0
    factor_lines_fetched: int = 0
    l3_hits: int = 0
    dram_lines: int = 0
    output_lines_written: int = 0
    reduce_ops: float = 0.0


class DmaEngine:
    """One per-core aggregation-capable DMA engine."""

    def __init__(
        self,
        core: int,
        config: Optional[DmaConfig] = None,
        address_space: Optional[DmaAddressSpace] = None,
    ) -> None:
        self.core = core
        self.config = config or DmaConfig()
        self.address_space = address_space or DmaAddressSpace()
        self.stats = DmaEngineStats()

    # ------------------------------------------------------------------
    # Value plane: Algorithm 4
    # ------------------------------------------------------------------
    def execute(self, descriptor: AggregationDescriptor) -> int:
        """Run Algorithm 4 for one descriptor; returns the status code.

        Raises :class:`DmaError` when the descriptor exceeds a hard
        engine resource (output buffer capacity) — the condition the
        software splitting of Section 5.2 exists to avoid.
        """
        cfg = self.config
        if descriptor.output_bytes > cfg.output_buffer_bytes:
            raise DmaError(
                f"E={descriptor.num_values} elements "
                f"({descriptor.output_bytes}B) exceeds the "
                f"{cfg.output_buffer_bytes}B output buffer; split the "
                "aggregation (Section 5.2)"
            )
        space = self.address_space
        e = descriptor.num_values
        stride = descriptor.padded_block_bytes // descriptor.val_type.bytes

        # B_i = 0 (Line 1); MIN/MAX seed from the identity of the op.
        if descriptor.red_op is RedOp.SUM:
            buffer = np.zeros(e, dtype=np.float64)
        elif descriptor.red_op is RedOp.MAX:
            buffer = np.full(e, -np.inf)
        else:
            buffer = np.full(e, np.inf)

        status_arr, status_off = space.resolve(descriptor.status_addr)
        try:
            in_arr, in_off = space.resolve(descriptor.in_addr)
            factors = None
            indices = np.empty(0, dtype=np.int64)
            if descriptor.num_blocks > 0:
                idx_arr, idx_off = space.resolve(descriptor.idx_addr)
                indices = idx_arr[idx_off : idx_off + descriptor.num_blocks]
                if descriptor.bin_op is not BinOp.NONE:
                    factor_arr, factor_off = space.resolve(descriptor.factor_addr)
                    factors = factor_arr[
                        factor_off : factor_off + descriptor.num_blocks
                    ]
            for i in range(descriptor.num_blocks):  # Line 2
                base = in_off + int(indices[i]) * stride
                block = in_arr[base : base + e].astype(np.float64)  # Lines 3-4
                if factors is not None:  # Line 5
                    if descriptor.bin_op is BinOp.MUL:
                        block = block * float(factors[i])
                    else:
                        block = block + float(factors[i])
                if descriptor.red_op is RedOp.SUM:  # Line 6
                    buffer += block
                elif descriptor.red_op is RedOp.MAX:
                    np.maximum(buffer, block, out=buffer)
                else:
                    np.minimum(buffer, block, out=buffer)
                self.stats.reduce_ops += e
        except (KeyError, ValueError, IndexError):
            status_arr[status_off] = STATUS_ERROR  # abort (Line 7 failure)
            self.stats.descriptors_failed += 1
            return STATUS_ERROR

        out_arr, out_off = space.resolve(descriptor.out_addr)
        if descriptor.num_blocks == 0:
            buffer = np.zeros(e, dtype=np.float64)
        out_arr[out_off : out_off + e] = buffer.astype(out_arr.dtype)  # Lines 8-9
        status_arr[status_off] = STATUS_OK  # Line 7
        self.stats.descriptors_completed += 1
        return STATUS_OK

    # ------------------------------------------------------------------
    # Time plane: Figure 10 request scheduling, batch law
    # ------------------------------------------------------------------
    def fetch_lines(
        self,
        hierarchy: MemoryHierarchy,
        index_lines: List[int],
        factor_lines: List[int],
        input_lines: List[int],
        output_lines: List[int],
    ) -> Dict[str, float]:
        """Walk one descriptor batch's lines through the hierarchy.

        Inputs bypass the private caches (read-once by design) but can
        hit the shared L3; outputs are installed into the core's L2 so
        the subsequent update finds them hot (Section 5.2).  Returns the
        line counts used by the batch timing law.
        """
        dram = 0
        for group, counter in (
            (index_lines, "index_lines_fetched"),
            (factor_lines, "factor_lines_fetched"),
            (input_lines, "input_lines_fetched"),
        ):
            for addr in group:
                result = hierarchy.access(
                    self.core, addr, write=False, bypass_private=True
                )
                setattr(self.stats, counter, getattr(self.stats, counter) + 1)
                if result.level == "DRAM":
                    dram += 1
                else:
                    self.stats.l3_hits += 1
        for addr in output_lines:
            hierarchy.dma_install_output(self.core, addr)
            self.stats.output_lines_written += 1
        self.stats.dram_lines += dram
        total = len(index_lines) + len(factor_lines) + len(input_lines)
        return {"dram_lines": float(dram), "touched_lines": float(total)}

    def batch_time_cycles(
        self,
        dram: DramModel,
        dram_lines: float,
        touched_lines: float,
        tracking_entries: Optional[int] = None,
        contention: int = 1,
    ) -> float:
        """Cycles to complete a batch with the tracking-table MLP limit.

        The index-before-input dependence of Figure 10 costs one loaded
        latency of serialization per batch; the rest pipelines at the
        tracking-table width.  (The engine overlaps a second descriptor
        when dependences would stall — Section 5.2 — which this batch-
        level law already captures.)

        ``contention`` is the number of engines sharing the DRAM
        interface: each engine's bandwidth share shrinks accordingly,
        and the loaded latency reflects the machine-wide utilization.
        This is what makes Figure 16 flatten past 32 entries — beyond
        the knee the per-engine bandwidth share, not the table, limits.
        """
        entries = (
            self.config.tracking_table_entries
            if tracking_entries is None
            else tracking_entries
        )
        if entries <= 0:
            raise ValueError("tracking table needs at least one entry")
        if contention <= 0:
            raise ValueError("contention must be positive")
        bw_time = (
            dram_lines
            * dram.service_cycles_per_line
            * contention
            / ENGINE_BW_EFFICIENCY
        )
        time = max(bw_time, 1e-9)
        for _ in range(3):
            utilization = min(0.999, bw_time / max(time, 1e-9))
            latency = dram.loaded_latency(utilization)
            lat_time = dram_lines * latency / entries + latency
            issue_time = touched_lines * ENGINE_ISSUE_CYCLES_PER_LINE
            time = max(bw_time, lat_time, issue_time)
        return time
