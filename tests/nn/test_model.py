"""Unit tests for multi-layer GNN models."""

import numpy as np
import pytest

from repro.graphs import synthetic_features
from repro.nn import GNNLayer, GNNModel, build_model


class TestBuildModel:
    def test_layer_count_and_widths(self):
        model = build_model("gcn", 32, 16, 4, num_layers=3)
        assert model.num_layers == 3
        assert model.hidden_widths() == [16, 16, 4]

    def test_last_layer_has_no_activation(self):
        model = build_model("gcn", 8, 8, 3, num_layers=2)
        assert model.layers[0].activation
        assert not model.layers[-1].activation

    def test_sage_uses_mean(self):
        model = build_model("sage", 8, 8, 3)
        assert all(layer.aggregator == "mean" for layer in model.layers)

    def test_dropout_skips_input_layer(self):
        model = build_model("gcn", 8, 8, 3, num_layers=3, dropout=0.5)
        assert model.layers[0].dropout == 0.0
        assert model.layers[1].dropout == 0.5

    def test_invalid_model_type(self):
        with pytest.raises(ValueError):
            build_model("gat", 8, 8, 3)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            build_model("gcn", 8, 8, 3, num_layers=0)


class TestModelValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GNNModel([])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GNNModel([GNNLayer(4, 8), GNNLayer(4, 2)])


class TestForwardBackward:
    def test_forward_shapes(self, small_uniform):
        model = build_model("gcn", 8, 16, 4, num_layers=2)
        h = synthetic_features(small_uniform, 8, seed=0)
        logits, caches = model.forward(small_uniform, h)
        assert logits.shape == (small_uniform.num_vertices, 4)
        assert len(caches) == 2

    def test_backward_returns_all_grads(self, small_uniform):
        model = build_model("gcn", 8, 16, 4, num_layers=2)
        h = synthetic_features(small_uniform, 8, seed=0)
        logits, caches = model.forward(small_uniform, h, training=True)
        grads = model.backward(small_uniform, np.ones_like(logits), caches)
        assert len(grads) == 2
        for layer, grad in zip(model.layers, grads):
            assert grad.weight.shape == layer.weight.shape

    def test_backward_cache_mismatch(self, small_uniform):
        model = build_model("gcn", 8, 16, 4, num_layers=2)
        with pytest.raises(ValueError):
            model.backward(small_uniform, np.zeros((1, 4)), [])

    def test_predict_equals_eval_forward(self, small_uniform):
        model = build_model("gcn", 8, 16, 4, num_layers=2, dropout=0.5)
        h = synthetic_features(small_uniform, 8, seed=0)
        np.testing.assert_array_equal(
            model.predict(small_uniform, h),
            model.forward(small_uniform, h, training=False)[0],
        )

    def test_parameters_enumeration(self):
        model = build_model("gcn", 4, 8, 2, num_layers=2)
        params = model.parameters()
        assert len(params) == 4  # weight + bias per layer
