"""Unit + property tests for the set-associative LRU cache."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SetAssociativeCache


class TestBasics:
    def test_first_access_misses(self):
        cache = SetAssociativeCache(1024, 2)
        assert not cache.access(0)
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = SetAssociativeCache(1024, 2)
        cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1

    def test_same_line_different_bytes(self):
        cache = SetAssociativeCache(1024, 2)
        cache.access(0)
        assert cache.access(63)  # same 64B line
        assert not cache.access(64)  # next line

    def test_miss_rate(self):
        cache = SetAssociativeCache(1024, 2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5
        assert cache.stats.hit_rate == 0.5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache(64, 4)  # fewer lines than ways


class TestLRU:
    def test_eviction_order(self):
        # 2 sets, 2 ways: lines 0, 2, 4 map to set 0.
        cache = SetAssociativeCache(4 * 64, 2)
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(4 * 64)  # evicts line 0 (LRU)
        assert not cache.access(0 * 64)
        assert cache.stats.evictions >= 1

    def test_touch_refreshes_lru(self):
        cache = SetAssociativeCache(4 * 64, 2)
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(0 * 64)  # refresh 0, so 2 is now LRU
        cache.access(4 * 64)  # evicts 2
        assert cache.access(0 * 64)
        assert not cache.access(2 * 64)


class TestInstall:
    def test_install_makes_subsequent_access_hit(self):
        cache = SetAssociativeCache(1024, 2)
        cache.install(128)
        assert cache.access(128)
        assert cache.stats.installs == 1

    def test_install_does_not_count_as_demand(self):
        cache = SetAssociativeCache(1024, 2)
        cache.install(128)
        assert cache.stats.accesses == 0

    def test_contains_peeks_without_side_effects(self):
        cache = SetAssociativeCache(1024, 2)
        cache.install(0)
        assert cache.contains(0)
        assert not cache.contains(4096)
        assert cache.stats.accesses == 0

    def test_invalidate(self):
        cache = SetAssociativeCache(1024, 2)
        cache.install(0)
        cache.invalidate(0)
        assert not cache.contains(0)

    def test_reset_stats(self):
        cache = SetAssociativeCache(1024, 2)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0


class _ReferenceLRU:
    """Fully-associative reference used for single-set equivalence."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.lines = OrderedDict()

    def access(self, line):
        if line in self.lines:
            self.lines.move_to_end(line)
            return True
        if len(self.lines) >= self.capacity:
            self.lines.popitem(last=False)
        self.lines[line] = True
        return False


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=200))
def test_single_set_matches_reference_lru(addresses):
    """With one set, the cache is plain LRU: compare against a reference."""
    ways = 4
    cache = SetAssociativeCache(ways * 64, ways)  # one set
    assert cache.num_sets == 1
    reference = _ReferenceLRU(ways)
    for line in addresses:
        assert cache.access(line * 64) == reference.access(line)
