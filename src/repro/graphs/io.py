"""Graph persistence: npz snapshots and edge-list text files."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .csr import CSRGraph, GraphError

PathLike = Union[str, "os.PathLike[str]"]


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph to a compressed ``.npz`` file."""
    np.savez_compressed(
        path, indptr=graph.indptr, indices=graph.indices, name=np.str_(graph.name)
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        missing = {"indptr", "indices"} - set(data.files)
        if missing:
            raise GraphError(f"{path}: missing arrays {sorted(missing)}")
        name = str(data["name"]) if "name" in data.files else "graph"
        return CSRGraph(indptr=data["indptr"], indices=data["indices"], name=name)


def parse_edge_list(text: str, name: str = "edgelist") -> CSRGraph:
    """Parse a whitespace-separated ``dst src`` edge list.

    Lines starting with ``#`` or ``%`` are comments.  Vertex count is
    ``max id + 1``.
    """
    edges = []
    max_id = -1
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected 'dst src', got {line!r}")
        try:
            dst, src = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: non-integer vertex id") from exc
        if dst < 0 or src < 0:
            raise GraphError(f"line {lineno}: negative vertex id")
        edges.append((dst, src))
        max_id = max(max_id, dst, src)
    return CSRGraph.from_edges(max_id + 1, edges, name=name)


def load_edge_list(path: PathLike, name: str = "") -> CSRGraph:
    """Read an edge-list file from disk."""
    with open(path) as handle:
        text = handle.read()
    return parse_edge_list(text, name=name or os.path.basename(str(path)))
