"""Online SLO rules: declarative guards evaluated on live telemetry.

:mod:`repro.obs.health` hardcodes three training guards (NaN, loss
divergence, stall).  This module generalizes the idea into *data*: a
rule file declares conditions over any metric in the registry snapshot
— or over the per-epoch quantities the trainer publishes as ``train.*``
gauges — and the engine evaluates them on every scrape or epoch.

Grammar — one rule per line, ``#`` starts a comment::

    [name:] <metric> [<stat>] <op> <threshold> [for <K>]

* ``metric`` — dotted registry name (``proc.rss_bytes``,
  ``train.loss``, ``kernel.backward.time_ms``);
* ``stat`` — which number of the metric document to judge: ``value``
  (default; a counter's or gauge's scalar), ``count`` / ``total`` /
  ``mean`` / ``min`` / ``max`` / ``p50`` / ``p95`` / ``p99`` (histogram
  summaries), ``rate`` (delta per second between consecutive
  evaluations — counters), or ``rate_of_change`` (plain delta between
  consecutive evaluations — gauges like ``train.loss``);
* ``op`` — ``<  <=  >  >=  ==  !=``;
* ``for K`` — tolerance: the alert fires only after K *consecutive*
  violating evaluations (default 1).  A compliant evaluation resets
  the streak.

A rule states the condition that must **hold** (the SLO); an
:class:`Alert` is raised when it does not.  Examples::

    rss_cap:    proc.rss_bytes < 2e9
    loss_drops: train.loss rate_of_change <= 0 for 3
    bwd_p99:    kernel.backward.time_ms p99 < 250

Comparisons against NaN are false, so ``train.loss < 1e30`` also fires
on a NaN'd loss — the health monitor's non-finite guard as one line of
data.  A metric missing from the snapshot *skips* the rule (scraping
before a subsystem starts must not page); ``rate``/``rate_of_change``
additionally skip their first evaluation.

Firing surfaces three ways: the returned :class:`Alert` objects, the
``alerts.*`` metric family (``alerts.active`` gauge, ``alerts.fired``
counter, per-rule ``alerts.<name>`` gauges and ``alerts.<name>.fired``
counters) in whatever registry is active, and — through the callers —
nonzero ``repro top --check`` exits plus run-report entries.
"""

from __future__ import annotations

import operator
import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

#: Stats resolvable straight from a metric's exported document.
DOCUMENT_STATS = ("value", "count", "total", "mean", "min", "max",
                  "p50", "p95", "p99")

#: Stats computed between consecutive evaluations.
DELTA_STATS = ("rate", "rate_of_change")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_OP_SLUGS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
             "==": "eq", "!=": "ne"}

_METRIC_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


@dataclass(frozen=True)
class Rule:
    """One declarative SLO: ``metric [stat] op threshold [for K]``."""

    name: str
    metric: str
    stat: str
    op: str
    threshold: float
    for_count: int = 1
    source: str = ""

    def holds(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def __str__(self) -> str:
        stat = f" {self.stat}" if self.stat != "value" else ""
        tail = f" for {self.for_count}" if self.for_count > 1 else ""
        return f"{self.name}: {self.metric}{stat} {self.op} {self.threshold:g}{tail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
            "for_count": self.for_count,
        }


@dataclass
class Alert:
    """One firing of a rule: the observed value that broke the SLO."""

    rule: str
    metric: str
    stat: str
    op: str
    threshold: float
    value: float
    consecutive: int
    evaluation: int

    @property
    def message(self) -> str:
        stat = f" {self.stat}" if self.stat != "value" else ""
        return (
            f"{self.rule}: {self.metric}{stat} = {self.value:g} "
            f"violates {self.op} {self.threshold:g} "
            f"({self.consecutive} consecutive)"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
            "value": self.value,
            "consecutive": self.consecutive,
            "evaluation": self.evaluation,
        }

    def __str__(self) -> str:
        return f"[alert] {self.message}"


class RuleParseError(ValueError):
    """A rule line that does not match the grammar."""


def parse_rule(text: str) -> Rule:
    """Parse one rule line (see the module docstring for the grammar)."""
    source = text.strip()
    body = source
    name = None
    if ":" in body:
        candidate, rest = body.split(":", 1)
        if re.fullmatch(r"[A-Za-z_][\w.-]*", candidate.strip()):
            name = candidate.strip()
            body = rest.strip()
    tokens = body.split()
    for_count = 1
    if len(tokens) >= 2 and tokens[-2] == "for":
        try:
            for_count = int(tokens[-1])
        except ValueError as error:
            raise RuleParseError(
                f"{source!r}: 'for' expects an integer, got {tokens[-1]!r}"
            ) from error
        if for_count < 1:
            raise RuleParseError(f"{source!r}: 'for' count must be >= 1")
        tokens = tokens[:-2]
    if len(tokens) == 3:
        metric, op, threshold_text = tokens
        stat = "value"
    elif len(tokens) == 4:
        metric, stat, op, threshold_text = tokens
    else:
        raise RuleParseError(
            f"{source!r}: expected '[name:] metric [stat] op threshold "
            f"[for K]', got {len(tokens)} token(s)"
        )
    if not _METRIC_RE.match(metric):
        raise RuleParseError(f"{source!r}: bad metric name {metric!r}")
    if stat not in DOCUMENT_STATS and stat not in DELTA_STATS:
        raise RuleParseError(
            f"{source!r}: unknown stat {stat!r} "
            f"(expected one of {DOCUMENT_STATS + DELTA_STATS})"
        )
    if op not in _OPS:
        raise RuleParseError(
            f"{source!r}: unknown operator {op!r} (expected {tuple(_OPS)})"
        )
    try:
        threshold = float(threshold_text)
    except ValueError as error:
        raise RuleParseError(
            f"{source!r}: threshold {threshold_text!r} is not a number"
        ) from error
    if name is None:
        name = f"{metric}.{stat}.{_OP_SLUGS[op]}" if stat != "value" else (
            f"{metric}.{_OP_SLUGS[op]}"
        )
    return Rule(
        name=name, metric=metric, stat=stat, op=op,
        threshold=threshold, for_count=for_count, source=source,
    )


def parse_rules(text: str) -> List[Rule]:
    """Parse a rule file's text: one rule per line, ``#`` comments."""
    rules: List[Rule] = []
    seen: Dict[str, int] = {}
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rule = parse_rule(line)
        if rule.name in seen:
            raise RuleParseError(
                f"duplicate rule name {rule.name!r} "
                f"(lines {seen[rule.name]} and {len(rules) + 1})"
            )
        seen[rule.name] = len(rules) + 1
        rules.append(rule)
    return rules


def load_rules(path: str) -> List[Rule]:
    with open(path) as handle:
        return parse_rules(handle.read())


#: Default SLO envelope for the serving plane (``repro serve`` uses it
#: when no ``--rules`` file is given).  Thresholds are deliberately
#: loose — they page on pathology (multi-second tail latency, a standing
#: queue, reject storms), not on a busy-but-healthy server.
DEFAULT_SERVE_RULES = """\
# serving-plane SLOs (defaults; override with --rules)
serve_p99:     serve.latency.request_s p99 < 2.5
serve_queue:   serve.queue_depth <= 512 for 3
serve_rejects: serve.rejected rate < 50 for 3
serve_errors:  serve.errors rate < 10 for 3
"""


def default_serve_rules() -> List[Rule]:
    """The parsed :data:`DEFAULT_SERVE_RULES` set."""
    return parse_rules(DEFAULT_SERVE_RULES)


@dataclass
class _RuleState:
    consecutive: int = 0
    fired_total: int = 0
    active: bool = False
    last_value: Optional[float] = None
    last_time: Optional[float] = None


class RuleEngine:
    """Evaluates a rule set against successive metric snapshots.

    Stateful on purpose: ``for K`` streaks, ``rate`` /
    ``rate_of_change`` deltas, and the fired history all live across
    evaluations.  One engine per run; feed it every scrape or epoch.

    Args:
        rules: parsed :class:`Rule` list (or a rule-file text).
        registry: where ``alerts.*`` metrics are published.  ``None``
            resolves the process-wide active registry at each
            evaluation, so the null registry keeps this zero-cost.
    """

    def __init__(self, rules, registry=None) -> None:
        if isinstance(rules, str):
            rules = parse_rules(rules)
        self.rules: List[Rule] = list(rules)
        self.registry = registry
        self.evaluations = 0
        self.alerts: List[Alert] = []
        self._state: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _document_value(doc: Mapping[str, Any], stat: str) -> Optional[float]:
        value = doc.get(stat)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return None

    def _resolve(
        self, rule: Rule, state: _RuleState,
        snapshot: Mapping[str, Mapping[str, Any]], now: float,
    ) -> Optional[float]:
        doc = snapshot.get(rule.metric)
        if doc is None:
            return None
        if rule.stat in DELTA_STATS:
            current = self._document_value(doc, "value")
            if current is None:
                return None
            previous, previous_t = state.last_value, state.last_time
            state.last_value, state.last_time = current, now
            if previous is None:
                return None  # first sight: no delta yet
            if rule.stat == "rate_of_change":
                return current - previous
            elapsed = now - (previous_t if previous_t is not None else now)
            return (current - previous) / elapsed if elapsed > 0 else None
        return self._document_value(doc, rule.stat)

    def evaluate(
        self,
        snapshot: Mapping[str, Mapping[str, Any]],
        now: Optional[float] = None,
    ) -> List[Alert]:
        """Judge every rule against one snapshot; return new alerts.

        An alert is returned for each rule whose condition is violated
        *and* whose consecutive-violation streak has reached its ``for``
        tolerance this evaluation (and on every violating evaluation
        past it, so long-running breaches keep reporting).
        """
        now = time.monotonic() if now is None else now
        self.evaluations += 1
        fired: List[Alert] = []
        for rule in self.rules:
            state = self._state[rule.name]
            value = self._resolve(rule, state, snapshot, now)
            if value is None:
                continue  # metric absent / first delta: skip, don't page
            if rule.holds(value):
                state.consecutive = 0
                state.active = False
                continue
            state.consecutive += 1
            state.active = state.consecutive >= rule.for_count
            if state.active:
                state.fired_total += 1
                fired.append(
                    Alert(
                        rule=rule.name,
                        metric=rule.metric,
                        stat=rule.stat,
                        op=rule.op,
                        threshold=rule.threshold,
                        value=value,
                        consecutive=state.consecutive,
                        evaluation=self.evaluations,
                    )
                )
        self.alerts.extend(fired)
        self._publish(fired)
        return fired

    def _publish(self, fired: List[Alert]) -> None:
        registry = self.registry
        if registry is None:
            from . import get_metrics

            registry = get_metrics()
        if not registry.enabled:
            return
        registry.inc("alerts.evaluations")
        registry.set_gauge("alerts.active", float(len(self.active)))
        if fired:
            registry.inc("alerts.fired", len(fired))
        for rule in self.rules:
            state = self._state[rule.name]
            registry.set_gauge(f"alerts.{rule.name}", 1.0 if state.active else 0.0)
        for alert in fired:
            registry.inc(f"alerts.{alert.rule}.fired")

    # ------------------------------------------------------------------
    @property
    def active(self) -> List[str]:
        """Names of rules currently in violation (streak >= tolerance)."""
        return [r.name for r in self.rules if self._state[r.name].active]

    @property
    def ok(self) -> bool:
        """True when no rule has ever fired."""
        return not self.alerts

    def fired_counts(self) -> Dict[str, int]:
        return {
            rule.name: self._state[rule.name].fired_total
            for rule in self.rules
            if self._state[rule.name].fired_total
        }

    def to_dict(self) -> Dict[str, Any]:
        """Run-report entry: the rule set plus every alert it raised."""
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "evaluations": self.evaluations,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "active": self.active,
            "ok": self.ok,
        }

    def summary(self) -> str:
        if not self.rules:
            return "slo: no rules"
        if self.ok:
            return (
                f"slo: ok ({len(self.rules)} rule(s), "
                f"{self.evaluations} evaluation(s), no alerts)"
            )
        lines = [
            f"slo: {len(self.alerts)} alert(s) over "
            f"{self.evaluations} evaluation(s)"
        ]
        lines.extend(f"  {alert}" for alert in self.alerts)
        return "\n".join(lines)
