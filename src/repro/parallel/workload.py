"""Per-chunk workloads: the kernel bodies the executor dispatches.

A :class:`ChunkWorkload` is a picklable description of what one chunk of
Algorithm 1/2's parallel loop computes.  The split mirrors the paper's
execution model:

* the *plan* (``repro.parallel.plan``) decides which vertices each task
  owns and which worker runs it;
* the *workload* computes one chunk's disjoint output rows and counts
  the work in a private :class:`KernelStats`;
* the *executor* (``repro.parallel.executor``) runs chunks concurrently
  and merges the per-worker stats deterministically.

Workloads must be picklable so the ``process`` backend can ship them to
worker processes.  Runtime-only state (JIT closures, factor arrays) is
kept in attributes prefixed ``_rt_`` which are stripped from the pickled
state; each worker rebuilds them once via :meth:`ChunkWorkload.prepare`,
matching the paper's claim that specialization cost is amortized because
"the code is tailored to the model but not the data".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import KernelStats, UpdateParams
from ..kernels.jit import InnerKernel, JitKernelCache, KernelSpec
from .plan import Chunk

#: One chunk's output: name -> (vertex ids, rows to write at those ids).
ChunkWrites = Dict[str, Tuple[np.ndarray, np.ndarray]]


class ChunkWorkload:
    """Base class: the per-chunk body of one kernel invocation."""

    def output_specs(self) -> Dict[str, Tuple[Tuple[int, ...], np.dtype]]:
        """Name -> (shape, dtype) of every output array to allocate."""
        raise NotImplementedError

    def prepare(self) -> None:
        """Build runtime-only state; called once per worker."""

    def run_chunk(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        """Compute one chunk's disjoint output rows and its work counters."""
        raise NotImplementedError

    def __getstate__(self):
        # Runtime state (closures, factor arrays) is rebuilt per worker.
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_rt_")}


class BasicAggregationWorkload(ChunkWorkload):
    """Algorithm 1's chunk body: gather-reduce ``T`` vertices with prefetch.

    Also serves the compressed kernel (Section 4.3): with
    ``count_decompressed`` set, ``h`` is the decompress-on-gather feature
    matrix and every gathered row is counted as one mask expansion.
    """

    def __init__(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str,
        order: np.ndarray,
        prefetch_distance: int = 0,
        prefetch_lines: int = 2,
        count_decompressed: bool = False,
    ) -> None:
        self.graph = graph
        self.h = h
        self.aggregator = aggregator
        self.order = order
        self.prefetch_distance = prefetch_distance
        self.prefetch_lines = prefetch_lines
        self.count_decompressed = count_decompressed

    def attach_inner(self, inner: InnerKernel) -> None:
        """Reuse a closure the caller already JIT-specialized."""
        self._rt_inner = inner

    def prepare(self) -> None:
        if getattr(self, "_rt_inner", None) is None:
            cache = JitKernelCache()
            self._rt_inner = cache.specialize(
                self.graph,
                KernelSpec(feature_len=self.h.shape[1], aggregator=self.aggregator),
            )
        self._rt_degs = self.graph.degrees()

    def output_specs(self):
        return {"out": (self.h.shape, np.dtype(np.float32))}

    def run_chunk(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        inner = self._rt_inner
        degs = self._rt_degs
        order = self.order
        n = len(order)
        rows = np.empty((chunk.num_vertices, self.h.shape[1]), dtype=np.float32)
        stats = KernelStats(tasks=1)
        for m, pos in enumerate(range(chunk.start, chunk.stop)):
            v = int(order[pos])
            rows[m] = inner(self.h, v)
            stats.gathers += int(degs[v]) + 1
            if self.count_decompressed:
                stats.decompressed_rows += int(degs[v]) + 1
            # Prefetch the first lines of the vertex D ahead (Alg. 1 line 9).
            ahead = pos + self.prefetch_distance
            if self.prefetch_distance and ahead < n:
                v_ahead = int(order[ahead])
                stats.prefetches += (int(degs[v_ahead]) + 1) * self.prefetch_lines
        return {"out": (order[chunk.start : chunk.stop], rows)}, stats


class FusedLayerWorkload(ChunkWorkload):
    """Algorithm 2's task body: aggregate+update ``T`` blocks of ``B`` rows.

    Each chunk spans ``block_size * blocks_per_task`` vertices; blocks are
    aggregated into a scratch buffer and immediately updated with the
    small GEMM, so the ``a`` block never leaves cache.  With
    ``count_decompressed`` set this is the paper's ``combined`` variant.
    """

    def __init__(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str,
        order: np.ndarray,
        block_size: int,
        keep_aggregation: bool = False,
        prefetch_distance: int = 0,
        prefetch_lines: int = 2,
        count_decompressed: bool = False,
    ) -> None:
        self.graph = graph
        self.h = h
        self.params = params
        self.aggregator = aggregator
        self.order = order
        self.block_size = block_size
        self.keep_aggregation = keep_aggregation
        self.prefetch_distance = prefetch_distance
        self.prefetch_lines = prefetch_lines
        self.count_decompressed = count_decompressed

    def attach_inner(self, inner: InnerKernel) -> None:
        self._rt_inner = inner

    def prepare(self) -> None:
        if getattr(self, "_rt_inner", None) is None:
            cache = JitKernelCache()
            self._rt_inner = cache.specialize(
                self.graph,
                KernelSpec(feature_len=self.h.shape[1], aggregator=self.aggregator),
            )
        self._rt_degs = self.graph.degrees()

    def output_specs(self):
        n, f_in = self.h.shape
        f_out = self.params.weight.shape[1]
        specs = {"h_out": ((n, f_out), np.dtype(np.float32))}
        if self.keep_aggregation:
            specs["a"] = ((n, f_in), np.dtype(np.float32))
        return specs

    def run_chunk(self, chunk: Chunk) -> Tuple[ChunkWrites, KernelStats]:
        inner = self._rt_inner
        degs = self._rt_degs
        order = self.order
        n = len(order)
        f_in = self.h.shape[1]
        stats = KernelStats(tasks=1)
        h_rows = np.empty(
            (chunk.num_vertices, self.params.weight.shape[1]), dtype=np.float32
        )
        a_rows = (
            np.empty((chunk.num_vertices, f_in), dtype=np.float32)
            if self.keep_aggregation
            else None
        )
        for block_start in range(chunk.start, chunk.stop, self.block_size):
            stats.blocks += 1
            block_end = min(block_start + self.block_size, chunk.stop)
            count = block_end - block_start
            # Aggregation phase of the block (Alg. 2 lines 3-7).
            scratch = np.empty((count, f_in), dtype=np.float32)
            for m in range(count):
                v = int(order[block_start + m])
                scratch[m] = inner(self.h, v)
                stats.gathers += int(degs[v]) + 1
                if self.count_decompressed:
                    stats.decompressed_rows += int(degs[v]) + 1
                ahead = block_start + m + self.prefetch_distance
                if self.prefetch_distance and ahead < n:
                    v_ahead = int(order[ahead])
                    stats.prefetches += (int(degs[v_ahead]) + 1) * self.prefetch_lines
            local = block_start - chunk.start
            if a_rows is not None:
                a_rows[local : local + count] = scratch
            # Update phase of the block (Alg. 2 lines 8-10): small GEMM.
            h_rows[local : local + count] = self.params.apply(scratch[:count])
        idx = order[chunk.start : chunk.stop]
        writes: ChunkWrites = {"h_out": (idx, h_rows)}
        if a_rows is not None:
            writes["a"] = (idx, a_rows)
        return writes, stats
