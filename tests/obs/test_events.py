"""Unit tests for the streaming epoch-event log."""

import json
import math

import pytest

from repro.obs.events import (
    EVENTS_SCHEMA_VERSION,
    EpochEvent,
    EventLog,
    EventTail,
    read_events,
    validate_epoch_event,
    validate_events,
    validate_events_file,
)


def make_event(epoch=0, **overrides):
    kwargs = dict(
        epoch=epoch,
        loss=1.5,
        train_accuracy=0.4,
        wall_time_s=0.01,
        val_accuracy=0.35,
        grad_norms={"0": {"weight": 0.1, "bias": 0.01, "h_in": 0.2}},
        weight_norms={"0": {"weight": 1.0, "bias": 0.1}},
        sparsity={"0": 0.0, "1": 0.62},
        compression={
            "realized_dram_bytes_saved": 0.0,
            "predicted_dram_bytes_saved": 1024.0,
        },
    )
    kwargs.update(overrides)
    return EpochEvent(**kwargs)


class TestEventLog:
    def test_header_then_epochs(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path, meta={"dataset": "products"}) as log:
            log.emit(make_event(0))
            log.emit(make_event(1))
        header, records = read_events(path)
        assert header["kind"] == "events_header"
        assert header["schema"] == EVENTS_SCHEMA_VERSION
        assert header["run"]["dataset"] == "products"
        assert [r["epoch"] for r in records] == [0, 1]

    def test_each_emit_flushed(self, tmp_path):
        # The log must be readable mid-run: a killed run keeps its prefix.
        path = str(tmp_path / "run.jsonl")
        log = EventLog(path)
        log.emit(make_event(0))
        header, records = read_events(path)  # log still open
        assert len(records) == 1
        log.close()

    def test_in_memory_buffer_and_len(self, tmp_path):
        log = EventLog(str(tmp_path / "run.jsonl"))
        assert len(log) == 0
        log.emit(make_event(0))
        assert len(log) == 1
        assert log.events[0]["kind"] == "epoch"
        log.close()

    def test_pathless_log_buffers_only(self):
        log = EventLog(None)
        log.emit(make_event(0))
        assert len(log) == 1
        log.close()

    def test_nan_survives_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path) as log:
            log.emit(make_event(0, loss=float("nan")))
        _, records = read_events(path)
        assert math.isnan(records[0]["loss"])

    def test_not_an_event_log(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text(json.dumps({"kind": "trace_header"}) + "\n")
        with pytest.raises(ValueError, match="events_header"):
            read_events(str(path))

    def test_truncated_final_line_tolerated(self, tmp_path):
        # A run killed mid-write leaves a partial last line; the reader
        # must return the complete prefix instead of raising.
        path = str(tmp_path / "run.jsonl")
        with EventLog(path) as log:
            log.emit(make_event(0))
            log.emit(make_event(1))
        with open(path, "a") as handle:
            handle.write('{"kind": "epoch", "epo')  # no newline, cut JSON
        header, records = read_events(path)
        assert [r["epoch"] for r in records] == [0, 1]

    def test_malformed_middle_line_still_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path) as log:
            log.emit(make_event(0))
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(make_event(1).to_record()) + "\n")
        with pytest.raises(ValueError, match="line 3"):
            read_events(path)


class TestEventTail:
    def test_incremental_reads(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = EventLog(path, meta={"dataset": "t"})
        log.emit(make_event(0))
        tail = EventTail(path)
        assert [e["epoch"] for e in tail.read_new()] == [0]
        assert tail.header["run"]["dataset"] == "t"
        assert tail.read_new() == []
        log.emit(make_event(1))
        log.emit(make_event(2))
        assert [e["epoch"] for e in tail.read_new()] == [1, 2]
        log.close()

    def test_missing_file_yields_nothing(self, tmp_path):
        tail = EventTail(str(tmp_path / "missing.jsonl"))
        assert tail.read_new() == []
        assert tail.header is None

    def test_partial_line_deferred_until_complete(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path) as log:
            log.emit(make_event(0))
        tail = EventTail(path)
        assert len(tail.read_new()) == 1
        record = json.dumps(make_event(1).to_record())
        with open(path, "a") as handle:
            handle.write(record[:10])  # partial write, no newline
            handle.flush()
        assert tail.read_new() == []  # incomplete line not consumed
        with open(path, "a") as handle:
            handle.write(record[10:] + "\n")
        assert [e["epoch"] for e in tail.read_new()] == [1]

    def test_file_appearing_late(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        tail = EventTail(path)
        assert tail.read_new() == []
        with EventLog(path) as log:
            log.emit(make_event(0))
        assert [e["epoch"] for e in tail.read_new()] == [0]


class TestValidation:
    def test_valid_record_passes(self):
        assert validate_epoch_event(make_event().to_record()) == []

    def test_nan_values_are_valid(self):
        record = make_event(
            loss=float("nan"), sparsity={"0": float("nan")}
        ).to_record()
        assert validate_epoch_event(record) == []

    def test_missing_field(self):
        record = make_event().to_record()
        del record["sparsity"]
        assert any("sparsity" in p for p in validate_epoch_event(record))

    def test_bad_epoch_and_sparsity_range(self):
        record = make_event().to_record()
        record["epoch"] = -1
        record["sparsity"] = {"0": 1.5}
        problems = validate_epoch_event(record)
        assert any("epoch" in p for p in problems)
        assert any("sparsity[0]" in p for p in problems)

    def test_missing_compression_key(self):
        record = make_event(compression={"realized_dram_bytes_saved": 1.0}).to_record()
        assert any("predicted_dram_bytes_saved" in p
                   for p in validate_epoch_event(record))

    def test_validate_events_collects_all_problems(self):
        good = make_event(0).to_record()
        bad = make_event(1).to_record()
        del bad["loss"]
        with pytest.raises(ValueError, match="record 1"):
            validate_events([good, bad])

    def test_validate_events_checks_header(self):
        with pytest.raises(ValueError, match="header"):
            validate_events([], header={"kind": "events_header", "schema": 99})

    def test_validate_events_file(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path, meta={"k": 1}) as log:
            log.emit(make_event(0))
        header, records = validate_events_file(path)
        assert header["run"] == {"k": 1}
        assert len(records) == 1
