"""End-to-end learning: the full-batch GCN recovers planted communities."""

import numpy as np
import pytest

from repro.graphs import planted_partition_graph
from repro.nn import Adam, Trainer, accuracy, build_model, train_val_split


@pytest.fixture(scope="module")
def task():
    graph, labels = planted_partition_graph(
        240, num_classes=4, p_in=0.10, p_out=0.006, seed=11
    )
    rng = np.random.default_rng(11)
    features = rng.standard_normal((240, 12)).astype(np.float32)
    return graph, features, labels


def _mlp_baseline_accuracy(features, labels, train_mask, val_mask, seed=0):
    """A graph-free logistic baseline: features alone carry no signal,
    so the GNN's advantage must come from the structure."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((features.shape[1], labels.max() + 1)).astype(np.float32)
    w *= 0.1
    for _ in range(60):
        logits = features @ w
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        grad_logits = probs
        grad_logits[np.arange(len(labels)), labels] -= 1
        grad_logits[~train_mask] = 0
        w -= 0.5 * features.T @ grad_logits / train_mask.sum()
    return accuracy(features @ w, labels, mask=val_mask)


class TestCommunityRecovery:
    def test_gcn_beats_structure_free_baseline(self, task):
        graph, features, labels = task
        train_mask, val_mask = train_val_split(240, 0.5, seed=1)
        model = build_model("gcn", 12, 32, 4, num_layers=2, seed=1)
        trainer = Trainer(model, Adam(model, lr=0.02))
        trainer.fit(graph, features, labels, epochs=80, train_mask=train_mask)
        logits = model.predict(graph, features)
        gcn_val = accuracy(logits, labels, mask=val_mask)
        baseline_val = _mlp_baseline_accuracy(
            features, labels, train_mask, val_mask
        )
        assert gcn_val > baseline_val + 0.1
        assert gcn_val > 0.45  # chance is 0.25

    def test_sage_learns_too(self, task):
        graph, features, labels = task
        model = build_model("sage", 12, 32, 4, num_layers=2, seed=2)
        trainer = Trainer(model, Adam(model, lr=0.02))
        history = trainer.fit(graph, features, labels, epochs=60)
        assert history.final_accuracy > 0.5

    def test_deeper_model_trains_stably(self, task):
        graph, features, labels = task
        model = build_model("gcn", 12, 24, 4, num_layers=3, dropout=0.3, seed=3)
        trainer = Trainer(model, Adam(model, lr=0.01))
        history = trainer.fit(graph, features, labels, epochs=30)
        assert np.isfinite(history.final_loss)
        assert history.epochs[-1].loss < history.epochs[0].loss
