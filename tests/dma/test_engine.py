"""Unit tests for the DMA engine's Algorithm-4 execution."""

import numpy as np
import pytest

from repro.dma import (
    AggregationDescriptor,
    BinOp,
    DmaAddressSpace,
    DmaEngine,
    DmaError,
    RedOp,
    STATUS_ERROR,
    STATUS_OK,
)
from repro.sim import MemoryHierarchy


def _setup_space(values, indices, factors, out_len):
    """Register input/index/factor/output/status arrays at fixed bases."""
    space = DmaAddressSpace()
    arrays = {
        "in": np.asarray(values, dtype=np.float32).reshape(-1),
        "idx": np.asarray(indices, dtype=np.int64),
        "factor": np.asarray(factors, dtype=np.float32),
        "out": np.zeros(out_len, dtype=np.float32),
        "status": np.zeros(8, dtype=np.int64),
    }
    bases = {"in": 0x1000_0000, "idx": 0x2000_0000, "factor": 0x3000_0000,
             "out": 0x4000_0000, "status": 0x5000_0000}
    for key, arr in arrays.items():
        space.register(bases[key], arr)
    return space, arrays, bases


def _descriptor(bases, e, n, stride_bytes, **kw):
    return AggregationDescriptor(
        num_values=e,
        num_blocks=n,
        padded_block_bytes=stride_bytes,
        idx_addr=bases["idx"],
        in_addr=bases["in"],
        out_addr=bases["out"],
        factor_addr=bases["factor"],
        status_addr=bases["status"],
        **kw,
    )


class TestAlgorithm4:
    def test_weighted_sum(self):
        """red_op=SUM, bin_op=MUL performs the ψ-scaled reduction."""
        features = np.arange(12, dtype=np.float32).reshape(3, 4)  # rows 0..2
        space, arrays, bases = _setup_space(features, [0, 2], [2.0, 0.5], 4)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=4, n=2, stride_bytes=16,
                           red_op=RedOp.SUM, bin_op=BinOp.MUL)
        assert engine.execute(desc) == STATUS_OK
        expected = features[0] * 2.0 + features[2] * 0.5
        np.testing.assert_allclose(arrays["out"], expected, rtol=1e-6)
        assert arrays["status"][0] == STATUS_OK

    def test_plain_sum_without_binop(self):
        features = np.ones((4, 2), dtype=np.float32)
        space, arrays, bases = _setup_space(features, [0, 1, 3], [0, 0, 0], 2)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=2, n=3, stride_bytes=8,
                           red_op=RedOp.SUM, bin_op=BinOp.NONE)
        engine.execute(desc)
        np.testing.assert_allclose(arrays["out"], 3.0)

    def test_max_reduction(self):
        features = np.array([[1, 9], [5, 2], [3, 3]], dtype=np.float32)
        space, arrays, bases = _setup_space(features, [0, 1, 2], [0] * 3, 2)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=2, n=3, stride_bytes=8, red_op=RedOp.MAX)
        engine.execute(desc)
        np.testing.assert_allclose(arrays["out"], [5, 9])

    def test_min_reduction(self):
        features = np.array([[1, 9], [5, 2]], dtype=np.float32)
        space, arrays, bases = _setup_space(features, [0, 1], [0, 0], 2)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=2, n=2, stride_bytes=8, red_op=RedOp.MIN)
        engine.execute(desc)
        np.testing.assert_allclose(arrays["out"], [1, 2])

    def test_add_binop(self):
        features = np.zeros((2, 2), dtype=np.float32)
        space, arrays, bases = _setup_space(features, [0, 1], [1.5, 2.5], 2)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=2, n=2, stride_bytes=8,
                           red_op=RedOp.SUM, bin_op=BinOp.ADD)
        engine.execute(desc)
        np.testing.assert_allclose(arrays["out"], 4.0)

    def test_partial_row_with_padding(self):
        """E < stride elements: gathers only the leading piece (the
        Section 5.2 splitting primitive)."""
        features = np.arange(8, dtype=np.float32).reshape(2, 4)
        space, arrays, bases = _setup_space(features, [1], [1.0], 2)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=2, n=1, stride_bytes=16, bin_op=BinOp.MUL)
        engine.execute(desc)
        np.testing.assert_allclose(arrays["out"][:2], features[1, :2])

    def test_zero_blocks_writes_zeros(self):
        space, arrays, bases = _setup_space(np.zeros(4, np.float32), [], [], 4)
        arrays["out"][:] = 5.0
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=4, n=0, stride_bytes=16)
        assert engine.execute(desc) == STATUS_OK
        np.testing.assert_allclose(arrays["out"], 0.0)


class TestResourceLimits:
    def test_output_buffer_overflow_raises(self):
        space, arrays, bases = _setup_space(
            np.zeros(1024, np.float32), [0], [1.0], 600
        )
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=600, n=1, stride_bytes=2400)
        with pytest.raises(DmaError):
            engine.execute(desc)

    def test_max_e_fits_output_buffer(self):
        space, arrays, bases = _setup_space(
            np.zeros(512, np.float32), [0], [1.0], 512
        )
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=512, n=1, stride_bytes=2048)
        assert engine.execute(desc) == STATUS_OK


class TestFailureHandling:
    def test_bad_address_sets_error_status(self):
        space, arrays, bases = _setup_space(np.zeros(4, np.float32), [0], [1.0], 4)
        engine = DmaEngine(0, address_space=space)
        desc = _descriptor(bases, e=4, n=1, stride_bytes=16)
        bad = AggregationDescriptor(
            num_values=4, num_blocks=1, padded_block_bytes=16,
            idx_addr=0xDEAD_0000, in_addr=bases["in"], out_addr=bases["out"],
            factor_addr=bases["factor"], status_addr=bases["status"],
        )
        assert engine.execute(bad) == STATUS_ERROR
        assert arrays["status"][0] == STATUS_ERROR
        assert engine.stats.descriptors_failed == 1


class TestAddressSpace:
    def test_overlap_rejected(self):
        space = DmaAddressSpace()
        space.register(0, np.zeros(16, np.float32))
        with pytest.raises(ValueError):
            space.register(32, np.zeros(16, np.float32))

    def test_unmapped_address(self):
        space = DmaAddressSpace()
        with pytest.raises(KeyError):
            space.resolve(0x1234)

    def test_misaligned_address(self):
        space = DmaAddressSpace()
        space.register(0, np.zeros(16, np.float32))
        with pytest.raises(ValueError):
            space.resolve(2)


class TestTimingPlane:
    def test_fetch_lines_bypasses_private(self):
        hierarchy = MemoryHierarchy(cache_scale=0.05)
        engine = DmaEngine(0)
        counts = engine.fetch_lines(hierarchy, [0], [64], [128, 192], [256])
        assert hierarchy.l1[0].stats.accesses == 0
        assert counts["touched_lines"] == 4
        assert engine.stats.output_lines_written == 1

    def test_outputs_installed_in_l2(self):
        hierarchy = MemoryHierarchy(cache_scale=0.05)
        engine = DmaEngine(0)
        engine.fetch_lines(hierarchy, [], [], [], [0x8000])
        assert hierarchy.access(0, 0x8000).level == "L2"

    def test_batch_time_decreases_with_entries(self):
        from repro.sim import DramModel

        dram = DramModel()
        engine = DmaEngine(0)
        t8 = engine.batch_time_cycles(dram, 1000, 1200, tracking_entries=8)
        t32 = engine.batch_time_cycles(dram, 1000, 1200, tracking_entries=32)
        assert t32 < t8

    def test_invalid_entries(self):
        from repro.sim import DramModel

        engine = DmaEngine(0)
        with pytest.raises(ValueError):
            engine.batch_time_cycles(DramModel(), 10, 10, tracking_entries=0)
