"""Trace-driven hardware simulation: caches, DRAM, core-side aggregation."""

from .cache import CacheStats, SetAssociativeCache
from .core_sim import (
    CORE_EFFECTIVE_MLP,
    CORE_ISSUE_CYCLES_PER_LINE,
    CoreAggregationSim,
    SimReport,
    multicore_service_time,
)
from .dram import DramModel, DramStats, batch_service_time
from .noc import MeshNoc
from .prefetcher import PrefetchStats, StreamPrefetcher, gather_trace_coverage
from .hierarchy import (
    AccessResult,
    L1_LATENCY,
    L2_LATENCY,
    L3_LATENCY,
    MemoryHierarchy,
)
from .trace import MemoryLayout, VertexTrace, iter_traces, layout_for, vertex_trace

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "CORE_EFFECTIVE_MLP",
    "CORE_ISSUE_CYCLES_PER_LINE",
    "CoreAggregationSim",
    "SimReport",
    "multicore_service_time",
    "DramModel",
    "DramStats",
    "batch_service_time",
    "AccessResult",
    "L1_LATENCY",
    "L2_LATENCY",
    "L3_LATENCY",
    "MemoryHierarchy",
    "MeshNoc",
    "PrefetchStats",
    "StreamPrefetcher",
    "gather_trace_coverage",
    "MemoryLayout",
    "VertexTrace",
    "iter_traces",
    "layout_for",
    "vertex_trace",
]
