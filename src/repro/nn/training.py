"""Full-batch training and inference loops.

The paper's headline setting: "full-batch computation on large graphs"
with no sampling or mini-batching (Sections 1 and 3).  Every epoch runs
one forward pass over all vertices, one loss, one backward pass, and one
optimizer step.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import AggregationKernel, KernelStats
from ..obs import get_metrics, get_tracer
from ..tensors.compression import traffic_saved
from ..tensors.sparsity import SparsityProfile, sparsity as sparsity_of
from . import functional as F
from .model import GNNModel
from .optim import Optimizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.events import EventLog
    from ..obs.health import HealthMonitor
    from ..obs.rules import RuleEngine

logger = logging.getLogger(__name__)

#: Bytes per dense float32 feature element (compression-savings model).
_BYTES_PER_FEATURE = 4


@dataclass
class EpochResult:
    """Loss/accuracy record for one training epoch."""

    epoch: int
    loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """All epoch records plus the sparsity profile of hidden features."""

    epochs: List[EpochResult] = field(default_factory=list)
    sparsity: SparsityProfile = field(default_factory=SparsityProfile)
    #: Work counters merged from every forward aggregation that ran on an
    #: optimized kernel (empty when training uses the SpMM oracle).
    aggregation_stats: KernelStats = field(default_factory=KernelStats)
    #: Work counters merged from every *backward* aggregation that ran on
    #: an optimized kernel (empty when backward uses the SpMM fallback).
    backward_stats: KernelStats = field(default_factory=KernelStats)

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def final_accuracy(self) -> float:
        # NaN, like final_loss: an empty history has no accuracy, and 0.0
        # would read as "the model learned nothing" in reports.
        return self.epochs[-1].train_accuracy if self.epochs else float("nan")

    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]


class Trainer:
    """Full-batch trainer for :class:`GNNModel`.

    Args:
        model: the GNN to train.
        optimizer: parameter update rule.
        profile_sparsity: record per-layer input sparsity each epoch —
            the Section 2.2 measurement that motivates feature compression.
        aggregation_kernel: optional optimized execution strategy (e.g. a
            ``BasicKernel`` on a multi-worker ``ChunkExecutor``) used for
            every forward aggregation — and, when the kernel provides
            ``aggregate_backward`` (the cached-CSC batched backward of
            :class:`~repro.kernels.BasicKernel`), for every backward
            aggregation too.
        engine: chunk-execution engine (``"loop"`` or ``"batched"``).
            When given without a kernel, forward aggregation runs on a
            default :class:`~repro.kernels.BasicKernel` using it; when a
            kernel is given too, the kernel's engine is overridden.
        backward_engine: route the backward aggregation through the
            kernel as well (the default).  ``False`` keeps backward on
            the transpose-SpMM fallback that rebuilds Â per call — the
            pre-batched-backward configuration, kept as a benchmark
            baseline and differential-testing aid.
        event_log: optional :class:`~repro.obs.events.EventLog`; every
            ``train_epoch`` emits one streaming epoch record (loss,
            accuracies, per-layer grad/weight norms, per-layer sparsity,
            realized vs predicted compression savings, wall time).
        health: optional :class:`~repro.obs.health.HealthMonitor`; the
            epoch's numerics are checked as they are produced and a
            fail-fast monitor raises within one epoch of a NaN/Inf.
        rules: optional :class:`~repro.obs.rules.RuleEngine`; evaluated
            once per epoch against the registry snapshot (after this
            epoch's ``train.*`` gauges are published), so declarative
            SLOs like ``train.loss rate_of_change <= 0 for 3`` or
            ``proc.rss_bytes < 2e9`` fire online.  Violations surface as
            ``alerts.*`` metrics and ``slo:<rule>`` entries in the
            epoch's event record.

    With all of them left at ``None`` (the default) ``train_epoch``
    takes the existing zero-cost path: no norms, no sparsity
    measurements, no event construction, no gauge publishing.
    """

    def __init__(
        self,
        model: GNNModel,
        optimizer: Optimizer,
        profile_sparsity: bool = False,
        aggregation_kernel: Optional[AggregationKernel] = None,
        engine: Optional[str] = None,
        backward_engine: bool = True,
        event_log: Optional["EventLog"] = None,
        health: Optional["HealthMonitor"] = None,
        rules: Optional["RuleEngine"] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.profile_sparsity = profile_sparsity
        self.backward_engine = backward_engine
        self.event_log = event_log
        self.health = health
        self.rules = rules
        if engine is not None:
            from ..kernels.base import resolve_engine

            engine = resolve_engine(engine)
            if aggregation_kernel is None:
                from ..kernels.basic import BasicKernel

                aggregation_kernel = BasicKernel(engine=engine)
            elif hasattr(aggregation_kernel, "engine"):
                aggregation_kernel.engine = engine
            else:
                raise ValueError(
                    f"kernel {aggregation_kernel!r} has no engine knob"
                )
        self.engine = engine
        self.aggregation_kernel = aggregation_kernel
        self.history = TrainingHistory()

    def train_epoch(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
    ) -> EpochResult:
        """One forward + backward + step over the whole graph.

        With an event log or health monitor attached, the epoch
        additionally captures per-layer grad/weight norms, per-layer
        input sparsity, and realized-vs-predicted compression traffic
        savings; without them no extra work happens.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        observing = self.event_log is not None or self.health is not None
        # The live plane (train.* gauges + SLO rules) rides along when a
        # registry is active or rules are attached; one perf_counter()
        # read is the whole added cost on that path, zero otherwise.
        timing = observing or metrics.enabled or self.rules is not None
        epoch_index = len(self.history.epochs)
        start_s = time.perf_counter() if timing else 0.0
        with tracer.span("epoch", epoch=epoch_index) as span:
            logits, caches = self.model.forward(
                graph, features, training=True, kernel=self.aggregation_kernel
            )
            for cache in caches:
                if cache.agg_stats is not None:
                    self.history.aggregation_stats.merge(cache.agg_stats)
            layer_sparsity: "dict[int, float]" = {}
            if self.profile_sparsity or observing:
                for layer_idx, cache in enumerate(caches):
                    layer_sparsity[layer_idx] = sparsity_of(cache.h_in)
                if self.profile_sparsity:
                    for layer_idx, value in layer_sparsity.items():
                        self.history.sparsity.add(layer_idx, value)
            loss, grad = F.cross_entropy(logits, labels, mask=train_mask)
            with tracer.span("backward"):
                grads = self.model.backward(
                    graph,
                    grad,
                    caches,
                    kernel=(
                        self.aggregation_kernel if self.backward_engine else None
                    ),
                )
            for layer_grads in grads:
                if layer_grads.agg_stats is not None:
                    self.history.backward_stats.merge(layer_grads.agg_stats)
            self.optimizer.step(grads)
            result = EpochResult(
                epoch=epoch_index,
                loss=loss,
                train_accuracy=F.accuracy(logits, labels, mask=train_mask),
                val_accuracy=(
                    F.accuracy(logits, labels, mask=val_mask)
                    if val_mask is not None
                    else None
                ),
            )
            span.set_attr("loss", float(loss))
            span.set_attr("train_accuracy", result.train_accuracy)
            wall_time_s = time.perf_counter() - start_s if timing else 0.0
            slo_issues: List[str] = []
            if metrics.enabled or self.rules is not None:
                slo_issues = self._publish_live(metrics, result, wall_time_s)
            if observing:
                self._observe_epoch(
                    graph, result, logits, grads, caches, layer_sparsity,
                    wall_time_s, slo_issues,
                )
        self.history.epochs.append(result)
        logger.debug(
            "epoch %d: loss %.4f train-acc %.3f",
            result.epoch,
            result.loss,
            result.train_accuracy,
        )
        return result

    def _publish_live(
        self, metrics, result: EpochResult, wall_time_s: float
    ) -> List[str]:
        """Publish this epoch's ``train.*`` plane and run the SLO rules.

        The gauges make the loss/accuracy trajectory scrapable through a
        live :class:`~repro.obs.live.MetricsServer`; the rule engine is
        then evaluated against the full registry snapshot (so one rule
        file can mix ``train.*``, ``proc.*``, and ``kernel.*`` terms).
        Returns the fired rules as ``slo:<name>`` issue strings for the
        epoch's event record.
        """
        if metrics.enabled:
            metrics.set_gauge("train.epoch", float(result.epoch))
            metrics.set_gauge("train.loss", float(result.loss))
            metrics.set_gauge(
                "train.train_accuracy", float(result.train_accuracy)
            )
            if result.val_accuracy is not None:
                metrics.set_gauge(
                    "train.val_accuracy", float(result.val_accuracy)
                )
            metrics.set_gauge("train.wall_time_s", wall_time_s)
            metrics.observe("train.epoch_time_s", wall_time_s)
        if self.rules is None:
            return []
        if metrics.enabled:
            snapshot = metrics.snapshot()
        else:  # rules without a live registry still see the train.* plane
            snapshot = {
                "train.epoch": {"type": "gauge", "value": float(result.epoch)},
                "train.loss": {"type": "gauge", "value": float(result.loss)},
                "train.train_accuracy": {
                    "type": "gauge", "value": float(result.train_accuracy),
                },
                "train.wall_time_s": {"type": "gauge", "value": wall_time_s},
            }
            if result.val_accuracy is not None:
                snapshot["train.val_accuracy"] = {
                    "type": "gauge", "value": float(result.val_accuracy),
                }
        alerts = self.rules.evaluate(snapshot)
        for alert in alerts:
            logger.warning("slo: %s", alert.message)
        return [f"slo:{alert.rule}" for alert in alerts]

    def _observe_epoch(
        self,
        graph: CSRGraph,
        result: EpochResult,
        logits: np.ndarray,
        grads,
        caches,
        layer_sparsity: "dict[int, float]",
        wall_time_s: float,
        slo_issues: Optional[List[str]] = None,
    ) -> None:
        """Build and publish this epoch's event/health telemetry.

        Only called when an event log or health monitor is attached;
        raises :class:`~repro.obs.health.HealthError` from a fail-fast
        monitor *after* the (possibly NaN'd) event record is written, so
        the log keeps the evidence of the epoch that failed.
        """
        from ..obs.events import EpochEvent
        from ..obs.health import HealthError

        grad_norms = GNNModel.grad_norms(grads)
        weight_norms = self.model.weight_norms()
        compression = self._compression_savings(graph, caches, layer_sparsity)
        health_error: Optional[HealthError] = None
        issues: List[str] = list(slo_issues or [])
        if self.health is not None:
            try:
                found = self.health.check_epoch(
                    result.epoch,
                    result.loss,
                    logits=logits,
                    grad_norms=grad_norms,
                    weight_norms=weight_norms,
                )
            except HealthError as error:
                health_error = error
                found = error.issues
            issues = [issue.kind for issue in found]
        if self.event_log is not None:
            self.event_log.emit(
                EpochEvent(
                    epoch=result.epoch,
                    loss=float(result.loss),
                    train_accuracy=float(result.train_accuracy),
                    val_accuracy=(
                        float(result.val_accuracy)
                        if result.val_accuracy is not None
                        else None
                    ),
                    wall_time_s=wall_time_s,
                    grad_norms=grad_norms,
                    weight_norms=weight_norms,
                    sparsity={
                        str(layer): value
                        for layer, value in sorted(layer_sparsity.items())
                    },
                    compression=compression,
                    health_issues=issues,
                )
            )
        if health_error is not None:
            raise health_error

    @staticmethod
    def _compression_savings(
        graph: CSRGraph, caches, layer_sparsity: "dict[int, float]"
    ) -> "dict[str, float]":
        """Realized vs cost-model-predicted DRAM savings this epoch.

        *Realized* sums the ``dram_bytes_saved`` the (compressed)
        kernels actually counted; *predicted* applies the Section 4.3
        traffic model — ``gathers x row_bytes x traffic_saved(s)`` — to
        each layer's measured sparsity.  Both count per gather with no
        cache model, so they are directly comparable; a run on an
        uncompressed kernel has realized 0 and the predicted number is
        what compression *would* have saved (the §2.2 motivation).
        """
        realized = 0.0
        predicted = 0.0
        default_gathers = graph.num_edges + graph.num_vertices
        for layer_idx, cache in enumerate(caches):
            stats = cache.agg_stats
            gathers = stats.gathers if stats is not None else default_gathers
            if stats is not None:
                realized += stats.dram_bytes_saved
            row_bytes = cache.h_in.shape[1] * _BYTES_PER_FEATURE
            predicted += (
                gathers * row_bytes * traffic_saved(layer_sparsity[layer_idx])
            )
        return {
            "realized_dram_bytes_saved": realized,
            "predicted_dram_bytes_saved": predicted,
        }

    def fit(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for a fixed number of epochs."""
        for _ in range(epochs):
            result = self.train_epoch(
                graph, features, labels, train_mask=train_mask, val_mask=val_mask
            )
            if verbose:
                # Through the logging layer, not print(): the CLI raises
                # this module's logger to INFO so `repro train` still
                # shows the lines, and library users keep control.
                msg = (
                    f"epoch {result.epoch:>3}  loss {result.loss:.4f}  "
                    f"train-acc {result.train_accuracy:.3f}"
                )
                if result.val_accuracy is not None:
                    msg += f"  val-acc {result.val_accuracy:.3f}"
                logger.info("%s", msg)
        return self.history


def inference(
    model: GNNModel,
    graph: CSRGraph,
    features: np.ndarray,
    kernel: Optional[AggregationKernel] = None,
) -> np.ndarray:
    """Full-batch inference: logits for every vertex."""
    return model.predict(graph, features, kernel=kernel)


def train_val_split(
    num_vertices: int, train_fraction: float = 0.6, seed: int = 0
) -> "tuple[np.ndarray, np.ndarray]":
    """Random boolean train/val masks over the vertex set."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_vertices)
    cut = int(num_vertices * train_fraction)
    train_mask = np.zeros(num_vertices, dtype=bool)
    val_mask = np.zeros(num_vertices, dtype=bool)
    train_mask[order[:cut]] = True
    val_mask[order[cut:]] = True
    return train_mask, val_mask
