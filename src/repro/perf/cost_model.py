"""Analytical cost model: byte counts + machine model -> phase times.

This is the *time plane* for the software evaluation (Figures 11, 13, 14,
15 and Tables 3-4).  It converts the exact traffic counts of
:mod:`repro.perf.traffic` into seconds using the machine constants of
:mod:`repro.perf.machine`, with three structural rules taken straight
from the paper:

1. unfused execution serializes the memory-bound aggregation and the
   compute-bound update (Figure 5a): ``t = t_agg + t_upd``;
2. fused execution overlaps them (Figure 4): ``t = max(t_mem, t_cpu)``
   plus a small residual for the imperfect natural overlap;
3. gather hit rates come from the reuse-distance profile of the actual
   processing order on the actual graph, evaluated at the machine's
   scaled cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.datasets import PAPER_HIDDEN_FEATURES, SPECS
from ..graphs.reorder import locality_order, natural_order, randomized_order
from .machine import MachineConfig, cascade_lake_28
from .reuse import ReuseProfile, reuse_profile
from .traffic import (
    LayerShape,
    PhaseTraffic,
    aggregation_traffic,
    backward_traffic,
    decompress_elements,
    update_traffic,
)

#: Sustained fraction of peak FLOPs the scalar-ish aggregation loop reaches
#: (gathers and reductions, not FMA-dense).
AGGREGATION_COMPUTE_EFFICIENCY = 0.20

#: Residual serialization when fusing: the fraction of the shorter phase
#: not hidden by the natural (unsynchronized) overlap of Figure 4.
FUSION_OVERLAP_RESIDUAL = 0.08


@dataclass(frozen=True)
class VariantSpec:
    """One execution strategy from the paper's evaluation."""

    name: str
    fused: bool = False
    compressed: bool = False
    order: str = "natural"  # natural | locality | randomized
    bw_efficiency_key: str = "stream_bw_efficiency"

    def bw_efficiency(self, machine: MachineConfig) -> float:
        return getattr(machine, self.bw_efficiency_key)


VARIANTS: Dict[str, VariantSpec] = {
    "distgnn": VariantSpec("distgnn", bw_efficiency_key="baseline_bw_efficiency"),
    "mkl": VariantSpec("mkl", bw_efficiency_key="mkl_bw_efficiency"),
    "basic": VariantSpec("basic"),
    "fusion": VariantSpec("fusion", fused=True),
    "compression": VariantSpec("compression", compressed=True),
    "combined": VariantSpec("combined", fused=True, compressed=True),
    "c-locality": VariantSpec(
        "c-locality", fused=True, compressed=True, order="locality"
    ),
    "f-locality": VariantSpec("f-locality", fused=True, order="locality"),
    "randomized": VariantSpec(
        "randomized", fused=True, compressed=True, order="randomized"
    ),
}


@dataclass
class PhaseTimes:
    """Timing decomposition of one layer pass."""

    aggregation: float
    update: float
    total: float
    memory_time: float
    compute_time: float
    dram_bytes: float
    flops: float

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of the pass spent limited by memory."""
        if self.total <= 0:
            return 0.0
        return min(1.0, self.memory_time / self.total)


@dataclass
class WorkloadTimes:
    """End-to-end times for an inference pass or a training epoch."""

    variant: str
    layer_times: Tuple[PhaseTimes, ...]
    backward_times: Tuple[PhaseTimes, ...] = ()

    @property
    def total(self) -> float:
        forward = sum(t.total for t in self.layer_times)
        backward = sum(t.total for t in self.backward_times)
        return forward + backward

    @property
    def dram_bytes(self) -> float:
        return sum(t.dram_bytes for t in self.layer_times) + sum(
            t.dram_bytes for t in self.backward_times
        )

    @property
    def flops(self) -> float:
        return sum(t.flops for t in self.layer_times) + sum(
            t.flops for t in self.backward_times
        )


def scaled_capacity_vectors(
    machine: MachineConfig,
    dataset_name: str,
    num_vertices: int,
    mean_degree: float = 16.0,
) -> float:
    """Cache capacity in feature vectors, scaled to a twin graph.

    The paper graph's feature matrix is ``paper_vertices * 256 * 4`` bytes;
    the machine caches hold ``feature_cache_bytes``.  Keeping the ratio
    constant, the twin's capacity is the same *fraction of vertices*.

    The result is floored at a few adjacency lists: reuse granularity is
    one vertex's neighborhood, and neighborhood size does not shrink when
    the graph is scaled down, so a capacity below ~2.5x the mean degree
    would under-represent even the degree-granular reuse the real machine
    always captures.
    """
    spec = SPECS.get(dataset_name)
    if spec is None:
        # Unknown graph: fall back to the products ratio.
        spec = SPECS["products"]
    paper_matrix = spec.paper_vertices * 1e6 * PAPER_HIDDEN_FEATURES * 4.0
    fraction = machine.feature_cache_bytes / paper_matrix
    return max(2.5 * mean_degree, fraction * num_vertices)


class CostModel:
    """Per-graph cost model shared by the figure-11/13/14/15 benches.

    Args:
        graph: the (twin) input graph.
        machine: platform model; defaults to the paper's 28-core server.
        capacity_vectors: gather-cache capacity in feature vectors; when
            None it is derived from the graph name via
            :func:`scaled_capacity_vectors`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        machine: Optional[MachineConfig] = None,
        capacity_vectors: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.machine = machine or cascade_lake_28()
        if capacity_vectors is None:
            mean_degree = float(graph.num_edges / max(1, graph.num_vertices))
            capacity_vectors = scaled_capacity_vectors(
                self.machine, graph.name, graph.num_vertices, mean_degree
            )
        self.capacity_vectors = capacity_vectors
        self._profiles: Dict[str, ReuseProfile] = {}

    # ------------------------------------------------------------------
    # Reuse / hit rates
    # ------------------------------------------------------------------
    def _order_array(self, order: str, seed: int = 0) -> np.ndarray:
        if order == "natural":
            return natural_order(self.graph)
        if order == "locality":
            return locality_order(self.graph)
        if order == "randomized":
            return randomized_order(self.graph, seed=seed)
        raise ValueError(f"unknown order {order!r}")

    def profile(self, order: str, seed: int = 0) -> ReuseProfile:
        key = f"{order}:{seed}" if order == "randomized" else order
        if key not in self._profiles:
            self._profiles[key] = reuse_profile(
                self.graph, self._order_array(order, seed)
            )
        return self._profiles[key]

    def hit_rate(self, order: str, seed: int = 0) -> float:
        return self.profile(order, seed).hit_rate(self.capacity_vectors)

    # ------------------------------------------------------------------
    # Phase timing primitives
    # ------------------------------------------------------------------
    def _aggregation_compute_time(
        self, traffic: PhaseTraffic, shape: LayerShape
    ) -> float:
        machine = self.machine
        return traffic.flops / (machine.peak_flops * AGGREGATION_COMPUTE_EFFICIENCY)

    def _expand_time(self, shape: LayerShape, compressed: bool) -> float:
        """Serial mask-expand cost of decompression.

        The expand instruction depends on the just-loaded mask and payload,
        so its latency adds to the gather critical path instead of hiding
        under it — which is why compression *loses* at low sparsity
        (Figure 14, 10% points).
        """
        machine = self.machine
        return decompress_elements(shape, compressed) / (
            machine.cores * machine.frequency_hz * machine.decompress_elements_per_cycle
        )

    def layer_forward(
        self,
        variant: VariantSpec,
        shape: LayerShape,
        sparsity: float = 0.0,
        training: bool = False,
        hit_rate: Optional[float] = None,
    ) -> PhaseTimes:
        """Time one layer's forward pass under a variant."""
        machine = self.machine
        if hit_rate is None:
            hit_rate = self.hit_rate(variant.order)
        bw_eff = variant.bw_efficiency(machine)
        write_a = training or not variant.fused
        agg = aggregation_traffic(
            shape,
            gather_hit_rate=hit_rate,
            feature_sparsity=sparsity,
            compressed=variant.compressed,
            write_a=write_a,
        )
        upd = update_traffic(
            shape,
            feature_sparsity=sparsity,
            compressed=variant.compressed,
            fused=variant.fused,
        )
        agg_cpu = self._aggregation_compute_time(agg, shape)
        expand = self._expand_time(shape, variant.compressed)
        if variant.fused:
            mem = machine.stream_time(agg.dram_total + upd.dram_total, bw_eff)
            cpu = agg_cpu + machine.gemm_time(upd.flops, small=True)
            total = max(mem, cpu) + FUSION_OVERLAP_RESIDUAL * min(mem, cpu) + expand
            return PhaseTimes(
                aggregation=max(machine.stream_time(agg.dram_total, bw_eff), agg_cpu)
                + expand,
                update=machine.gemm_time(upd.flops, small=True),
                total=total,
                memory_time=mem,
                compute_time=cpu + expand,
                dram_bytes=agg.dram_total + upd.dram_total,
                flops=agg.flops + upd.flops,
            )
        t_agg = max(machine.stream_time(agg.dram_total, bw_eff), agg_cpu) + expand
        t_upd = max(
            machine.stream_time(upd.dram_total, machine.stream_bw_efficiency),
            machine.gemm_time(upd.flops),
        )
        return PhaseTimes(
            aggregation=t_agg,
            update=t_upd,
            total=t_agg + t_upd,
            memory_time=machine.stream_time(agg.dram_total, bw_eff)
            + machine.stream_time(upd.dram_total, machine.stream_bw_efficiency),
            compute_time=agg_cpu + expand + machine.gemm_time(upd.flops),
            dram_bytes=agg.dram_total + upd.dram_total,
            flops=agg.flops + upd.flops,
        )

    def layer_backward(
        self,
        variant: VariantSpec,
        shape: LayerShape,
        sparsity: float = 0.0,
        hit_rate: Optional[float] = None,
        needs_input_grad: bool = True,
    ) -> PhaseTimes:
        """Time one layer's backward pass.

        Backward is not fused in the paper; variants differ through their
        gather efficiency, the processing order (locality helps the
        transposed aggregation too), and gradient-stream compression.

        ``needs_input_grad=False`` (the first layer: input features are
        not trainable) drops the transposed aggregation entirely.
        """
        machine = self.machine
        if hit_rate is None:
            hit_rate = self.hit_rate(variant.order)
        bw_eff = variant.bw_efficiency(machine)
        back = backward_traffic(
            shape,
            gather_hit_rate=hit_rate if needs_input_grad else 1.0,
            feature_sparsity=sparsity,
            compressed=variant.compressed,
        )
        if not needs_input_grad:
            # No dL/dh_in: remove the transposed gather and grad_h write.
            removed = back.notes["grad_gather"] + back.notes["grad_h_write"]
            back.dram_read -= back.notes["grad_gather"]
            back.dram_write -= back.notes["grad_h_write"]
            back.notes["grad_gather"] = 0.0
            back.notes["grad_h_write"] = 0.0
            back.flops -= 2.0 * shape.num_gathers * shape.f_in
            del removed
        gemm_flops = 2.0 * (2.0 * shape.num_vertices * shape.f_in * shape.f_out)
        agg_flops = back.flops - gemm_flops
        agg_share = back.notes["grad_gather"] + back.notes["grad_h_write"]
        mem_time = machine.stream_time(back.dram_total, bw_eff)
        cpu_time = machine.gemm_time(gemm_flops) + agg_flops / (
            machine.peak_flops * AGGREGATION_COMPUTE_EFFICIENCY
        )
        # Backward gathers grad_a, which is dense; only the sparse
        # grad_pre streams pass through mask expand/compress, a streaming
        # (prefetchable) cost far smaller than the forward gather expand.
        expand = 0.0
        if variant.compressed:
            expand = (2.0 * shape.num_vertices * shape.f_out) / (
                machine.cores
                * machine.frequency_hz
                * machine.decompress_elements_per_cycle
            )
        # Fused variants block the backward the same way (Algorithm 2
        # applies to both passes — "we apply these software-hardware
        # optimizations to both inference and training"), overlapping the
        # gradient GEMMs with the transposed gather.
        residual = FUSION_OVERLAP_RESIDUAL if variant.fused else 0.25
        total = max(mem_time, cpu_time) + residual * min(mem_time, cpu_time) + expand
        agg_time = total * (agg_share / back.dram_total if back.dram_total else 0.5)
        return PhaseTimes(
            aggregation=agg_time,
            update=total - agg_time,
            total=total,
            memory_time=mem_time,
            compute_time=cpu_time,
            dram_bytes=back.dram_total,
            flops=back.flops,
        )

    # ------------------------------------------------------------------
    # End-to-end workloads
    # ------------------------------------------------------------------
    def layer_shapes(self, f_input: int, f_hidden: int, num_layers: int = 2):
        """Layer shapes of the paper's evaluated network."""
        widths = [f_input] + [f_hidden] * num_layers
        return [
            LayerShape(
                num_vertices=self.graph.num_vertices,
                num_edges=self.graph.num_edges,
                f_in=widths[k],
                f_out=widths[k + 1],
            )
            for k in range(num_layers)
        ]

    def inference_time(
        self,
        variant_name: str,
        f_input: int,
        f_hidden: int,
        num_layers: int = 2,
        sparsity: float = 0.0,
        seed: int = 0,
    ) -> WorkloadTimes:
        variant = VARIANTS[variant_name]
        hit = self.hit_rate(variant.order, seed)
        layers = tuple(
            self.layer_forward(variant, shape, sparsity, training=False, hit_rate=hit)
            for shape in self.layer_shapes(f_input, f_hidden, num_layers)
        )
        return WorkloadTimes(variant=variant_name, layer_times=layers)

    def training_epoch_time(
        self,
        variant_name: str,
        f_input: int,
        f_hidden: int,
        num_layers: int = 2,
        sparsity: float = 0.0,
        seed: int = 0,
    ) -> WorkloadTimes:
        variant = VARIANTS[variant_name]
        hit = self.hit_rate(variant.order, seed)
        shapes = self.layer_shapes(f_input, f_hidden, num_layers)
        forward = tuple(
            self.layer_forward(variant, shape, sparsity, training=True, hit_rate=hit)
            for shape in shapes
        )
        backward = tuple(
            self.layer_backward(
                variant,
                shape,
                sparsity,
                hit_rate=hit,
                needs_input_grad=(idx > 0),
            )
            for idx, shape in enumerate(shapes)
        )
        return WorkloadTimes(
            variant=variant_name, layer_times=forward, backward_times=backward
        )

    def speedup(
        self,
        variant_name: str,
        f_input: int,
        f_hidden: int,
        training: bool = False,
        sparsity: float = 0.0,
        baseline: str = "distgnn",
        num_layers: int = 2,
    ) -> float:
        """Speedup of a variant over a baseline, paper-figure style."""
        runner = self.training_epoch_time if training else self.inference_time
        base = runner(baseline, f_input, f_hidden, num_layers, sparsity=sparsity)
        ours = runner(variant_name, f_input, f_hidden, num_layers, sparsity=sparsity)
        return base.total / ours.total
