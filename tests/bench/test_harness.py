"""Unit tests for the experiment harness."""

import pytest

from repro.bench import Experiment, ResultRow, geometric_mean, render_all


class TestResultRow:
    def test_ratio(self):
        row = ResultRow("x", measured=1.5, paper=1.0)
        assert row.ratio == 1.5

    def test_ratio_without_paper(self):
        assert ResultRow("x", 1.5).ratio is None

    def test_format_includes_paper(self):
        text = ResultRow("speedup", 1.5, paper=1.6).format()
        assert "1.500" in text
        assert "1.600" in text

    def test_to_dict(self):
        d = ResultRow("speedup", 1.5, paper=1.0, unit="x").to_dict()
        assert d == {
            "label": "speedup", "measured": 1.5, "paper": 1.0,
            "unit": "x", "ratio": 1.5,
        }

    def test_to_dict_without_paper(self):
        d = ResultRow("t", 2.0).to_dict()
        assert d["paper"] is None and d["ratio"] is None


class TestExperiment:
    def test_add_and_render(self):
        exp = Experiment("fig0", "demo")
        exp.add("a", 1.0, 1.1)
        exp.add("b", 2.0)
        exp.note("a note")
        text = exp.render()
        assert "fig0" in text
        assert "a note" in text

    def test_shape_holds(self):
        exp = Experiment("fig0", "demo")
        exp.add("small", 1.0)
        exp.add("big", 2.0)
        assert exp.shape_holds(["small", "big"])
        assert not exp.shape_holds(["big", "small"])

    def test_shape_tolerance(self):
        exp = Experiment("fig0", "demo")
        exp.add("a", 1.00)
        exp.add("b", 0.98)
        assert not exp.shape_holds(["a", "b"])
        assert exp.shape_holds(["a", "b"], tolerance=0.05)

    def test_shape_missing_row(self):
        exp = Experiment("fig0", "demo")
        exp.add("a", 1.0)
        with pytest.raises(KeyError):
            exp.shape_holds(["a", "missing"])

    def test_max_paper_deviation(self):
        exp = Experiment("fig0", "demo")
        exp.add("a", 1.1, paper=1.0)
        exp.add("b", 0.8, paper=1.0)
        assert exp.max_paper_deviation() == pytest.approx(0.2)

    def test_max_paper_deviation_empty(self):
        exp = Experiment("fig0", "demo")
        exp.add("a", 1.0)
        assert exp.max_paper_deviation() is None

    def test_to_dict(self):
        exp = Experiment("fig0", "demo")
        exp.add("a", 1.1, paper=1.0)
        exp.add("b", 2.0)
        exp.note("a note")
        d = exp.to_dict()
        assert d["experiment_id"] == "fig0"
        assert d["title"] == "demo"
        assert [r["label"] for r in d["rows"]] == ["a", "b"]
        assert d["notes"] == ["a note"]
        assert d["max_paper_deviation"] == pytest.approx(0.1)

    def test_to_dict_json_serializable(self):
        import json

        exp = Experiment("fig0", "demo")
        exp.add("a", 1.0)
        json.dumps(exp.to_dict())

    def test_render_all(self):
        a = Experiment("a", "one")
        b = Experiment("b", "two")
        text = render_all([a, b])
        assert "one" in text and "two" in text


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
