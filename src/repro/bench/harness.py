"""Experiment harness: result rows, paper-vs-measured comparison tables.

Every benchmark in ``benchmarks/`` reproduces one paper artifact (a
table or a figure) and reports its rows through this harness so the
output format is uniform and the paper's published values sit next to
the measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ResultRow:
    """One measured data point, optionally paired with the paper's value."""

    label: str
    measured: float
    paper: Optional[float] = None
    unit: str = "x"

    @property
    def ratio(self) -> Optional[float]:
        """measured / paper — 1.0 means exact reproduction."""
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def format(self, label_width: int = 36) -> str:
        text = f"{self.label:<{label_width}} {self.measured:8.3f} {self.unit}"
        if self.paper is not None:
            ratio = self.ratio
            text += f"   paper {self.paper:8.3f}"
            if ratio is not None:
                text += f"   ({ratio:5.2f} of paper)"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable row: label, measured, paper, unit, ratio."""
        return {
            "label": self.label,
            "measured": self.measured,
            "paper": self.paper,
            "unit": self.unit,
            "ratio": self.ratio,
        }


@dataclass
class Experiment:
    """A named experiment (one table or figure) and its rows."""

    experiment_id: str
    title: str
    rows: List[ResultRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(
        self,
        label: str,
        measured: float,
        paper: Optional[float] = None,
        unit: str = "x",
    ) -> ResultRow:
        row = ResultRow(label=label, measured=measured, paper=paper, unit=unit)
        self.rows.append(row)
        return row

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = max((len(r.label) for r in self.rows), default=20) + 2
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines += [row.format(width) for row in self.rows]
        lines += [f"   note: {note}" for note in self.notes]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable experiment: id, title, rows, notes, summary."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": [row.to_dict() for row in self.rows],
            "notes": list(self.notes),
            "max_paper_deviation": self.max_paper_deviation(),
        }

    # ------------------------------------------------------------------
    def shape_holds(
        self,
        expected_order: Sequence[str],
        tolerance: float = 0.0,
    ) -> bool:
        """Check that measured values are ordered like the paper says.

        ``expected_order`` lists row labels from smallest to largest
        expected measurement; ``tolerance`` allows small inversions.
        """
        values = {row.label: row.measured for row in self.rows}
        missing = [label for label in expected_order if label not in values]
        if missing:
            raise KeyError(f"rows missing for shape check: {missing}")
        seq = [values[label] for label in expected_order]
        return all(b >= a * (1.0 - tolerance) for a, b in zip(seq, seq[1:]))

    def max_paper_deviation(self) -> Optional[float]:
        """Largest |measured/paper - 1| over rows that have paper values."""
        ratios = [abs(r.ratio - 1.0) for r in self.rows if r.ratio is not None]
        return max(ratios) if ratios else None


def render_all(experiments: Sequence[Experiment]) -> str:
    return "\n\n".join(exp.render() for exp in experiments)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of no values")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
