"""Feature compression applied to aggregation kernels (Section 4.3).

The compressed kernels hold the input feature matrix in the fixed-stride
mask-compressed form of :mod:`repro.tensors.compression`, decompress each
gathered row on the fly, and track the DRAM bytes the compression avoids.
The numerics are bit-identical to the dense kernels — compression is
lossless by construction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.aggregate import normalization_factors
from ..tensors.compression import (
    CompressedMatrix,
    compress_matrix,
    decompress_matrix,
)
from .base import (
    AggregationKernel,
    FusedLayerKernel,
    KernelStats,
    UpdateParams,
    validate_inputs,
)
from .fused import DEFAULT_BLOCK_SIZE, DEFAULT_BLOCKS_PER_TASK


def _compression_savings(compressed: CompressedMatrix, gathers_per_row: np.ndarray) -> float:
    """DRAM bytes avoided by gathering compressed rows.

    Each gather of row ``v`` moves ``stored`` instead of ``dense`` bytes;
    the saving is weighted by how often each row is gathered.
    """
    dense_row = compressed.cols * compressed.slots.dtype.itemsize
    stored = compressed.counts * compressed.slots.dtype.itemsize + compressed.masks.shape[1]
    return float(((dense_row - stored) * gathers_per_row).sum())


class CompressedKernel(AggregationKernel):
    """Aggregation over a mask-compressed feature matrix."""

    name = "compression"

    def aggregate(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, KernelStats]:
        validate_inputs(graph, h)
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        compressed = compress_matrix(h)
        stats = KernelStats(compressed_rows=n)
        # Decompress-on-gather: restore the dense matrix once (the value
        # plane's equivalent of per-gather mask expansion) and count every
        # gathered row as one expansion.
        dense = decompress_matrix(compressed)
        edge_factors, self_factors = normalization_factors(graph, aggregator)
        out = np.empty_like(h, dtype=np.float32)
        degs = graph.degrees()
        for pos in range(n):
            v = int(order[pos])
            s, e = graph.indptr[v], graph.indptr[v + 1]
            row = graph.indices[s:e]
            acc = dense[v] * self_factors[v]
            if len(row):
                acc = acc + (dense[row] * edge_factors[s:e, None]).sum(axis=0)
            out[v] = acc
            stats.gathers += len(row) + 1
            stats.decompressed_rows += len(row) + 1
        gathers_per_row = np.bincount(graph.indices, minlength=n) + 1
        stats.dram_bytes_saved = _compression_savings(compressed, gathers_per_row)
        stats.flops = 2.0 * stats.gathers * h.shape[1]
        return out, stats


class CompressedFusedKernel(FusedLayerKernel):
    """Fusion + compression: the paper's ``combined`` variant."""

    name = "combined"

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        blocks_per_task: int = DEFAULT_BLOCKS_PER_TASK,
    ) -> None:
        self.block_size = block_size
        self.blocks_per_task = blocks_per_task

    def run_layer(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str = "gcn",
        keep_aggregation: bool = False,
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], KernelStats]:
        validate_inputs(graph, h)
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        compressed = compress_matrix(h)
        dense = decompress_matrix(compressed)
        edge_factors, self_factors = normalization_factors(graph, aggregator)
        f_out = params.weight.shape[1]
        h_out = np.empty((n, f_out), dtype=np.float32)
        a_full = np.empty_like(h, dtype=np.float32) if keep_aggregation else None
        buffer = np.empty((self.block_size, h.shape[1]), dtype=np.float32)
        stats = KernelStats(compressed_rows=n)
        stats.peak_buffer_bytes = a_full.nbytes if a_full is not None else buffer.nbytes
        degs = graph.degrees()

        for block_start in range(0, n, self.block_size):
            stats.blocks += 1
            count = min(self.block_size, n - block_start)
            scratch = buffer[:count]
            for m in range(count):
                v = int(order[block_start + m])
                s, e = graph.indptr[v], graph.indptr[v + 1]
                row = graph.indices[s:e]
                acc = dense[v] * self_factors[v]
                if len(row):
                    acc = acc + (dense[row] * edge_factors[s:e, None]).sum(axis=0)
                scratch[m] = acc
                stats.gathers += int(degs[v]) + 1
                stats.decompressed_rows += int(degs[v]) + 1
            if keep_aggregation:
                for m in range(count):
                    a_full[int(order[block_start + m])] = scratch[m]
            updated = params.apply(scratch)
            for m in range(count):
                h_out[int(order[block_start + m])] = updated[m]

        gathers_per_row = np.bincount(graph.indices, minlength=n) + 1
        stats.dram_bytes_saved = _compression_savings(compressed, gathers_per_row)
        stats.flops = (
            2.0 * stats.gathers * h.shape[1] + 2.0 * n * h.shape[1] * f_out
        )
        return h_out, a_full, stats
