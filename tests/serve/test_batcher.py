"""Unit tests for the request batcher: coalescing + admission control."""

import threading

import numpy as np
import pytest

from repro.serve import RequestBatcher, ServeRequest


def make_request(vertex=0):
    return ServeRequest(
        vertices=np.array([vertex]), mode="classify", trace_id=f"t{vertex}"
    )


class TestCoalescing:
    def test_lone_request_dispatches_after_max_wait(self):
        batches = []
        batcher = RequestBatcher(batches.append, max_batch=8, max_wait_s=0.01)
        try:
            request = make_request()
            assert batcher.submit(request)
            # handler only records; the dispatcher's forgot-one backstop
            # unblocks the request, which doubles as the dispatch signal
            assert request.done.wait(timeout=2.0)
            assert len(batches) == 1 and len(batches[0]) == 1
        finally:
            batcher.close()

    def test_full_batch_closes_at_max_batch(self):
        release = threading.Event()
        batches = []

        def handler(batch):
            batches.append(len(batch))
            for r in batch:
                r.finish(result={})
            release.set()

        batcher = RequestBatcher(handler, max_batch=3, max_wait_s=5.0)
        try:
            requests = [make_request(v) for v in range(3)]
            for r in requests:
                assert batcher.submit(r)
            # despite the 5s window, 3 requests == max_batch dispatches now
            assert release.wait(timeout=2.0)
            assert batches == [3]
            assert all(r.done.is_set() for r in requests)
        finally:
            batcher.close()

    def test_handler_error_fails_every_request(self):
        def handler(batch):
            raise RuntimeError("boom")

        batcher = RequestBatcher(handler, max_batch=4, max_wait_s=0.0)
        try:
            request = make_request()
            batcher.submit(request)
            assert request.done.wait(timeout=2.0)
            assert isinstance(request.error, RuntimeError)
        finally:
            batcher.close()

    def test_forgotten_request_gets_error_backstop(self):
        def handler(batch):
            pass  # finishes nothing

        batcher = RequestBatcher(handler, max_batch=4, max_wait_s=0.0)
        try:
            request = make_request()
            batcher.submit(request)
            assert request.done.wait(timeout=2.0)
            assert isinstance(request.error, RuntimeError)
        finally:
            batcher.close()


class TestAdmission:
    def test_submit_rejects_when_queue_full(self):
        hold = threading.Event()

        def handler(batch):
            hold.wait(timeout=5.0)
            for r in batch:
                r.finish(result={})

        batcher = RequestBatcher(handler, max_batch=1, max_wait_s=0.0,
                                 max_queue=1)
        try:
            # first request occupies the worker; then fill the queue
            assert batcher.submit(make_request(0))
            results = [batcher.submit(make_request(v)) for v in range(1, 8)]
            assert not all(results)  # at least one shed
            assert batcher.rejected >= 1
        finally:
            hold.set()
            batcher.close()

    def test_stats_counts(self):
        batcher = RequestBatcher(
            lambda batch: [r.finish(result={}) for r in batch],
            max_batch=2, max_wait_s=0.0,
        )
        try:
            request = make_request()
            batcher.submit(request)
            request.done.wait(timeout=2.0)
            stats = batcher.stats()
            assert stats["submitted"] == 1
            assert stats["max_batch"] == 2
        finally:
            batcher.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestBatcher(lambda b: None, max_batch=0)
        with pytest.raises(ValueError):
            RequestBatcher(lambda b: None, max_wait_s=-1.0)
        with pytest.raises(ValueError):
            RequestBatcher(lambda b: None, max_queue=0)


class TestClose:
    def test_close_is_idempotent_and_joins(self):
        batcher = RequestBatcher(lambda b: None, max_batch=1, max_wait_s=0.0)
        batcher.close()
        batcher.close()
        assert not batcher._thread.is_alive()

    def test_pending_request_still_dispatched_on_close(self):
        done = []
        batcher = RequestBatcher(
            lambda batch: done.extend(r.finish(result={}) or 1 for r in batch),
            max_batch=64, max_wait_s=10.0,
        )
        request = make_request()
        batcher.submit(request)
        batcher.close()
        assert request.done.wait(timeout=1.0)
