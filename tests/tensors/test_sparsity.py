"""Unit tests for sparsity measurement and injection (Section 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import (
    SparsityProfile,
    combined_sparsity,
    inject_sparsity,
    relu_sparsity_estimate,
    sparsity,
)


class TestSparsity:
    def test_dense(self):
        assert sparsity(np.ones((3, 3))) == 0.0

    def test_all_zero(self):
        assert sparsity(np.zeros((3, 3))) == 1.0

    def test_half(self):
        matrix = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert sparsity(matrix) == 0.5

    def test_empty(self):
        assert sparsity(np.empty((0, 4))) == 0.0


class TestInjection:
    def test_target_hit(self, rng):
        matrix = rng.standard_normal((100, 100)).astype(np.float32)
        out = inject_sparsity(matrix, 0.7, seed=0)
        assert 0.65 <= sparsity(out) <= 0.75

    def test_original_untouched(self, rng):
        matrix = rng.standard_normal((10, 10)).astype(np.float32)
        before = matrix.copy()
        inject_sparsity(matrix, 0.5)
        np.testing.assert_array_equal(matrix, before)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            inject_sparsity(np.ones((2, 2)), 1.5)


class TestReluEstimate:
    def test_half_negative(self):
        matrix = np.array([[-1.0, 1.0], [-2.0, 2.0]])
        assert relu_sparsity_estimate(matrix) == 0.5

    def test_zero_counts_as_sparsified(self):
        matrix = np.array([[0.0, 1.0]])
        assert relu_sparsity_estimate(matrix) == 0.5


class TestCombinedSparsity:
    def test_paper_profile_shape(self):
        """ReLU 60% then 50% dropout gives the >80% of Section 2.2."""
        assert combined_sparsity(0.6, 0.5) == pytest.approx(0.8)

    def test_no_dropout(self):
        assert combined_sparsity(0.4, 0.0) == pytest.approx(0.4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            combined_sparsity(1.2, 0.5)
        with pytest.raises(ValueError):
            combined_sparsity(0.5, -0.1)


class TestProfile:
    def test_record_and_query(self):
        profile = SparsityProfile()
        profile.record(0, np.zeros((2, 2)))
        profile.record(0, np.ones((2, 2)))
        profile.record(1, np.array([[0.0, 1.0]]))
        assert profile.mean(0) == 0.5
        assert profile.last(0) == 0.0
        assert profile.layers() == [0, 1]

    def test_missing_layer(self):
        profile = SparsityProfile()
        assert profile.mean(3) == 0.0
        assert profile.last(3) == 0.0

    def test_summary_renders(self):
        profile = SparsityProfile()
        profile.record(0, np.zeros((2, 2)))
        assert "layer" in profile.summary()

    def test_add_validates_range(self):
        profile = SparsityProfile()
        profile.add(0, 0.5)
        assert profile.last(0) == 0.5
        with pytest.raises(ValueError):
            profile.add(0, 1.5)
        with pytest.raises(ValueError):
            profile.add(0, -0.1)

    def test_to_dict_layout(self):
        profile = SparsityProfile()
        profile.add(0, 0.0)
        profile.add(0, 0.2)
        profile.add(1, 0.6)
        doc = profile.to_dict()
        assert doc["per_layer"] == {"0": [0.0, 0.2], "1": [0.6]}
        assert doc["mean"]["0"] == pytest.approx(0.1)
        assert doc["last"] == {"0": 0.2, "1": 0.6}
        import json

        json.dumps(doc)  # JSON-serializable by construction

    def test_dict_round_trip(self):
        profile = SparsityProfile()
        profile.add(2, 0.9)
        profile.add(0, 0.1)
        restored = SparsityProfile.from_dict(profile.to_dict())
        assert restored.per_layer == profile.per_layer
        assert restored.layers() == [0, 2]

    def test_from_dict_empty(self):
        assert SparsityProfile.from_dict({}).layers() == []


@settings(max_examples=30, deadline=None)
@given(
    relu=st.floats(0.0, 1.0),
    dropout=st.floats(0.0, 1.0),
)
def test_combined_sparsity_bounds(relu, dropout):
    result = combined_sparsity(relu, dropout)
    assert max(relu, dropout) - 1e-9 <= result <= 1.0 + 1e-9
