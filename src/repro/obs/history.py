"""Perf-regression history: append run metrics, compare against baseline.

The bench harness and the run reports already make every run's numbers
machine-readable; this module gives them a *memory*.  Each run appends
one compact :class:`HistoryEntry` line to a JSONL history file
(``BENCH_history.jsonl`` at the repo root), and :func:`compare_entries`
judges a new run against the **median of the last k** baseline runs —
median, because a single noisy CI run must neither set nor trip the
gate.  ``repro compare`` wraps this as a CLI exit code so CI can fail on
a real regression and stay green on noise.

Metrics are plain ``{name: float}``.  Direction matters: most tracked
quantities (wall times, paper deviations) regress *upward*, so
lower-is-better is the default; metric names listed in
``higher_is_better`` flip the test.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Version of the history-entry record layout.
HISTORY_SCHEMA_VERSION = 1

#: Relative slowdown tolerated before a metric counts as regressed.
#: 15% passes the jitter of repeated identical runs while catching the
#: >=20% slowdowns the gate exists for.
DEFAULT_THRESHOLD = 0.15

#: Baseline window: the median of this many most-recent runs.
DEFAULT_BASELINE_RUNS = 5

#: Baselines below this are too small for a meaningful ratio; the metric
#: is reported as skipped instead of gated.
BASELINE_FLOOR = 1e-12

#: Metric-name suffixes gated as higher-is-better without an explicit
#: ``higher_is_better`` list (speedup ratios and serving throughput
#: regress *downward*).
HIGHER_IS_BETTER_SUFFIXES = (
    "speedup_x",
    "epochs_per_s",
    "efficiency",
    "qps",
    "requests_per_s",
)


def default_higher_is_better(names: Iterable[str]) -> set:
    """Metric names whose suffix marks them higher-is-better."""
    return {n for n in names if n.endswith(HIGHER_IS_BETTER_SUFFIXES)}


@dataclass
class HistoryEntry:
    """One run's gateable numbers."""

    label: str
    timestamp: float
    metrics: Dict[str, float]
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "schema": HISTORY_SCHEMA_VERSION,
            "label": self.label,
            "timestamp": self.timestamp,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "HistoryEntry":
        return cls(
            label=str(record.get("label", "")),
            timestamp=float(record.get("timestamp", 0.0)),
            metrics={
                k: float(v)
                for k, v in (record.get("metrics") or {}).items()
                if v is not None
            },
            meta=dict(record.get("meta") or {}),
        )


def entry_from_bench_results(
    doc: Mapping[str, Any],
    label: str = "bench",
    timestamp: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> HistoryEntry:
    """Compact history row from a ``BENCH_results.json`` document.

    Tracks the wall time of the whole bench run plus the paper deviation
    of every experiment (and the overall max) — the deviations are
    deterministic model outputs, so any movement is a code change, not
    noise.
    """
    metrics: Dict[str, float] = {"elapsed_s": float(doc.get("elapsed_s", 0.0))}
    summary = doc.get("summary") or {}
    overall = summary.get("max_paper_deviation")
    if overall is not None:
        metrics["max_paper_deviation"] = float(overall)
    for experiment in doc.get("experiments", []):
        deviation = experiment.get("max_paper_deviation")
        key = experiment.get("key") or experiment.get("experiment_id")
        if deviation is not None and key:
            metrics[f"deviation.{key}"] = float(deviation)
    entry_meta = {
        "scale": doc.get("scale"),
        "experiments": summary.get("experiments"),
        "rows": summary.get("rows"),
        "git_sha": (doc.get("environment") or {}).get("git_sha"),
    }
    entry_meta.update(meta or {})
    return HistoryEntry(
        label=label,
        timestamp=float(
            timestamp if timestamp is not None else doc.get("generated_unix", 0.0)
        )
        or time.time(),
        metrics=metrics,
        meta=entry_meta,
    )


def entry_from_run_report(
    report: Mapping[str, Any],
    label: str = "run",
    timestamp: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> HistoryEntry:
    """Compact history row from a run-report JSON document.

    Tracks total wall time per span name (``span.kernel.basic.total_s``)
    — the quantities ``repro compare`` can gate for traced runs.
    """
    metrics: Dict[str, float] = {}
    for record in report.get("spans", []):
        name = record.get("name")
        if not name:
            continue
        key = f"span.{name}.total_s"
        metrics[key] = metrics.get(key, 0.0) + float(record.get("duration_s", 0.0))
    entry_meta = dict(report.get("meta") or {})
    entry_meta.update(meta or {})
    return HistoryEntry(
        label=label,
        timestamp=float(
            timestamp
            if timestamp is not None
            else report.get("trace_epoch_unix", 0.0)
        )
        or time.time(),
        metrics=metrics,
        meta=entry_meta,
    )


def append_history(path: str, entry: HistoryEntry) -> None:
    """Append one entry line to the JSONL history file (creating it)."""
    with open(path, "a") as handle:
        handle.write(json.dumps(entry.to_record()) + "\n")


def load_history(path: str, label: Optional[str] = None) -> List[HistoryEntry]:
    """All entries of a history file (oldest first), optionally by label."""
    if not os.path.exists(path):
        return []
    entries: List[HistoryEntry] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = HistoryEntry.from_record(json.loads(line))
            if label is None or entry.label == label:
                entries.append(entry)
    return entries


# ----------------------------------------------------------------------
# Comparison


@dataclass
class MetricComparison:
    """Verdict for one metric of the candidate run."""

    name: str
    baseline: Optional[float]  # median of the baseline window, if any
    current: float
    ratio: Optional[float]
    regressed: bool
    status: str  # "ok" | "regressed" | "new" | "skipped"

    def format(self, width: int = 36) -> str:
        if self.baseline is None:
            return f"{self.name:<{width}} {self.current:12.6g}  ({self.status})"
        ratio = f"{self.ratio:5.2f}" if self.ratio is not None else "    -"
        return (
            f"{self.name:<{width}} {self.current:12.6g}  "
            f"baseline {self.baseline:12.6g}  "
            f"ratio {ratio}  {self.status}"
        )


@dataclass
class ComparisonReport:
    """All metric verdicts of one candidate-vs-baseline comparison."""

    label: str
    baseline_runs: int
    threshold: float
    comparisons: List[MetricComparison]

    @property
    def regressions(self) -> List[MetricComparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        width = max((len(c.name) for c in self.comparisons), default=20) + 2
        lines = [
            f"== perf comparison [{self.label}] vs median of "
            f"{self.baseline_runs} baseline run(s), threshold "
            f"{self.threshold:.0%} =="
        ]
        lines += [c.format(width) for c in self.comparisons]
        verdict = (
            "OK — no regressions"
            if self.ok
            else f"REGRESSED — {len(self.regressions)} metric(s) over threshold"
        )
        lines.append(verdict)
        return "\n".join(lines)


def baseline_medians(
    entries: Iterable[HistoryEntry],
    baseline_runs: int = DEFAULT_BASELINE_RUNS,
) -> Dict[str, float]:
    """Per-metric median over the last ``baseline_runs`` entries."""
    window = list(entries)[-baseline_runs:]
    values: Dict[str, List[float]] = {}
    for entry in window:
        for name, value in entry.metrics.items():
            values.setdefault(name, []).append(value)
    return {name: statistics.median(vals) for name, vals in values.items()}


def compare_entries(
    baseline: Iterable[HistoryEntry],
    current: HistoryEntry,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_runs: int = DEFAULT_BASELINE_RUNS,
    higher_is_better: Iterable[str] = (),
) -> ComparisonReport:
    """Judge ``current`` against the median of the baseline window.

    A lower-is-better metric regresses when ``current > median * (1 +
    threshold)``; a higher-is-better one when ``current < median * (1 -
    threshold)``.  Metrics new to this run, or whose baseline is ~zero,
    are reported but never gate.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    baseline = list(baseline)
    medians = baseline_medians(baseline, baseline_runs)
    flipped = set(higher_is_better)
    comparisons: List[MetricComparison] = []
    for name in sorted(current.metrics):
        value = current.metrics[name]
        median = medians.get(name)
        if median is None:
            comparisons.append(
                MetricComparison(name, None, value, None, False, "new")
            )
            continue
        if abs(median) < BASELINE_FLOOR:
            comparisons.append(
                MetricComparison(name, median, value, None, False, "skipped")
            )
            continue
        ratio = value / median
        if name in flipped:
            regressed = ratio < 1.0 - threshold
        else:
            regressed = ratio > 1.0 + threshold
        comparisons.append(
            MetricComparison(
                name,
                median,
                value,
                ratio,
                regressed,
                "regressed" if regressed else "ok",
            )
        )
    return ComparisonReport(
        label=current.label,
        baseline_runs=min(len(baseline), baseline_runs),
        threshold=threshold,
        comparisons=comparisons,
    )
