"""Multicore trace-driven simulation of core-executed aggregation.

This is the baseline side of the hardware evaluation (Section 7.3): the
cores themselves walk the gather stream through their private caches.
The simulator runs every line access through the cache hierarchy for
exact access counts (Table 5) and prices time with a steady-state
memory-level-parallelism law (see :func:`multicore_service_time`),
the same law the DMA plane uses — so core-vs-DMA comparisons are
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graphs.csr import CSRGraph
from ..perf.machine import MachineConfig, cascade_lake_28
from .dram import DramModel
from .hierarchy import MemoryHierarchy
from .trace import layout_for, vertex_trace

#: Core-side issue overhead per line of a gather loop (address generation,
#: reduction micro-ops) in cycles.
CORE_ISSUE_CYCLES_PER_LINE = 4.0

#: Effective memory-level parallelism a core sustains on the gather loop:
#: the 12 L1 fill buffers (pegged full — Section 3) plus the additional
#: outstanding streams the L2 hardware prefetchers keep in flight.
CORE_EFFECTIVE_MLP = 20.0

#: Fraction of peak DRAM bandwidth a core-driven gather loop sustains —
#: irregular access streams never reach the STREAM number (the paper's
#: DistGNN/basic rows of Table 4 peg DRAM-BW-bound at ~79% while the
#: engine-driven gathers push closer to the interface limit).
CORE_GATHER_BW_EFFICIENCY = 0.80

#: Update-phase load modeling: the small-GEMM update issues
#: ``f_in * f_out / 16`` vector multiply-adds per vertex whose weight
#: operands are register-blocked (each L1 load feeds ~4 FMAs) and whose
#: weight panel streams from L2 (each L2 line is reused ~3 times per
#: block).  Both constants are calibrated against the published Table 5
#: fused-mode reductions, which they reproduce for BOTH graphs at the
#: paper's feature sizes.
UPDATE_L1_REUSE = 4.0
UPDATE_L2_REUSE = 3.0
VECTOR_LANES = 16.0


def update_l1_loads_per_vertex(f_in: int, f_out: int) -> float:
    """L1 load micro-ops the fused update issues per vertex."""
    return f_in * f_out / (VECTOR_LANES * UPDATE_L1_REUSE) + (f_in + f_out) / VECTOR_LANES


def update_l2_accesses_per_vertex(f_in: int, f_out: int) -> float:
    """L2 accesses (weight-panel streams + a/h_out lines) per vertex."""
    return f_in * f_out / (VECTOR_LANES * UPDATE_L2_REUSE) + (f_in + f_out) / VECTOR_LANES


def multicore_service_time(
    dram: DramModel,
    dram_lines_per_core: List[float],
    parallelism: float,
    issue_cycles_per_line: float,
    issue_lines_per_core: Optional[List[float]] = None,
) -> float:
    """Steady-state execution time (cycles) of a parallel line stream.

    ``max(bandwidth-bound, latency-bound, issue-bound)`` with the latency
    term using the loaded latency at the utilization the run induces.
    ``dram_lines_per_core`` are misses that reach DRAM; the issue term
    covers every line the core touches (hits included).
    """
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")
    total_lines = float(sum(dram_lines_per_core))
    if issue_lines_per_core is None:
        issue_lines_per_core = dram_lines_per_core
    bw_time = (
        total_lines * dram.service_cycles_per_line / CORE_GATHER_BW_EFFICIENCY
    )
    # Dynamic task scheduling (Algorithm 1 uses OpenMP's dynamic
    # scheduler) balances per-core line counts to near the mean; the 5%
    # residual covers the tail task.
    cores = max(1, len(dram_lines_per_core))
    worst_core = 1.05 * total_lines / cores
    worst_issue = 1.05 * float(sum(issue_lines_per_core)) / cores
    time = max(bw_time, 1e-9)
    for _ in range(3):
        utilization = min(0.999, bw_time / max(time, 1e-9))
        latency = dram.loaded_latency(utilization)
        lat_time = worst_core * latency / parallelism
        issue_time = worst_issue * issue_cycles_per_line
        time = max(bw_time, lat_time, issue_time)
    return time


@dataclass
class SimReport:
    """Result of one trace-driven run."""

    cycles: float
    seconds: float
    l1_accesses: int
    l2_accesses: int
    l3_accesses: int
    dram_lines: int
    l2_miss_rate: float
    memory_stall_fraction: float
    update_cycles: float = 0.0
    dram_bytes: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    def summarize(self) -> str:
        return (
            f"cycles={self.cycles:.3g} ({self.seconds * 1e3:.2f} ms)  "
            f"L1={self.l1_accesses} L2={self.l2_accesses} "
            f"L2-miss={self.l2_miss_rate:.1%} DRAM-lines={self.dram_lines} "
            f"stall={self.memory_stall_fraction:.1%}"
        )


class CoreAggregationSim:
    """Core-executed aggregation (optionally fused with the update).

    Args:
        machine: platform parameters.
        cache_scale: cache shrink factor for twin workloads (keeps the
            cache : working-set ratio of the full-size machine).
    """

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        cache_scale: float = 1.0,
    ) -> None:
        self.machine = machine or cascade_lake_28()
        self.cache_scale = cache_scale

    def run(
        self,
        graph: CSRGraph,
        feature_len: int,
        fused_update_features: Optional[int] = None,
        order: Optional[np.ndarray] = None,
        block_size: int = 32,
        reuse_output_buffer: bool = False,
        label: Optional[str] = None,
    ) -> SimReport:
        """Simulate one aggregation pass (plus fused update if requested).

        Args:
            fused_update_features: when set, each B-vertex block is
                followed by the update GEMM to this output width
                (Algorithm 2); None simulates aggregation only.
            reuse_output_buffer: fused-inference output placement
                (Figure 5c) — each core writes its aggregation results
                into one reusable ``block_size``-row buffer instead of
                the full ``a`` matrix, so output traffic stays resident
                after the first block.  Default False keeps the
                write-through-to-``a`` behaviour of the unfused kernels
                and fused training.
            label: when set and telemetry is enabled, publish the
                hierarchy counters as ``sim.<label>.*`` metrics (plus a
                ``sim.<label>.runs`` counter) and record a
                ``sim.<label>`` span — the hook bottleneck attribution
                uses to reconcile cost-model traffic against this
                simulator (:mod:`repro.obs.attrib`).
        """
        machine = self.machine
        hierarchy = MemoryHierarchy(machine, cache_scale=self.cache_scale)
        layout = layout_for(graph, feature_len)
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)

        cores = machine.cores
        issued_lines = [0.0] * cores
        dram_lines = [0.0] * cores
        # Interleave cores in rounds of one block each so the shared L3 /
        # DRAM see a realistic mix.
        chunk = max(1, (n + cores - 1) // cores)
        for offset in range(0, chunk, block_size):
            for core in range(cores):
                start = core * chunk + offset
                end = min(start + block_size, min((core + 1) * chunk, n))
                for pos in range(start, end):
                    trace = vertex_trace(graph, layout, int(order[pos]))
                    if reuse_output_buffer:
                        # Per-core buffer slot in the a region: the slot
                        # address repeats every block, so only the first
                        # block's writes miss.
                        slot = core * block_size + (pos - start) % block_size
                        out_lines = layout.output_lines(slot)
                    else:
                        out_lines = list(trace.output_lines)
                    for addr in (
                        *trace.index_lines,
                        *trace.factor_lines,
                        *trace.gather_lines,
                    ):
                        result = hierarchy.access(core, addr)
                        issued_lines[core] += 1
                        if result.level == "DRAM":
                            dram_lines[core] += 1
                    for addr in out_lines:
                        result = hierarchy.access(core, addr, write=True)
                        issued_lines[core] += 1
                        if result.level == "DRAM":
                            dram_lines[core] += 1

        memory_cycles = multicore_service_time(
            hierarchy.dram,
            dram_lines,
            parallelism=CORE_EFFECTIVE_MLP,
            issue_cycles_per_line=CORE_ISSUE_CYCLES_PER_LINE,
            issue_lines_per_core=issued_lines,
        )
        update_cycles = 0.0
        extra_l1 = 0.0
        extra_l2_hits = 0.0
        if fused_update_features is not None:
            per_core_vertices = chunk
            flops = 2.0 * per_core_vertices * feature_len * fused_update_features
            update_cycles = flops / (
                machine.flops_per_cycle_per_core * machine.small_gemm_efficiency
            )
            # Fused: the update overlaps the next block's aggregation
            # (Figure 4); only the non-hidden remainder extends the run.
            total_cycles = max(memory_cycles, update_cycles) + 0.08 * min(
                memory_cycles, update_cycles
            )
            extra_l1 = n * update_l1_loads_per_vertex(
                feature_len, fused_update_features
            )
            extra_l2_hits = n * update_l2_accesses_per_vertex(
                feature_len, fused_update_features
            )
        else:
            total_cycles = memory_cycles

        stall = max(0.0, memory_cycles - update_cycles) / total_cycles if total_cycles else 0.0
        l2_demand = hierarchy.l2_accesses() + extra_l2_hits
        l2_misses = sum(c.stats.misses for c in hierarchy.l2)
        report = SimReport(
            cycles=total_cycles,
            seconds=total_cycles / machine.frequency_hz,
            l1_accesses=int(hierarchy.l1_accesses() + extra_l1),
            l2_accesses=int(l2_demand),
            l3_accesses=hierarchy.l3.stats.accesses,
            dram_lines=int(sum(dram_lines)),
            l2_miss_rate=l2_misses / l2_demand if l2_demand else 0.0,
            memory_stall_fraction=min(1.0, stall),
            update_cycles=update_cycles,
            dram_bytes=hierarchy.dram_traffic_bytes(),
            detail={
                "memory_cycles": memory_cycles,
                "issued_lines": float(sum(issued_lines)),
            },
        )
        if label is not None:
            self._publish(label, graph, feature_len, hierarchy, report)
        return report

    def _publish(
        self,
        label: str,
        graph: CSRGraph,
        feature_len: int,
        hierarchy: MemoryHierarchy,
        report: SimReport,
    ) -> None:
        """Expose one run's counters to the telemetry layer (no-op when off)."""
        from ..obs import get_metrics, get_tracer

        metrics = get_metrics()
        if metrics.enabled:
            hierarchy.publish_metrics(prefix=f"sim.{label}")
            metrics.inc(f"sim.{label}.runs")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                f"sim.{label}",
                duration_s=report.seconds,
                attrs={
                    "vertices": graph.num_vertices,
                    "edges": graph.num_edges,
                    "features": feature_len,
                    "modeled": True,
                },
                counters={
                    "dram_lines": float(report.dram_lines),
                    "dram_bytes": report.dram_bytes,
                    "l1_accesses": float(report.l1_accesses),
                    "l2_accesses": float(report.l2_accesses),
                },
            )
