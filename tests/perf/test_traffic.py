"""Unit tests for the DRAM traffic accounting."""

import pytest

from repro.perf import (
    BYTES_PER_FEATURE,
    LayerShape,
    aggregation_traffic,
    backward_traffic,
    decompress_elements,
    update_traffic,
)
from repro.tensors import traffic_ratio

SHAPE = LayerShape(num_vertices=1000, num_edges=20000, f_in=128, f_out=64)


class TestLayerShape:
    def test_gathers_include_self(self):
        assert SHAPE.num_gathers == 21000

    def test_vector_bytes(self):
        assert SHAPE.in_vector_bytes == 512

    def test_matrix_bytes(self):
        assert SHAPE.feature_matrix_bytes == 1000 * 512


class TestAggregationTraffic:
    def test_zero_hit_rate_reads_every_gather(self):
        traffic = aggregation_traffic(SHAPE, gather_hit_rate=0.0)
        assert traffic.notes["feature_read"] == 21000 * 512

    def test_full_hit_rate_reads_nothing(self):
        traffic = aggregation_traffic(SHAPE, gather_hit_rate=1.0)
        assert traffic.notes["feature_read"] == 0.0

    def test_hit_rate_scales_linearly(self):
        half = aggregation_traffic(SHAPE, 0.5).notes["feature_read"]
        none = aggregation_traffic(SHAPE, 0.0).notes["feature_read"]
        assert half == pytest.approx(none / 2)

    def test_a_write_toggle(self):
        with_write = aggregation_traffic(SHAPE, 0.5, write_a=True)
        without = aggregation_traffic(SHAPE, 0.5, write_a=False)
        assert with_write.dram_write - without.dram_write == 1000 * 512

    def test_compression_scales_feature_reads_only(self):
        plain = aggregation_traffic(SHAPE, 0.0, feature_sparsity=0.5)
        packed = aggregation_traffic(
            SHAPE, 0.0, feature_sparsity=0.5, compressed=True
        )
        ratio = packed.notes["feature_read"] / plain.notes["feature_read"]
        assert ratio == pytest.approx(traffic_ratio(0.5))
        assert packed.notes["index_read"] == plain.notes["index_read"]

    def test_invalid_hit_rate(self):
        with pytest.raises(ValueError):
            aggregation_traffic(SHAPE, 1.5)

    def test_flops_count(self):
        traffic = aggregation_traffic(SHAPE, 0.0)
        assert traffic.flops == 2.0 * 21000 * 128


class TestUpdateTraffic:
    def test_unfused_reads_a(self):
        traffic = update_traffic(SHAPE, fused=False)
        assert traffic.notes["a_read"] == 1000 * 512

    def test_fused_skips_a_read(self):
        traffic = update_traffic(SHAPE, fused=True)
        assert traffic.notes["a_read"] == 0.0

    def test_output_write_compressible(self):
        dense = update_traffic(SHAPE, feature_sparsity=0.5)
        packed = update_traffic(SHAPE, feature_sparsity=0.5, compressed=True)
        assert packed.notes["h_out_write"] == pytest.approx(
            dense.notes["h_out_write"] * traffic_ratio(0.5)
        )

    def test_gemm_flops(self):
        traffic = update_traffic(SHAPE)
        assert traffic.flops == 2.0 * 1000 * 128 * 64


class TestBackwardTraffic:
    def test_has_two_gemms_of_flops(self):
        traffic = backward_traffic(SHAPE, 0.0)
        assert traffic.flops >= 2.0 * (2.0 * 1000 * 128 * 64)

    def test_gather_term_scales_with_hit_rate(self):
        none = backward_traffic(SHAPE, 0.0).notes["grad_gather"]
        half = backward_traffic(SHAPE, 0.5).notes["grad_gather"]
        assert half == pytest.approx(none / 2)

    def test_compression_shrinks_gradient_streams(self):
        dense = backward_traffic(SHAPE, 0.0, feature_sparsity=0.6)
        packed = backward_traffic(SHAPE, 0.0, feature_sparsity=0.6, compressed=True)
        assert packed.dram_total < dense.dram_total
        # grad_a stays dense (a reduction output).
        assert packed.notes["grad_a_write"] == dense.notes["grad_a_write"]


class TestPhaseTrafficOps:
    def test_merge_adds_components(self):
        a = aggregation_traffic(SHAPE, 0.5)
        b = update_traffic(SHAPE)
        merged = a.merged(b)
        assert merged.dram_total == pytest.approx(a.dram_total + b.dram_total)
        assert merged.flops == pytest.approx(a.flops + b.flops)

    def test_scaled(self):
        a = aggregation_traffic(SHAPE, 0.5)
        assert a.scaled(2.0).dram_read == pytest.approx(2 * a.dram_read)


class TestDecompressElements:
    def test_disabled(self):
        assert decompress_elements(SHAPE, compressed=False) == 0.0

    def test_counts_all_lanes(self):
        """Expansion touches every lane regardless of sparsity (the reason
        compression loses at 10% sparsity, Figure 14)."""
        assert decompress_elements(SHAPE, compressed=True) == 21000 * 128
