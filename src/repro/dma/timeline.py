"""Event-driven timeline of the DMA engine's request scheduling — Fig. 10.

The batch law in :mod:`repro.dma.engine` prices whole descriptor batches;
this module simulates the *mechanism* behind it at request granularity:

* the index buffer holds index lines, with entries in ``Reserved`` state
  while their fetch is in flight and ``Occupied`` once data arrives but
  input fetches derived from it are still pending;
* the Memory Request Tracking Table bounds in-flight line fetches;
* input-line addresses depend on their index line (fetch ordering);
* when a tracking-table entry frees, pending *index* fetches win over
  pending input fetches ("the table gives priority to allocate an entry
  for and fetch idx[4:5] over input data" — Section 5.2);
* when dependences idle the table, the engine pulls work from the next
  descriptor in its queue ("the DMA engine simultaneously processes a
  second descriptor").

The simulation reproduces the paper's Figure 10 example exactly (see
``tests/dma/test_timeline.py``) and, in aggregate, the Figure 16 scaling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class DescriptorJob:
    """The fetch work of one descriptor, in line units.

    ``index_lines`` index-array lines; each index line, once fetched,
    unlocks ``inputs_per_index_line`` input blocks of ``lines_per_input``
    lines each (the Figure 10 example: 2 indices per line, 2 lines per
    input block).
    """

    index_lines: int
    inputs_per_index_line: int
    lines_per_input: int

    def __post_init__(self) -> None:
        if self.index_lines < 0:
            raise ValueError("index_lines must be >= 0")
        if self.inputs_per_index_line <= 0 or self.lines_per_input <= 0:
            raise ValueError("per-line factors must be positive")

    @property
    def total_input_lines(self) -> int:
        return self.index_lines * self.inputs_per_index_line * self.lines_per_input


@dataclass
class TimelineEvent:
    """One recorded scheduling event (for inspection and tests)."""

    time: float
    kind: str  # "issue_index" | "issue_input" | "complete_index" | "complete_input"
    descriptor: int
    tag: str


@dataclass
class TimelineResult:
    """Outcome of one timeline run."""

    finish_time: float
    events: List[TimelineEvent]
    max_table_occupancy: int
    max_index_buffer_occupancy: int

    def events_of(self, kind: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.kind == kind]


class DmaRequestTimeline:
    """Cycle-granular simulation of the Figure 10 request schedule.

    Args:
        tracking_entries: Memory Request Tracking Table size.
        index_buffer_entries: index-buffer capacity (reserved+occupied).
        memory_latency: cycles from issue to data return.
        issue_interval: minimum cycles between issues (interface width).
    """

    def __init__(
        self,
        tracking_entries: int = 32,
        index_buffer_entries: int = 2,
        memory_latency: float = 100.0,
        issue_interval: float = 1.0,
    ) -> None:
        if tracking_entries <= 0 or index_buffer_entries <= 0:
            raise ValueError("buffer sizes must be positive")
        if memory_latency < 0 or issue_interval < 0:
            raise ValueError("latencies must be non-negative")
        self.tracking_entries = tracking_entries
        self.index_buffer_entries = index_buffer_entries
        self.memory_latency = memory_latency
        self.issue_interval = issue_interval

    def run(self, jobs: List[DescriptorJob]) -> TimelineResult:
        """Simulate the fetch schedule of a queue of descriptors."""
        events: List[TimelineEvent] = []
        # Work state per descriptor.
        next_index = [0] * len(jobs)  # next index line to fetch
        # (descriptor, index_line) -> input lines still to issue.
        pending_inputs: List[Tuple[int, int, int]] = []  # desc, idx_line, line_no
        unlocked_inputs: List[Tuple[int, int, int]] = []
        inputs_remaining = [job.total_input_lines for job in jobs]
        indices_remaining = [job.index_lines for job in jobs]

        # Index buffer entries: (desc, idx_line) in Reserved or Occupied.
        reserved: List[Tuple[int, int]] = []
        occupied: Dict[Tuple[int, int], int] = {}  # -> inputs left to issue

        in_flight = 0  # tracking table occupancy
        completions: List[Tuple[float, str, int, int]] = []  # heap
        now = 0.0
        max_table = 0
        max_idx_buf = 0

        def buffer_occupancy() -> int:
            return len(reserved) + len(occupied)

        def can_issue_index(desc: int) -> bool:
            return (
                next_index[desc] < jobs[desc].index_lines
                and buffer_occupancy() < self.index_buffer_entries
                and in_flight < self.tracking_entries
            )

        while any(r > 0 for r in inputs_remaining) or any(
            next_index[d] < jobs[d].index_lines for d in range(len(jobs))
        ) or in_flight > 0:
            progressed = True
            while progressed:
                progressed = False
                # Priority 1: index fetches (Figure 10's rule), in
                # descriptor-queue order.
                for desc in range(len(jobs)):
                    if next_index[desc] < jobs[desc].index_lines and can_issue_index(desc):
                        line = next_index[desc]
                        next_index[desc] += 1
                        reserved.append((desc, line))
                        in_flight += 1
                        heapq.heappush(
                            completions,
                            (now + self.memory_latency, "index", desc, line),
                        )
                        events.append(
                            TimelineEvent(now, "issue_index", desc, f"idx[{line}]")
                        )
                        now += self.issue_interval
                        progressed = True
                        break
                else:
                    # Priority 2: unlocked input fetches.
                    if unlocked_inputs and in_flight < self.tracking_entries:
                        desc, idx_line, line_no = unlocked_inputs.pop(0)
                        in_flight += 1
                        heapq.heappush(
                            completions,
                            (now + self.memory_latency, "input", desc, idx_line),
                        )
                        events.append(
                            TimelineEvent(
                                now, "issue_input", desc,
                                f"input idx{idx_line}.{line_no}",
                            )
                        )
                        now += self.issue_interval
                        progressed = True
                max_table = max(max_table, in_flight)
                max_idx_buf = max(max_idx_buf, buffer_occupancy())

            if not completions:
                break
            # Advance to the next completion.
            time, kind, desc, idx_line = heapq.heappop(completions)
            now = max(now, time)
            in_flight -= 1
            if kind == "index":
                reserved.remove((desc, idx_line))
                job = jobs[desc]
                count = job.inputs_per_index_line * job.lines_per_input
                occupied[(desc, idx_line)] = count
                for i in range(job.inputs_per_index_line):
                    for l in range(job.lines_per_input):
                        unlocked_inputs.append((desc, idx_line, i * job.lines_per_input + l))
                indices_remaining[desc] -= 1
                events.append(
                    TimelineEvent(now, "complete_index", desc, f"idx[{idx_line}]")
                )
            else:
                inputs_remaining[desc] -= 1
                key = (desc, idx_line)
                if key in occupied:
                    occupied[key] -= 1
                    if occupied[key] <= 0:
                        del occupied[key]
                events.append(
                    TimelineEvent(now, "complete_input", desc, f"input idx{idx_line}")
                )
            # Issued inputs also shrink the occupied counter's issue debt:
            # entries free once all their inputs have been *issued*; we
            # approximate by freeing on completion (conservative).

        result = TimelineResult(
            finish_time=now,
            events=events,
            max_table_occupancy=max_table,
            max_index_buffer_occupancy=max_idx_buf,
        )
        self._emit_telemetry(len(jobs), result)
        return result

    def _emit_telemetry(self, num_jobs: int, result: TimelineResult) -> None:
        """Publish the run's outcome (no-op while telemetry is disabled)."""
        from ..obs import get_metrics, get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                "dma.timeline",
                duration_s=0.0,  # simulated cycles, not wall time
                attrs={
                    "descriptors": num_jobs,
                    "tracking_entries": self.tracking_entries,
                    "index_buffer_entries": self.index_buffer_entries,
                },
                counters={
                    "finish_cycles": result.finish_time,
                    "events": len(result.events),
                    "max_table_occupancy": result.max_table_occupancy,
                    "max_index_buffer_occupancy": (
                        result.max_index_buffer_occupancy
                    ),
                },
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("dma.timeline.runs")
            metrics.inc("dma.timeline.descriptors", num_jobs)
            metrics.inc("dma.timeline.events", len(result.events))
            metrics.observe("dma.timeline.finish_cycles", result.finish_time)
            metrics.set_gauge(
                "dma.timeline.max_table_occupancy", result.max_table_occupancy
            )
            metrics.set_gauge(
                "dma.timeline.max_index_buffer_occupancy",
                result.max_index_buffer_occupancy,
            )


def figure10_example() -> Tuple[DmaRequestTimeline, List[DescriptorJob]]:
    """The exact configuration of the paper's Figure 10.

    A 2-entry index buffer and a 4-entry tracking table; each requested
    line contains two indices, and each input block spans two lines.
    """
    timeline = DmaRequestTimeline(
        tracking_entries=4, index_buffer_entries=2,
        memory_latency=10.0, issue_interval=1.0,
    )
    jobs = [DescriptorJob(index_lines=3, inputs_per_index_line=2, lines_per_input=2)]
    return timeline, jobs
