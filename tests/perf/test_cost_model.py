"""Integration tests for the analytical cost model: paper-shape checks."""

import pytest

from repro.graphs import load_dataset
from repro.perf import CostModel, VARIANTS


@pytest.fixture(scope="module")
def products_model():
    return CostModel(load_dataset("products", scale=0.25, seed=0))


@pytest.fixture(scope="module")
def wikipedia_model():
    return CostModel(load_dataset("wikipedia", scale=0.25, seed=0))


F_IN, F_HID = 100, 128


class TestVariantRegistry:
    def test_all_paper_variants_present(self):
        for name in ("distgnn", "mkl", "basic", "fusion", "compression",
                     "combined", "c-locality"):
            assert name in VARIANTS

    def test_flags(self):
        assert VARIANTS["fusion"].fused
        assert not VARIANTS["fusion"].compressed
        assert VARIANTS["combined"].fused and VARIANTS["combined"].compressed
        assert VARIANTS["c-locality"].order == "locality"


class TestSpeedupOrdering:
    """The qualitative ordering of Figure 11 must hold on every twin."""

    @pytest.mark.parametrize("training", [False, True])
    def test_basic_beats_distgnn(self, products_model, training):
        assert products_model.speedup("basic", F_IN, F_HID, training=training) > 1.0

    @pytest.mark.parametrize("training", [False, True])
    def test_mkl_slightly_slower_than_distgnn(self, products_model, training):
        s = products_model.speedup("mkl", F_IN, F_HID, training=training)
        assert 0.85 < s < 1.0

    def test_fusion_beats_basic(self, products_model):
        fusion = products_model.speedup("fusion", F_IN, F_HID)
        basic = products_model.speedup("basic", F_IN, F_HID)
        assert fusion > basic

    def test_combined_beats_both_parts(self, products_model):
        combined = products_model.speedup("combined", F_IN, F_HID, sparsity=0.5)
        fusion = products_model.speedup("fusion", F_IN, F_HID, sparsity=0.5)
        compression = products_model.speedup("compression", F_IN, F_HID, sparsity=0.5)
        assert combined > fusion
        assert combined > compression

    def test_locality_helps_training_on_products(self, products_model):
        loc = products_model.speedup("c-locality", F_IN, F_HID, training=True,
                                     sparsity=0.5)
        combined = products_model.speedup("combined", F_IN, F_HID, training=True,
                                          sparsity=0.5)
        assert loc > combined * 1.2  # products is the big locality winner

    def test_fusion_helps_training_less_than_inference(self, products_model):
        """Fusion cannot drop the a write in training (Section 7.1.1)."""
        inf = products_model.speedup("fusion", F_IN, F_HID, training=False)
        train = products_model.speedup("fusion", F_IN, F_HID, training=True)
        assert train < inf


class TestCompressionCrossover:
    def test_loses_at_low_sparsity(self, products_model):
        s = products_model.speedup("compression", F_IN, F_HID, sparsity=0.1,
                                   baseline="basic")
        assert s < 1.0

    def test_wins_at_high_sparsity(self, products_model):
        s = products_model.speedup("compression", F_IN, F_HID, sparsity=0.9,
                                   baseline="basic")
        assert s > 1.5

    def test_monotone_in_sparsity(self, products_model):
        speeds = [
            products_model.speedup("compression", F_IN, F_HID, sparsity=s,
                                   baseline="basic")
            for s in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))


class TestHitRates:
    def test_products_locality_order_wins(self, products_model):
        assert products_model.hit_rate("locality") > products_model.hit_rate("natural")

    def test_wikipedia_pre_localized(self, wikipedia_model):
        """wikipedia's source ordering already embeds locality (Fig. 15)."""
        natural = wikipedia_model.hit_rate("natural")
        randomized = wikipedia_model.hit_rate("randomized")
        assert natural > randomized * 2

    def test_products_natural_is_random_like(self, products_model):
        natural = products_model.hit_rate("natural")
        randomized = products_model.hit_rate("randomized")
        assert natural == pytest.approx(randomized, abs=0.05)


class TestWorkloadAccounting:
    def test_training_heavier_than_inference(self, products_model):
        inf = products_model.inference_time("distgnn", F_IN, F_HID)
        train = products_model.training_epoch_time("distgnn", F_IN, F_HID)
        assert train.total > inf.total

    def test_layers_counted(self, products_model):
        times = products_model.inference_time("basic", F_IN, F_HID, num_layers=3)
        assert len(times.layer_times) == 3

    def test_dram_bytes_positive(self, products_model):
        times = products_model.training_epoch_time("combined", F_IN, F_HID,
                                                   sparsity=0.5)
        assert times.dram_bytes > 0
        assert times.flops > 0

    def test_fused_inference_less_dram_than_basic(self, products_model):
        fused = products_model.inference_time("fusion", F_IN, F_HID)
        basic = products_model.inference_time("basic", F_IN, F_HID)
        assert fused.dram_bytes < basic.dram_bytes
