"""Differential suite for partition-parallel sharded training.

The sharded trainer re-executes full-batch GCN training as K cooperating
shard workers over one shared-memory arena.  Its contract: with every
halo exchange on, the math is the *same* training run — the per-shard
segment-reduce mirrors the batched engine's reduceat path row for row,
and the parent sums partial gradients in a fixed worker order.  This
suite pins that equivalence against the single-process ``Trainer``,
pins the process backend bitwise against the in-process serial backend,
and documents the controlled deviation delayed aggregation introduces.
"""

import numpy as np
import pytest

from repro import obs
from repro.graphs import load_dataset, synthetic_features
from repro.nn import Adam, Trainer, build_model
from repro.parallel import SHARD_BACKENDS, ShardedTrainer

FEATURES = 12
HIDDEN = 16
CLASSES = 5
EPOCHS = 4

#: The sharded forward matches the batched engine's accumulation order
#: shard-locally, but the parent sums dW partials across shards in
#: float64 — final fp32 weights drift by a few ulp versus the fused
#: single-process update.
LOSS_RTOL = 1e-6
WEIGHT_ATOL = 1e-5


@pytest.fixture(scope="module")
def graph():
    return load_dataset("products", scale=0.05, seed=3)


@pytest.fixture(scope="module")
def features(graph):
    return synthetic_features(graph, FEATURES, seed=4, sparsity=0.3)


@pytest.fixture(scope="module")
def labels(graph):
    rng = np.random.default_rng(8)
    return rng.integers(0, CLASSES, graph.num_vertices).astype(np.int64)


def _model(graph, seed=0):
    return build_model("gcn", FEATURES, HIDDEN, CLASSES, seed=seed)


def _reference(graph, features, labels, epochs=EPOCHS, **fit_kwargs):
    model = _model(graph)
    trainer = Trainer(model, Adam(model, lr=0.01))
    history = trainer.fit(graph, features, labels, epochs=epochs, **fit_kwargs)
    return history, model


def _sharded(
    graph, features, labels, epochs=EPOCHS, fit_kwargs=None, **kwargs
):
    model = _model(graph)
    kwargs.setdefault("num_shards", 3)
    trainer = ShardedTrainer(graph, model, Adam(model, lr=0.01), **kwargs)
    with trainer:
        history = trainer.fit(
            features, labels, epochs=epochs, **(fit_kwargs or {})
        )
        logits = trainer.logits()
    return history, model, trainer, logits


class TestMatchesSingleProcessTrainer:
    @pytest.mark.parametrize("backend", SHARD_BACKENDS)
    def test_loss_curves_match(self, graph, features, labels, backend):
        reference, _ = _reference(graph, features, labels)
        history, _, _, _ = _sharded(
            graph, features, labels, backend=backend
        )
        np.testing.assert_allclose(
            history.losses(), reference.losses(), rtol=LOSS_RTOL
        )

    def test_weights_match(self, graph, features, labels):
        _, ref_model = _reference(graph, features, labels)
        _, model, _, _ = _sharded(graph, features, labels, backend="serial")
        for ref_layer, layer in zip(ref_model.layers, model.layers):
            np.testing.assert_allclose(
                layer.weight, ref_layer.weight, atol=WEIGHT_ATOL
            )
            np.testing.assert_allclose(
                layer.bias, ref_layer.bias, atol=WEIGHT_ATOL
            )

    def test_accuracies_match(self, graph, features, labels):
        rng = np.random.default_rng(2)
        train_mask = rng.random(graph.num_vertices) < 0.6
        val_mask = ~train_mask
        reference, _ = _reference(
            graph, features, labels,
            train_mask=train_mask, val_mask=val_mask,
        )
        history, _, _, _ = _sharded(
            graph, features, labels, backend="serial",
            fit_kwargs={"train_mask": train_mask, "val_mask": val_mask},
        )
        for ref_epoch, epoch in zip(reference.epochs, history.epochs):
            assert epoch.train_accuracy == pytest.approx(
                ref_epoch.train_accuracy, abs=1e-12
            )
            assert epoch.val_accuracy == pytest.approx(
                ref_epoch.val_accuracy, abs=1e-12
            )

    @pytest.mark.parametrize("method", ("contiguous", "bfs", "greedy"))
    def test_every_partition_method_trains_the_same_model(
        self, graph, features, labels, method
    ):
        reference, _ = _reference(graph, features, labels)
        history, _, _, _ = _sharded(
            graph, features, labels, backend="serial",
            partition_method=method,
        )
        np.testing.assert_allclose(
            history.losses(), reference.losses(), rtol=LOSS_RTOL
        )


class TestProcessBitwiseMatchesSerial:
    """Shared memory changes *where* arrays live, never their values:
    the process backend must reproduce the in-process serial schedule
    bit for bit."""

    def test_losses_and_logits_bitwise(self, graph, features, labels):
        serial_hist, serial_model, _, serial_logits = _sharded(
            graph, features, labels, backend="serial"
        )
        proc_hist, proc_model, _, proc_logits = _sharded(
            graph, features, labels, backend="process"
        )
        assert serial_hist.losses() == proc_hist.losses()
        np.testing.assert_array_equal(serial_logits, proc_logits)
        for serial_layer, proc_layer in zip(
            serial_model.layers, proc_model.layers
        ):
            assert np.array_equal(serial_layer.weight, proc_layer.weight)
            assert np.array_equal(serial_layer.bias, proc_layer.bias)

    def test_thread_backend_bitwise_too(self, graph, features, labels):
        serial_hist, _, _, _ = _sharded(
            graph, features, labels, backend="serial"
        )
        thread_hist, _, _, _ = _sharded(
            graph, features, labels, backend="thread"
        )
        assert serial_hist.losses() == thread_hist.losses()


class TestDelayedAggregation:
    """DistGNN-style delayed aggregation: designated layers reuse stale
    halo features between refresh epochs.  ``halo_refresh=1`` refreshes
    every epoch and must therefore be *exactly* the full-exchange run;
    larger periods trade accuracy for traffic, and the documented
    contract is monotone-ish convergence, not equality."""

    def test_refresh_every_epoch_is_exact(self, graph, features, labels):
        full, _, _, _ = _sharded(graph, features, labels, backend="serial")
        delayed, _, _, _ = _sharded(
            graph, features, labels, backend="serial",
            delayed_layers=(1,), halo_refresh=1,
        )
        assert full.losses() == delayed.losses()

    def test_stale_halo_deviates_but_converges(self, graph, features, labels):
        full, _, _, _ = _sharded(
            graph, features, labels, backend="serial", epochs=8
        )
        stale, _, trainer, _ = _sharded(
            graph, features, labels, backend="serial",
            delayed_layers=(1,), halo_refresh=4, epochs=8,
        )
        # Stale halos change the math on non-refresh epochs...
        assert stale.losses() != full.losses()
        # ...but epoch 0 is a refresh epoch, so it is still exact...
        assert stale.losses()[0] == full.losses()[0]
        # ...and the deviation stays a perturbation: training descends.
        assert stale.losses()[-1] < stale.losses()[0]
        assert trainer.last_exchanges_skipped > 0

    def test_skipped_exchanges_cut_halo_traffic(self, graph, features, labels):
        _, _, full_trainer, _ = _sharded(
            graph, features, labels, backend="serial"
        )
        _, _, delayed_trainer, _ = _sharded(
            graph, features, labels, backend="serial",
            delayed_layers=(1,), halo_refresh=100,
        )
        assert delayed_trainer.last_halo_bytes < full_trainer.last_halo_bytes


class TestZeroCopy:
    """The worker payload is (part id, bundle spec, config) — O(#arrays)
    bytes, not O(graph).  If someone reintroduces graph pickling, these
    bounds blow up by orders of magnitude."""

    def test_setup_payload_is_bounded(self, graph, features, labels):
        _, _, trainer, _ = _sharded(
            graph, features, labels, backend="process", epochs=1
        )
        assert len(trainer.setup_bytes) == 3
        for nbytes in trainer.setup_bytes:
            assert 0 < nbytes < 32_768

    def test_setup_payload_is_graph_size_independent(self):
        sizes = {}
        for scale in (0.05, 0.2):
            graph = load_dataset("products", scale=scale, seed=3)
            h = synthetic_features(graph, FEATURES, seed=4, sparsity=0.3)
            y = np.random.default_rng(8).integers(
                0, CLASSES, graph.num_vertices
            ).astype(np.int64)
            _, _, trainer, _ = _sharded(
                graph, h, y, backend="process", epochs=1
            )
            sizes[scale] = max(trainer.setup_bytes)
        # 4x the vertices, same payload (within pickle framing noise).
        assert abs(sizes[0.2] - sizes[0.05]) < 512

    def test_per_epoch_message_is_model_sized(self, graph, features, labels):
        _, _, trainer, _ = _sharded(
            graph, features, labels, backend="process"
        )
        model_bytes = sum(
            layer.weight.nbytes + layer.bias.nbytes
            for layer in _model(graph).layers
        )
        assert 0 < trainer.epoch_message_bytes < 16 * model_bytes


class TestPersistentPool:
    def test_workers_survive_across_epochs(self, graph, features, labels):
        model = _model(graph)
        trainer = ShardedTrainer(
            graph, model, Adam(model, lr=0.01),
            num_shards=2, backend="process",
        )
        with trainer:
            trainer.fit(features, labels, epochs=1)
            first = sorted(trainer.worker_pids())
            trainer.train_epoch()
            trainer.train_epoch()
            second = sorted(trainer.worker_pids())
        assert first == second
        assert len(first) == 2
        import os

        assert os.getpid() not in first

    def test_close_is_idempotent_and_joins_workers(
        self, graph, features, labels
    ):
        model = _model(graph)
        trainer = ShardedTrainer(
            graph, model, Adam(model, lr=0.01),
            num_shards=2, backend="process",
        )
        trainer.fit(features, labels, epochs=1)
        workers = list(trainer._workers)
        trainer.close()
        trainer.close()
        for worker in workers:
            assert not worker.is_alive()


class TestObservability:
    def test_shard_metrics_and_spans_published(self, graph, features, labels):
        tracer, metrics = obs.enable()
        try:
            _sharded(graph, features, labels, backend="process", epochs=2)
            snap = metrics.snapshot()
            span_names = {s.to_record()["name"] for s in tracer.spans()}
        finally:
            obs.disable()
        assert "shard.partition" in span_names
        assert "shard.epoch" in span_names
        for key in (
            "shard.workers",
            "shard.partition.edge_cut",
            "shard.partition.cut_fraction",
            "shard.partition.balance",
            "shard.setup_bytes_max",
            "shard.halo_bytes",
            "shard.exchanges",
            "shard.epoch_time_s",
            "shard.epoch_message_bytes",
        ):
            assert key in snap, f"missing metric {key}"
        assert snap["shard.halo_bytes"]["value"] > 0


class TestValidation:
    def test_rejects_unknown_backend(self, graph):
        model = _model(graph)
        with pytest.raises(ValueError):
            ShardedTrainer(graph, model, Adam(model), backend="mpi")

    def test_rejects_dropout(self, graph):
        model = build_model(
            "gcn", FEATURES, HIDDEN, CLASSES, dropout=0.5, seed=0
        )
        with pytest.raises(ValueError, match="dropout"):
            ShardedTrainer(graph, model, Adam(model))

    def test_rejects_delayed_layer_zero(self, graph):
        model = _model(graph)
        with pytest.raises(ValueError, match="layer 0"):
            ShardedTrainer(graph, model, Adam(model), delayed_layers=(0,))

    def test_rejects_bad_halo_refresh(self, graph):
        model = _model(graph)
        with pytest.raises(ValueError):
            ShardedTrainer(graph, model, Adam(model), halo_refresh=0)

    def test_rejects_empty_train_mask(self, graph, features, labels):
        model = _model(graph)
        trainer = ShardedTrainer(
            graph, model, Adam(model, lr=0.01),
            num_shards=2, backend="serial",
        )
        with pytest.raises(ValueError, match="mask"):
            trainer.fit(
                features, labels, epochs=1,
                train_mask=np.zeros(graph.num_vertices, dtype=bool),
            )

    def test_train_epoch_before_fit_raises(self, graph):
        model = _model(graph)
        trainer = ShardedTrainer(graph, model, Adam(model, lr=0.01))
        with pytest.raises(RuntimeError):
            trainer.train_epoch()

    def test_single_shard_works(self, graph, features, labels):
        reference, _ = _reference(graph, features, labels, epochs=2)
        history, _, trainer, _ = _sharded(
            graph, features, labels, backend="serial",
            num_shards=1, epochs=2,
        )
        np.testing.assert_allclose(
            history.losses(), reference.losses(), rtol=LOSS_RTOL
        )
        assert trainer.last_halo_bytes == 0
