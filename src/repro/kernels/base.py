"""Kernel interfaces and execution statistics.

Every execution strategy in the paper's Figure 11 is a *kernel*: it
computes the same aggregation (and optionally the fused update) while
differing in iteration structure, blocking, compression, and ordering.
Kernels run on the value plane (numpy arithmetic, results must match the
:mod:`repro.nn.aggregate` oracle) and report :class:`KernelStats`
describing the work they did — the structural quantities the time plane
prices.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph

#: Execution engines for the chunk workloads: ``loop`` runs the original
#: per-vertex Python closure; ``batched`` runs the vectorized CSR-segment
#: reduce (Alg. 1's vector lanes as numpy calls).
ENGINES = ("loop", "batched")

#: Engine used when a kernel is constructed without an explicit choice.
DEFAULT_ENGINE = "batched"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine choice: explicit arg > ``REPRO_ENGINE`` > default."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


@dataclass
class KernelStats:
    """Work counters accumulated by one kernel invocation."""

    gathers: int = 0  # feature vectors gathered (edges + self)
    flops: float = 0.0
    prefetches: int = 0  # software prefetch hints issued (Alg. 1 line 9)
    tasks: int = 0  # parallel tasks dispatched
    blocks: int = 0  # fused blocks processed (Alg. 2 j-loop iterations)
    jit_compilations: int = 0  # specialized kernels generated this call
    decompressed_rows: int = 0  # rows run through mask expand
    compressed_rows: int = 0  # rows run through mask collapse
    peak_buffer_bytes: int = 0  # reusable a-block buffer high-water mark
    dram_bytes_saved: float = 0.0  # traffic avoided vs. dense transfer
    extra: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "KernelStats") -> None:
        self.gathers += other.gathers
        self.flops += other.flops
        self.prefetches += other.prefetches
        self.tasks += other.tasks
        self.blocks += other.blocks
        self.jit_compilations += other.jit_compilations
        self.decompressed_rows += other.decompressed_rows
        self.compressed_rows += other.compressed_rows
        self.peak_buffer_bytes = max(self.peak_buffer_bytes, other.peak_buffer_bytes)
        self.dram_bytes_saved += other.dram_bytes_saved
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def as_dict(self, include_extra: bool = True) -> Dict[str, float]:
        """Flat numeric view for telemetry (spans, metrics, reports).

        ``extra`` entries are namespaced as ``extra.<key>`` so they can
        never shadow a declared counter.
        """
        out: Dict[str, float] = {}
        for name in _STAT_FIELDS:
            out[name] = float(getattr(self, name))
        if include_extra:
            for key, value in self.extra.items():
                out[f"extra.{key}"] = float(value)
        return out


#: Declared counter names, resolved once — ``dataclasses.fields`` walks
#: descriptors on every call and ``as_dict`` runs twice per kernel call.
_STAT_FIELDS = tuple(
    spec.name for spec in fields(KernelStats) if spec.name != "extra"
)


@dataclass(frozen=True)
class UpdateParams:
    """The FC+ReLU update of Table 2: ``h_out = act(W a + b)``."""

    weight: np.ndarray  # (f_in, f_out)
    bias: np.ndarray  # (f_out,)
    activation: bool = True

    def __post_init__(self) -> None:
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D")
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError(
                f"bias shape {self.bias.shape} does not match weight "
                f"columns {self.weight.shape[1]}"
            )

    def apply(self, a_block: np.ndarray) -> np.ndarray:
        out = a_block @ self.weight + self.bias
        if self.activation:
            np.maximum(out, 0.0, out=out)
        # fp32 in the normal pipeline; preserved (e.g. fp64) when a
        # gradcheck drives the whole stack at higher precision.
        return out.astype(np.result_type(a_block.dtype, np.float32), copy=False)


class AggregationKernel:
    """Base class: an aggregation-only execution strategy."""

    name = "abstract"

    def aggregate(
        self, graph: CSRGraph, h: np.ndarray, aggregator: str = "gcn"
    ) -> Tuple[np.ndarray, KernelStats]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class FusedLayerKernel:
    """Base class: a fused aggregation+update execution strategy."""

    name = "abstract-fused"

    def run_layer(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str = "gcn",
        keep_aggregation: bool = False,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], KernelStats]:
        """Compute one fused layer.

        Args:
            keep_aggregation: training mode — retain the full ``a`` matrix
                for backward (Figure 5b); inference discards each block
                after its update (Figure 5c).

        Returns:
            (h_out, a_or_None, stats).
        """
        raise NotImplementedError


def validate_inputs(graph: CSRGraph, h: np.ndarray) -> None:
    """Common input checks shared by all kernels."""
    if h.ndim != 2:
        raise ValueError(f"feature matrix must be 2-D, got shape {h.shape}")
    if h.shape[0] != graph.num_vertices:
        raise ValueError(
            f"feature rows {h.shape[0]} != num_vertices {graph.num_vertices}"
        )
