"""Synthetic graph generators.

The paper evaluates on four real graphs (Table 3).  Those datasets are not
redistributable here, so :mod:`repro.graphs.datasets` builds scaled-down
*twins* from these generators, matched on the degree statistics the paper
reports (mean degree, max degree, degree variance).

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .csr import CSRGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_graph(
    num_vertices: int,
    avg_degree: float,
    seed: Optional[int] = 0,
    name: str = "uniform",
) -> CSRGraph:
    """Erdos-Renyi-style directed graph with near-uniform in-degrees."""
    rng = _rng(seed)
    num_edges = int(num_vertices * avg_degree)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edges(num_vertices, np.stack([dst, src], axis=1), name=name)


def power_law_graph(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.1,
    max_degree: Optional[int] = None,
    seed: Optional[int] = 0,
    name: str = "power-law",
) -> CSRGraph:
    """Directed graph whose in-degrees follow a truncated power law.

    Real-world graph degrees "can vary significantly and sometimes follow a
    power law distribution" (paper Section 4.1); the load-balancing and
    locality techniques are motivated by exactly this skew.

    Sources are drawn with probability proportional to their own degree
    weight, giving the hub structure (high-degree vertices are referenced
    by many rows) that the locality reordering of Algorithm 3 exploits.
    """
    rng = _rng(seed)
    if max_degree is None:
        max_degree = num_vertices - 1
    # Draw per-vertex weights w_v ~ Pareto(exponent - 1), truncate, then
    # scale so the expected total equals num_vertices * avg_degree.
    weights = rng.pareto(exponent - 1.0, size=num_vertices) + 1.0
    weights = np.minimum(weights, float(max_degree))
    in_degrees = weights / weights.sum() * (num_vertices * avg_degree)
    in_degrees = np.minimum(np.round(in_degrees).astype(np.int64), max_degree)
    in_degrees = np.maximum(in_degrees, 1)
    total = int(in_degrees.sum())
    # Preferential attachment on the source side: hubs appear as neighbors
    # of many vertices.
    src_probs = weights / weights.sum()
    dst = np.repeat(np.arange(num_vertices, dtype=np.int64), in_degrees)
    src = rng.choice(num_vertices, size=total, p=src_probs).astype(np.int64)
    return CSRGraph.from_edges(num_vertices, np.stack([dst, src], axis=1), name=name)


def grid_graph(side: int, name: str = "grid") -> CSRGraph:
    """4-neighbor 2-D grid — a fully regular graph useful in tests."""
    n = side * side
    edges = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if r > 0:
                edges.append((v, v - side))
            if r < side - 1:
                edges.append((v, v + side))
            if c > 0:
                edges.append((v, v - 1))
            if c < side - 1:
                edges.append((v, v + 1))
    return CSRGraph.from_edges(n, edges, name=name)


def planted_partition_graph(
    num_vertices: int,
    num_classes: int,
    p_in: float,
    p_out: float,
    seed: Optional[int] = 0,
    name: str = "planted",
) -> Tuple[CSRGraph, np.ndarray]:
    """Community graph with ground-truth labels.

    Vertices in the same class connect with probability ``p_in`` and across
    classes with ``p_out``.  Used by the end-to-end training examples, where
    a GCN should recover the communities.

    Returns:
        (graph, labels) where labels[v] in [0, num_classes).
    """
    rng = _rng(seed)
    labels = rng.integers(0, num_classes, size=num_vertices, dtype=np.int64)
    # Sample edges blockwise to stay vectorized: expected edge count is
    # n^2 * p, so draw that many candidate pairs and filter by class match.
    expected = int(num_vertices * num_vertices * max(p_in, p_out) * 1.2) + 16
    dst = rng.integers(0, num_vertices, size=expected, dtype=np.int64)
    src = rng.integers(0, num_vertices, size=expected, dtype=np.int64)
    same = labels[dst] == labels[src]
    keep_prob = np.where(same, p_in / max(p_in, p_out), p_out / max(p_in, p_out))
    keep = rng.random(expected) < keep_prob
    dst, src = dst[keep], src[keep]
    # Symmetrize so information flows both ways.
    all_dst = np.concatenate([dst, src])
    all_src = np.concatenate([src, dst])
    graph = CSRGraph.from_edges(
        num_vertices, np.stack([all_dst, all_src], axis=1), name=name
    )
    return graph, labels


def star_graph(num_leaves: int, name: str = "star") -> CSRGraph:
    """One hub gathered by every leaf (and the hub gathers every leaf).

    Extreme-skew corner case for the locality and load-balance code paths.
    """
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    edges += [(leaf, 0) for leaf in range(1, num_leaves + 1)]
    return CSRGraph.from_edges(num_leaves + 1, edges, name=name)


def chain_graph(num_vertices: int, name: str = "chain") -> CSRGraph:
    """Simple path; each vertex gathers from its predecessor."""
    edges = [(v, v - 1) for v in range(1, num_vertices)]
    return CSRGraph.from_edges(num_vertices, edges, name=name)


def community_graph(
    num_vertices: int,
    avg_degree: float,
    community_size: int,
    within_fraction: float = 0.8,
    hub_exponent: float = 2.0,
    degree_exponent: float = 2.1,
    scatter_ids: bool = True,
    scatter_fraction: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "community",
) -> CSRGraph:
    """Power-law graph with planted communities and per-community hubs.

    Real graphs combine two structures that drive the paper's locality
    results (Section 7.2.4): hubs (vertices gathered by many others) and
    communities (vertices that share much of their neighborhood).  Random
    power-law graphs have hubs but no neighbor sharing, which starves
    Algorithm 3 of reuse to exploit; this generator plants both.

    Args:
        num_vertices: vertex count.
        avg_degree: target mean in-degree.
        community_size: expected community size; communities whose feature
            vectors fit in cache are where reordering pays off.
        within_fraction: fraction of each vertex's neighbors drawn from
            its own community (the rest are global).
        hub_exponent: Pareto tail of the hub-weight distribution; smaller
            means heavier hubs.
        degree_exponent: Pareto tail of the per-vertex in-degree draw.
        scatter_ids: permute vertex ids so communities are NOT contiguous
            in the natural order (a graph "optimized at the source" keeps
            them contiguous — the wikipedia/twitter situation of Fig. 15).
        scatter_fraction: fraction of ids shuffled when scattering; values
            below 1 model a source ordering with *partial* locality, which
            Algorithm 3 can still improve on (paper Section 7.2.4).
        seed: RNG seed.
    """
    if community_size < 2:
        raise ValueError("community_size must be >= 2")
    if not 0.0 <= within_fraction <= 1.0:
        raise ValueError("within_fraction must be in [0, 1]")
    if not 0.0 <= scatter_fraction <= 1.0:
        raise ValueError("scatter_fraction must be in [0, 1]")
    graph = _community_graph_once(
        num_vertices,
        avg_degree,
        community_size,
        within_fraction,
        hub_exponent,
        degree_exponent,
        scatter_ids,
        scatter_fraction,
        seed,
        name,
        oversample=1.12,
    )
    # Skewed within-community draws collapse many duplicate edges; one
    # corrective pass rescales the draw to land near the target mean degree.
    achieved = graph.num_edges / max(1, num_vertices)
    if achieved < avg_degree * 0.9:
        factor = min(8.0, 1.12 * avg_degree / max(achieved, 1e-9))
        graph = _community_graph_once(
            num_vertices,
            avg_degree,
            community_size,
            within_fraction,
            hub_exponent,
            degree_exponent,
            scatter_ids,
            scatter_fraction,
            seed,
            name,
            oversample=factor,
        )
    return graph


def _community_graph_once(
    num_vertices: int,
    avg_degree: float,
    community_size: int,
    within_fraction: float,
    hub_exponent: float,
    degree_exponent: float,
    scatter_ids: bool,
    scatter_fraction: float,
    seed: Optional[int],
    name: str,
    oversample: float,
) -> CSRGraph:
    """One generation pass of :func:`community_graph`."""
    rng = _rng(seed)
    n = num_vertices
    num_comms = max(1, n // community_size)
    # Communities are contiguous id blocks; ``scatter_ids`` below decides
    # whether the natural order preserves that contiguity (a pre-localized
    # source ordering) or destroys it.
    community = (np.arange(n, dtype=np.int64) * num_comms) // n
    # Hub weights: heavier tail -> stronger hubs.  The extreme tail is
    # capped so a handful of monster hubs cannot absorb nearly all edges
    # (they would collapse under duplicate removal and hijack every
    # vertex's highest-degree neighbor choice in Algorithm 3).
    weights = rng.pareto(hub_exponent - 1.0, size=n) + 1.0
    weights = np.minimum(weights, np.quantile(weights, 0.995) * 4.0)
    # In-degree correlates with hub popularity (in real graphs, heavily
    # gathered vertices also gather a lot — products is undirected), which
    # is what lets Algorithm 3's degree test identify the hubs.
    noise = rng.pareto(degree_exponent - 1.0, size=n) + 1.0
    noise = np.minimum(noise, np.quantile(noise, 0.995) * 4.0)
    raw = 0.6 * weights / weights.mean() + 0.4 * noise / noise.mean()
    in_deg = np.maximum(
        1, np.round(raw / raw.mean() * avg_degree * oversample).astype(np.int64)
    )
    in_deg = np.minimum(in_deg, n - 1)
    # Give each community one dominant hub: boost the in-degree of its
    # heaviest member so that Algorithm 3's highest-degree-neighbor test
    # resolves to a single owner per community instead of fragmenting the
    # community across several similar-degree vertices.
    for c in range(num_comms):
        members = np.where(community == c)[0]
        if len(members) == 0:
            continue
        hub = members[int(np.argmax(weights[members]))]
        in_deg[hub] = min(n - 1, in_deg[hub] * 3 + int(avg_degree))

    # Group members by community for vectorized within-community draws.
    comm_members = [np.where(community == c)[0] for c in range(num_comms)]

    dst_parts = []
    src_parts = []
    # Within-community degree saturates at community size; the surplus is
    # dropped (small communities simply cannot absorb more distinct
    # neighbors) rather than rerouted to cross edges, which would dilute
    # the within_fraction contract.
    cross_budget = rng.binomial(in_deg, 1.0 - within_fraction)
    within_counts = np.minimum(
        in_deg - cross_budget,
        np.maximum(1, np.bincount(community, minlength=num_comms)[community] - 1),
    )
    for c in range(num_comms):
        members = comm_members[c]
        size = len(members)
        if size < 2:
            within_counts[members] = 0
            continue
        counts = within_counts[members]
        if counts.sum() == 0:
            continue
        # Weighted sampling WITHOUT replacement via Gumbel top-k: each
        # member ranks every community peer by log-weight + Gumbel noise
        # and takes its top count picks.  Without-replacement sampling is
        # essential — drawing with replacement from a skewed small
        # community collapses to a handful of distinct edges after
        # deduplication, destroying the within_fraction contract.
        keys = np.log(weights[members])[None, :] + rng.gumbel(
            size=(size, size)
        )
        np.fill_diagonal(keys, -np.inf)  # no self edges here
        ranked = np.argsort(-keys, axis=1)
        for i, v in enumerate(members):
            k = int(counts[i])
            if k:
                dst_parts.append(np.full(k, v, dtype=np.int64))
                src_parts.append(members[ranked[i, :k]])
    # Cross-community edges are drawn uniformly: they provide the
    # background miss traffic of long-range links without making a global
    # mega-hub every vertex's highest-degree neighbor (which would defeat
    # the community grouping that Algorithm 3 recovers).
    cross_counts = cross_budget
    total_cross = int(cross_counts.sum())
    if total_cross:
        dst_parts.append(
            np.repeat(np.arange(n, dtype=np.int64), cross_counts)
        )
        src_parts.append(rng.integers(0, n, size=total_cross, dtype=np.int64))
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, np.int64)
    src = np.concatenate(src_parts) if src_parts else np.empty(0, np.int64)

    if scatter_ids and scatter_fraction > 0.0:
        perm = np.arange(n, dtype=np.int64)
        k = int(round(n * scatter_fraction))
        if k >= 2:
            chosen = rng.choice(n, size=k, replace=False)
            perm[chosen] = perm[rng.permutation(chosen)]
        dst, src = perm[dst], perm[src]
    graph = CSRGraph.from_edges(n, np.stack([dst, src], axis=1), name=name)
    return graph


def rmat_graph(
    scale: int,
    avg_degree: float,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = 0,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500-style) generator.

    The GAP benchmark suite the paper draws twitter from popularized this
    generator for architecture studies: recursive quadrant subdivision
    with probabilities (a, b, c, d) yields power-law degrees and
    community-ish block structure.

    Args:
        scale: log2 of the vertex count.
        avg_degree: target mean degree (edge factor).
        a, b, c: quadrant probabilities; d = 1 - a - b - c.
    """
    if scale <= 0 or scale > 24:
        raise ValueError(f"scale must be in [1, 24], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must sum to <= 1")
    rng = _rng(seed)
    n = 1 << scale
    num_edges = int(n * avg_degree * 1.05)
    # Vectorized bit-by-bit quadrant choice.
    dst = np.zeros(num_edges, dtype=np.int64)
    src = np.zeros(num_edges, dtype=np.int64)
    probs = np.array([a, b, c, d])
    thresholds = np.cumsum(probs)
    for bit in range(scale):
        draw = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, draw)
        dst = (dst << 1) | (quadrant >> 1)
        src = (src << 1) | (quadrant & 1)
    return CSRGraph.from_edges(n, np.stack([dst, src], axis=1), name=name)
