"""Mini-batch (sampled) training — the Section 3 workflow, for real.

The paper's motivation experiment trains a *sampled* GraphSAGE: each
step samples a layered K-hop neighborhood for a seed batch (Eq. 3) and
runs the layers on the induced blocks.  This module executes that
workflow on the value plane so the full-batch/sampled comparison (and
the accuracy caveat the paper cites — "sampling may degrade the network
accuracy") can be reproduced, not just asserted.

Implementation note: a sampled block is a bipartite layer ``src -> dst``;
we compute it by building a small CSR over the sampled edges and running
the mean aggregator with the block's own degrees, matching GraphSAGE's
neighborhood-sample semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpu.sampler import MiniBatch, iterate_minibatches
from . import functional as F
from .model import GNNModel
from .optim import Optimizer


def block_aggregate(
    edge_dst: np.ndarray,
    edge_src: np.ndarray,
    dst_vertices: np.ndarray,
    h_src: np.ndarray,
    src_index: dict,
) -> np.ndarray:
    """Mean-aggregate a sampled block.

    Args:
        edge_dst/edge_src: sampled edges in global vertex ids.
        dst_vertices: the block's destination set (global ids).
        h_src: features of the block's source frontier, ordered like the
            frontier array.
        src_index: global id -> row in ``h_src``.

    Returns:
        (len(dst_vertices), features) mean-aggregated matrix.
    """
    dst_pos = {int(v): i for i, v in enumerate(dst_vertices)}
    out = np.zeros((len(dst_vertices), h_src.shape[1]), dtype=np.float64)
    counts = np.zeros(len(dst_vertices), dtype=np.float64)
    for d, s in zip(edge_dst, edge_src):
        row = dst_pos[int(d)]
        out[row] += h_src[src_index[int(s)]]
        counts[row] += 1.0
    counts = np.maximum(counts, 1.0)
    return (out / counts[:, None]).astype(np.float32)


@dataclass
class MiniBatchStep:
    """Record of one sampled training step."""

    batch_size: int
    sampled_edges: int
    loss: float


class MiniBatchTrainer:
    """Sampled GraphSAGE-style training over layered mini-batches.

    Weights are shared with a :class:`repro.nn.model.GNNModel`; only the
    aggregation is replaced by the sampled-block version, so the same
    parameters can be evaluated full-batch afterwards.
    """

    def __init__(self, model: GNNModel, optimizer: Optimizer) -> None:
        for layer in model.layers:
            if layer.aggregator != "mean":
                raise ValueError(
                    "sampled training reproduces GraphSAGE; build the model "
                    "with aggregator 'mean' (model_type='sage')"
                )
        self.model = model
        self.optimizer = optimizer
        self.steps: List[MiniBatchStep] = []

    # ------------------------------------------------------------------
    def forward_batch(self, batch: MiniBatch, features: np.ndarray):
        """Forward through the sampled blocks; returns seed logits and
        the per-layer caches needed for the (dense-block) backward."""
        frontier = batch.blocks[0].src_vertices
        h = features[frontier]
        src_ids = frontier
        caches = []
        for layer, block in zip(self.model.layers, batch.blocks):
            src_index = {int(v): i for i, v in enumerate(src_ids)}
            a = block_aggregate(
                block.edge_dst, block.edge_src, block.dst_vertices, h, src_index
            )
            pre = a @ layer.weight + layer.bias
            out = F.relu(pre) if layer.activation else pre
            caches.append((a, pre, src_ids, block))
            h = out.astype(np.float32)
            src_ids = block.dst_vertices
        return h, caches

    def train_step(
        self,
        batch: MiniBatch,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> MiniBatchStep:
        """One sampled step: forward, loss on seeds, parameter update.

        Backward propagates through the update weights only (first-order
        sampled-gradient approximation); aggregations are linear in the
        parameters below them, and this keeps the step cost proportional
        to the sampled blocks, the property mini-batching exists for.
        """
        logits, caches = self.forward_batch(batch, features)
        seed_labels = labels[batch.blocks[-1].dst_vertices]
        loss, grad = F.cross_entropy(logits, seed_labels)
        grads = []
        for (a, pre, _, _), layer in zip(reversed(caches), reversed(self.model.layers)):
            grad_pre = F.relu_grad(pre, grad) if layer.activation else grad
            grad_w = a.T @ grad_pre
            grad_b = grad_pre.sum(axis=0)
            from .layers import LayerGrads

            grads.append(
                LayerGrads(
                    weight=grad_w.astype(np.float32),
                    bias=grad_b.astype(np.float32),
                    h_in=np.zeros((1, layer.in_features), dtype=np.float32),
                )
            )
            # Propagate to the layer below through the update weights and
            # the block aggregation (mean over sampled neighbors).
            if layer is not self.model.layers[0]:
                grad_a = grad_pre @ layer.weight.T
                # Scatter grad_a back to the previous layer's outputs via
                # the block's mean edges.
                block = caches[self.model.layers.index(layer)][3]
                src_ids = caches[self.model.layers.index(layer)][2]
                src_index = {int(v): i for i, v in enumerate(src_ids)}
                dst_pos = {int(v): i for i, v in enumerate(block.dst_vertices)}
                counts = np.zeros(len(block.dst_vertices))
                for d in block.edge_dst:
                    counts[dst_pos[int(d)]] += 1
                counts = np.maximum(counts, 1.0)
                scattered = np.zeros((len(src_ids), layer.in_features), dtype=np.float64)
                for d, s in zip(block.edge_dst, block.edge_src):
                    scattered[src_index[int(s)]] += (
                        grad_a[dst_pos[int(d)]] / counts[dst_pos[int(d)]]
                    )
                grad = scattered.astype(np.float32)
        self.optimizer.step(list(reversed(grads)))
        step = MiniBatchStep(
            batch_size=len(batch.seed_vertices),
            sampled_edges=batch.total_sampled_edges,
            loss=loss,
        )
        self.steps.append(step)
        return step

    def fit_epoch(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        fanouts: Sequence[int],
        seed: int = 0,
    ) -> float:
        """One epoch of sampled training; returns the mean step loss."""
        if len(fanouts) != self.model.num_layers:
            raise ValueError("need one fanout per layer")
        losses = []
        for batch in iterate_minibatches(graph, batch_size, fanouts, seed=seed):
            step = self.train_step(batch, features, labels)
            losses.append(step.loss)
        return float(np.mean(losses))
